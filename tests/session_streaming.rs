//! Integration coverage for the streaming session API: `FixedRuns`
//! sessions reproduce the batch reference byte-for-byte on every
//! checked-in scenario, adaptive stopping is thread-count invariant, and
//! a `CiHalfWidth` budget on the fig3 quick scenario saves a large share
//! of the measuring runs without moving the reported mean outside the
//! full-budget confidence interval.

use bcbpt::{RunEvent, Scenario, StopRule, Workload};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

/// Shrinks a quick-scaled scenario further so the whole corpus stays
/// integration-test sized in debug builds.
fn shrink(scenario: &mut Scenario) {
    scenario.net.num_nodes = scenario.net.num_nodes.min(70);
    scenario.runs = scenario.runs.min(3);
    scenario.warmup_ms = scenario.warmup_ms.min(1_000.0);
    scenario.window_ms = scenario.window_ms.min(12_000.0);
    if let Workload::Mining { duration_ms, .. } = &mut scenario.workload {
        *duration_ms = duration_ms.min(15_000.0);
    }
    if let Workload::Adversarial { attackers, .. } = &mut scenario.workload {
        *attackers = (*attackers).clamp(1, 6);
    }
    if let Workload::Eclipse { victims, .. } = &mut scenario.workload {
        *victims = (*victims).min(5);
    }
    if let Some(sweep) = &mut scenario.sweep {
        sweep.protocols.truncate(2);
        sweep.thresholds_ms.truncate(2);
        sweep.num_nodes.truncate(1);
    }
}

#[test]
fn fixed_runs_sessions_match_the_batch_reference_on_every_checked_in_scenario() {
    for name in Scenario::builtin_names() {
        let path = scenarios_dir().join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let mut scenario = Scenario::from_json(&text)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .quick_scaled();
        shrink(&mut scenario);
        let batch = scenario
            .run_batch()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let session = scenario
            .session()
            .with_stop_rule(StopRule::FixedRuns)
            .block()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            session, batch,
            "{name}: FixedRuns session diverged from the batch reference"
        );
    }
}

#[test]
fn ci_half_width_early_stop_is_identical_at_1_3_and_8_threads() {
    let mut scenario = Scenario::builtin("fig3").unwrap().quick_scaled();
    shrink(&mut scenario);
    scenario.runs = 20;
    let rule = StopRule::CiHalfWidth {
        level: 0.95,
        rel_width: 0.2,
        min_runs: 3,
    };
    let reference = scenario
        .session()
        .with_stop_rule(rule)
        .with_threads(1)
        .block()
        .unwrap();
    let stopped_early = reference
        .cells
        .iter()
        .any(|cell| cell.campaign().unwrap().runs.len() < 20);
    assert!(
        stopped_early,
        "the rule must fire before the 20-run ceiling"
    );
    for threads in [3usize, 8] {
        let pooled = scenario
            .session()
            .with_stop_rule(rule)
            .with_threads(threads)
            .block()
            .unwrap();
        assert_eq!(
            pooled, reference,
            "CiHalfWidth early stop diverged at {threads} threads"
        );
    }
}

#[test]
fn adaptive_fig3_quick_saves_runs_and_keeps_the_mean_inside_the_full_ci() {
    // The acceptance experiment: the fig3 quick scenario with a full
    // budget vs a CiHalfWidth { rel_width: 0.1 } session. The adaptive
    // run must consume >= 30 % fewer measuring runs while each cell's
    // reported mean stays inside the full-budget confidence interval.
    //
    // The interval is the run-level one (`CampaignResult::run_mean_ci`):
    // runs are the paper's independent replicates, and it is the exact
    // statistic the stop rule targets. The pooled per-sample bootstrap
    // (`delta_mean_ci`) treats correlated within-run samples as i.i.d.
    // and is too narrow to be a fair accuracy gate for *any* subsample.
    let mut scenario = Scenario::builtin("fig3").unwrap().quick_scaled();
    scenario.net.num_nodes = 80;
    scenario.warmup_ms = 1_000.0;
    scenario.window_ms = 5_000.0;
    scenario.runs = 100;
    let full = scenario.run_batch().unwrap();
    let adaptive = scenario
        .session()
        .with_stop_rule(StopRule::CiHalfWidth {
            level: 0.95,
            rel_width: 0.1,
            min_runs: 8,
        })
        .block()
        .unwrap();

    let runs_of = |outcome: &bcbpt::ScenarioOutcome| -> usize {
        outcome
            .cells
            .iter()
            .map(|cell| cell.campaign().unwrap().runs.len())
            .sum()
    };
    let full_runs = runs_of(&full);
    let adaptive_runs = runs_of(&adaptive);
    for cell in &adaptive.cells {
        eprintln!(
            "cell {}: {} of {} runs",
            cell.label,
            cell.campaign().unwrap().runs.len(),
            scenario.runs
        );
    }
    assert!(
        adaptive_runs as f64 <= 0.7 * full_runs as f64,
        "adaptive stopping must save >= 30% of the measuring runs, \
         used {adaptive_runs} of {full_runs}"
    );

    for (early, late) in adaptive.cells.iter().zip(&full.cells) {
        let ci = late
            .campaign()
            .unwrap()
            .run_mean_ci(0.95)
            .expect("full-budget campaign has measuring runs");
        let mean = early.delta_summary().unwrap().mean();
        assert!(
            ci.contains(mean),
            "{}: early-stopped mean {mean} outside the full-budget CI [{}, {}]",
            early.label,
            ci.lo,
            ci.hi
        );
        // The early-stopped campaign is a strict prefix of the full one.
        let early_runs = &early.campaign().unwrap().runs;
        assert_eq!(
            &late.campaign().unwrap().runs[..early_runs.len()],
            &early_runs[..],
            "{}: stopping truncates, never changes, the run stream",
            early.label
        );
    }
}

#[test]
fn session_event_stream_reaches_observers_for_a_checked_in_scenario() {
    let text = std::fs::read_to_string(scenarios_dir().join("fig3.json")).unwrap();
    let mut scenario = Scenario::from_json(&text).unwrap().quick_scaled();
    shrink(&mut scenario);
    let events = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    let outcome = scenario
        .session()
        .observe_fn(move |event: &RunEvent| sink.lock().unwrap().push(event.clone()))
        .block()
        .unwrap();
    let events = events.lock().unwrap();
    assert_eq!(
        events.iter().filter(|e| e.kind() == "cell_started").count(),
        outcome.cells.len()
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| e.kind() == "run_completed")
            .count(),
        scenario.runs * outcome.cells.len(),
        "FixedRuns folds every planned run"
    );
    assert_eq!(
        events.last().map(RunEvent::kind),
        Some("scenario_completed")
    );
}
