//! Integration coverage for the fault-tolerance story: panicking runs
//! retire as structured [`RunFailure`] data without killing the campaign,
//! a checkpointed shard killed mid-cell resumes byte-identically at any
//! thread count, the salvage merge quarantines corrupt parts and emits an
//! actionable repair plan, and property tests flip/truncate single bytes
//! of the on-disk formats to prove corruption is never silently merged.

use bcbpt::experiments::{
    fault, merge_shards, run_shard_in, run_shard_with, salvage_merge, scenario_digest, Checkpoint,
    FaultPlan, PartialOutcome, PrefixEnvelope, ShardRunOptions, ShardSpec, StopDecision,
    COORD_FORMAT_VERSION,
};
use bcbpt::{
    ExperimentConfig, Protocol, ProtocolRegistry, Scenario, ScenarioOutcome, StreamingSummary,
    Workload,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

/// The fault injector is process-global, and every test here either arms
/// it or runs campaigns that would notice someone else's armed plan —
/// serialize the whole file.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

/// Loads `scenarios/fig3.json` shrunk to integration-test scale: two
/// campaign cells, four runs, a small network.
fn tiny_scenario() -> Scenario {
    let path = scenarios_dir().join("fig3.json");
    let text = std::fs::read_to_string(&path).expect("fig3.json");
    let mut scenario = Scenario::from_json(&text)
        .expect("fig3 parses")
        .quick_scaled();
    scenario.net.num_nodes = 50;
    scenario.runs = 4;
    scenario.warmup_ms = 800.0;
    scenario.window_ms = 8_000.0;
    if let Some(sweep) = &mut scenario.sweep {
        sweep.protocols.truncate(2);
        sweep.thresholds_ms.truncate(1);
        sweep.num_nodes.truncate(1);
    }
    assert!(matches!(scenario.workload, Workload::TxFlood));
    scenario
}

/// Runs every shard of `scenario` at `count` shards, round-tripping each
/// part through its wire format.
fn shard_all(scenario: &Scenario, count: usize) -> Vec<PartialOutcome> {
    let registry = ProtocolRegistry::builtins();
    (0..count)
        .map(|i| {
            let part = run_shard_in(scenario, ShardSpec::new(i, count).unwrap(), &registry, 2)
                .unwrap_or_else(|e| panic!("shard {i}/{count}: {e}"));
            PartialOutcome::from_json(&part.to_json()).expect("part round trip")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Tentpole 1: panic isolation
// ---------------------------------------------------------------------------

#[test]
fn a_panicking_run_retires_as_structured_data_at_any_thread_count() {
    let _lock = lock();
    let mut config = ExperimentConfig::quick(Protocol::Bitcoin);
    config.net.num_nodes = 50;
    config.runs = 6;
    config.warmup_ms = 800.0;
    config.window_ms = 8_000.0;

    let clean = config.run_with_threads(2).expect("clean campaign");
    assert!(clean.failures.is_empty());

    let mut serialized = Vec::new();
    for threads in [1usize, 3, 8] {
        let guard = fault::arm(FaultPlan::PanicAtRun { run_index: 2 });
        let failed = config
            .run_with_threads(threads)
            .expect("campaign completes despite the panicking run");
        drop(guard);

        assert_eq!(failed.failures.len(), 1, "exactly one run failed");
        assert_eq!(failed.failures[0].run_index, 2);
        assert!(
            failed.failures[0].payload.contains("injected fault"),
            "panic payload captured verbatim: {}",
            failed.failures[0].payload
        );
        // Every other run is byte-identical to the clean campaign's.
        let surviving: Vec<_> = clean.runs.iter().filter(|r| r.run_index != 2).collect();
        assert_eq!(failed.runs.iter().collect::<Vec<_>>(), surviving);
        serialized.push(format!("{failed:?}"));
    }
    assert!(
        serialized.windows(2).all(|w| w[0] == w[1]),
        "the failed campaign must be byte-identical at 1, 3 and 8 threads"
    );

    // The injector disarmed with the guard: the next campaign is clean.
    let after = config.run_with_threads(2).expect("clean again");
    assert_eq!(after, clean, "no fault state leaks past the guard");
}

// ---------------------------------------------------------------------------
// Tentpole 2: checkpoint / resume
// ---------------------------------------------------------------------------

/// Runs shard 0/2 of `scenario` with a collecting checkpoint sink,
/// returning the uninterrupted part and every checkpoint it sealed.
fn checkpointed_shard(scenario: &Scenario) -> (PartialOutcome, Vec<Checkpoint>) {
    let registry = ProtocolRegistry::builtins();
    let mut checkpoints: Vec<Checkpoint> = Vec::new();
    let mut sink = |c: &Checkpoint| -> Result<(), String> {
        checkpoints.push(c.clone());
        Ok(())
    };
    let part = run_shard_with(
        scenario,
        ShardSpec::new(0, 2).unwrap(),
        &registry,
        ShardRunOptions {
            threads: Some(2),
            checkpoint_every: 1,
            sink: Some(&mut sink),
            ..ShardRunOptions::default()
        },
    )
    .expect("checkpointed shard run");
    (part, checkpoints)
}

#[test]
fn a_resumed_shard_is_byte_identical_to_an_uninterrupted_one() {
    let _lock = lock();
    let scenario = tiny_scenario();
    let registry = ProtocolRegistry::builtins();
    let baseline = run_shard_in(&scenario, ShardSpec::new(0, 2).unwrap(), &registry, 2)
        .expect("uninterrupted shard");
    let (part, checkpoints) = checkpointed_shard(&scenario);
    assert_eq!(
        part.to_json(),
        baseline.to_json(),
        "checkpointing must not perturb the part"
    );
    assert!(
        checkpoints.iter().any(|c| c.current.is_some()),
        "mid-cell checkpoints were sealed"
    );
    assert!(
        checkpoints.iter().any(|c| c.current.is_none()),
        "cell-boundary checkpoints were sealed"
    );

    // Resume from every checkpoint — mid-cell and cell-boundary alike —
    // at several thread counts: the part must always come out
    // byte-identical to the uninterrupted run.
    for (i, checkpoint) in checkpoints.iter().enumerate() {
        checkpoint.verify().expect("sealed checkpoint verifies");
        for threads in [1usize, 3, 8] {
            let resumed = run_shard_with(
                &scenario,
                ShardSpec::new(0, 2).unwrap(),
                &registry,
                ShardRunOptions {
                    threads: Some(threads),
                    resume: Some(checkpoint.clone()),
                    ..ShardRunOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("resume from checkpoint {i} at {threads} threads: {e}"));
            assert_eq!(
                resumed.to_json(),
                baseline.to_json(),
                "resume from checkpoint {i} at {threads} threads diverged"
            );
        }
    }
}

#[test]
fn resume_rejects_checkpoints_that_do_not_match() {
    let _lock = lock();
    let scenario = tiny_scenario();
    let registry = ProtocolRegistry::builtins();
    let (_, checkpoints) = checkpointed_shard(&scenario);
    let checkpoint = checkpoints.first().expect("at least one checkpoint");

    // Tampered without resealing: the digest catches it.
    let mut torn = checkpoint.clone();
    torn.scenario_runs += 1;
    let err = run_shard_with(
        &scenario,
        ShardSpec::new(0, 2).unwrap(),
        &registry,
        ShardRunOptions {
            resume: Some(torn),
            ..ShardRunOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("digest"), "digest mismatch reported: {err}");

    // Tampered *and* resealed: the semantic cross-checks catch it.
    let mut forged = checkpoint.clone();
    forged.scenario_runs += 1;
    forged.seal();
    let err = run_shard_with(
        &scenario,
        ShardSpec::new(0, 2).unwrap(),
        &registry,
        ShardRunOptions {
            resume: Some(forged),
            ..ShardRunOptions::default()
        },
    )
    .unwrap_err();
    assert!(err.contains("runs"), "run-budget mismatch reported: {err}");

    // Wrong shard coordinate: refused, not silently re-planned.
    let err = run_shard_with(
        &scenario,
        ShardSpec::new(1, 2).unwrap(),
        &registry,
        ShardRunOptions {
            resume: Some(checkpoint.clone()),
            ..ShardRunOptions::default()
        },
    )
    .unwrap_err();
    assert!(!err.is_empty(), "mismatched coordinate rejected");
}

// ---------------------------------------------------------------------------
// Tentpole 3: salvageable merges
// ---------------------------------------------------------------------------

#[test]
fn salvage_quarantines_a_corrupt_part_and_its_repair_plan_completes_the_merge() {
    let _lock = lock();
    let scenario = tiny_scenario();
    let parts = shard_all(&scenario, 3);
    let reference = merge_shards(parts.clone()).expect("clean merge");

    // Corrupt the middle part: its sealed digest no longer matches.
    let mut corrupt = parts[1].clone();
    corrupt.scenario_runs = corrupt.scenario_runs.wrapping_add(7);
    let sources = vec![
        ("part-0.json".to_string(), Ok(parts[0].clone())),
        ("part-1.json".to_string(), Ok(corrupt)),
        ("part-2.json".to_string(), Ok(parts[2].clone())),
    ];
    let report = salvage_merge(sources, "tiny.json").expect("salvage runs");
    assert!(report.outcome.is_none(), "incomplete set yields no outcome");
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].source, "part-1.json");
    let repair = report.repair.expect("repair plan emitted");
    assert_eq!(repair.missing_shards, vec![1]);
    assert_eq!(repair.shard_count, 3);
    assert!(
        repair.commands[0].contains("--shard 1/3"),
        "repair command names the exact re-run: {}",
        repair.commands[0]
    );

    // A part that fails to even parse is quarantined the same way.
    let sources = vec![
        ("part-0.json".to_string(), Ok(parts[0].clone())),
        (
            "part-1.json".to_string(),
            Err("unexpected end of input".to_string()),
        ),
        ("part-2.json".to_string(), Ok(parts[2].clone())),
    ];
    let report = salvage_merge(sources, "tiny.json").expect("salvage runs");
    assert!(report.outcome.is_none());
    assert_eq!(report.repair.expect("repair plan").missing_shards, vec![1]);

    // Following the plan — re-running shard 1 — completes the merge, and
    // the result equals the batch reference exactly.
    let registry = ProtocolRegistry::builtins();
    let rerun = run_shard_in(&scenario, ShardSpec::new(1, 3).unwrap(), &registry, 2)
        .expect("repair re-run");
    let sources = vec![
        ("part-0.json".to_string(), Ok(parts[0].clone())),
        ("part-1.json".to_string(), Ok(rerun)),
        ("part-2.json".to_string(), Ok(parts[2].clone())),
    ];
    let report = salvage_merge(sources, "tiny.json").expect("salvage runs");
    assert!(report.quarantined.is_empty());
    let outcome = report.outcome.expect("complete set merges");
    assert_eq!(outcome.to_json(), reference.to_json());
}

#[test]
fn salvage_refuses_an_empty_or_fully_quarantined_set() {
    let _lock = lock();
    assert!(salvage_merge(Vec::new(), "tiny.json").is_err());
    let sources = vec![(
        "part-0.json".to_string(),
        Err::<PartialOutcome, _>("no such file".to_string()),
    )];
    let err = salvage_merge(sources, "tiny.json").unwrap_err();
    assert!(
        err.contains("no such file"),
        "quarantine reasons surface in the error: {err}"
    );
}

// ---------------------------------------------------------------------------
// Satellite: byte-flip / truncation properties on the wire formats
// ---------------------------------------------------------------------------

struct WireFixture {
    part0_json: String,
    part1_json: String,
    checkpoint_json: String,
    reference: ScenarioOutcome,
}

/// The campaign outputs the properties mutate — built once, behind the
/// fault lock of the calling test.
fn fixture() -> &'static WireFixture {
    static FIXTURE: OnceLock<WireFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = tiny_scenario();
        let parts = shard_all(&scenario, 2);
        let reference = merge_shards(parts.clone()).expect("clean merge");
        let (_, checkpoints) = checkpointed_shard(&scenario);
        let checkpoint = checkpoints
            .iter()
            .find(|c| c.current.is_some())
            .expect("mid-cell checkpoint");
        WireFixture {
            part0_json: parts[0].to_json(),
            part1_json: parts[1].to_json(),
            checkpoint_json: checkpoint.to_json(),
            reference,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single bit of a serialized part either fails the
    /// parse, fails the merge (digest or cross-check), or — when the flip
    /// lands in insignificant whitespace — merges to exactly the clean
    /// outcome. Corrupt data is never silently folded in.
    #[test]
    fn a_flipped_part_byte_never_silently_merges(
        offset in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let _lock = lock();
        let fx = fixture();
        let mut bytes = fx.part0_json.clone().into_bytes();
        let at = offset % bytes.len();
        bytes[at] ^= 1 << bit;
        let Ok(text) = String::from_utf8(bytes) else { return; };
        let Ok(part) = PartialOutcome::from_json(&text) else { return; };
        let other = PartialOutcome::from_json(&fx.part1_json).expect("clean part");
        match merge_shards(vec![part, other]) {
            Err(_) => {}
            Ok(merged) => prop_assert_eq!(
                merged.to_json(),
                fx.reference.to_json(),
                "a merge that accepts the mutated part must equal the clean merge"
            ),
        }
    }

    /// Any proper prefix of a serialized part fails to parse — a torn
    /// write can never merge.
    #[test]
    fn a_truncated_part_never_parses(cut in 0usize..1_000_000) {
        let _lock = lock();
        let fx = fixture();
        let len = cut % fx.part0_json.len();
        prop_assert!(
            PartialOutcome::from_json(&fx.part0_json[..len]).is_err(),
            "truncation at byte {} parsed",
            len
        );
    }

    /// Flipping any single bit of a serialized checkpoint either fails
    /// the parse, fails `verify()`, or is semantically the identical
    /// checkpoint (whitespace flip) — resume never continues from state
    /// that differs from what was sealed.
    #[test]
    fn a_flipped_checkpoint_byte_never_resumes_divergent_state(
        offset in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let _lock = lock();
        let fx = fixture();
        let mut bytes = fx.checkpoint_json.clone().into_bytes();
        let at = offset % bytes.len();
        bytes[at] ^= 1 << bit;
        let Ok(text) = String::from_utf8(bytes) else { return; };
        let Ok(checkpoint) = Checkpoint::from_json(&text) else { return; };
        if checkpoint.verify().is_ok() {
            let original = Checkpoint::from_json(&fx.checkpoint_json).expect("clean checkpoint");
            prop_assert_eq!(
                checkpoint,
                original,
                "a verifying mutation must be the identical checkpoint"
            );
        }
    }

    /// Any proper prefix of a serialized checkpoint fails to parse — the
    /// torn-write fast path.
    #[test]
    fn a_truncated_checkpoint_never_parses(cut in 0usize..1_000_000) {
        let _lock = lock();
        let fx = fixture();
        let len = cut % fx.checkpoint_json.len();
        prop_assert!(
            Checkpoint::from_json(&fx.checkpoint_json[..len]).is_err(),
            "truncation at byte {} parsed",
            len
        );
    }
}

// ---------------------------------------------------------------------------
// Satellite: the paired-slice and coordinator wire formats under the same
// byte-flip / truncation regime
// ---------------------------------------------------------------------------

/// Loads `scenarios/pingspoof.json` shrunk to integration-test scale: a
/// paired adversarial campaign whose parts carry clean *and* attacked
/// campaign slices.
fn tiny_paired_scenario() -> Scenario {
    let path = scenarios_dir().join("pingspoof.json");
    let text = std::fs::read_to_string(&path).expect("pingspoof.json");
    let mut scenario = Scenario::from_json(&text)
        .expect("pingspoof parses")
        .quick_scaled();
    scenario.net.num_nodes = 40;
    scenario.runs = 3;
    scenario.warmup_ms = 800.0;
    scenario.window_ms = 8_000.0;
    if let Workload::Adversarial { attackers, .. } = &mut scenario.workload {
        *attackers = (*attackers).clamp(1, 3);
    }
    assert!(matches!(scenario.workload, Workload::Adversarial { .. }));
    scenario
}

struct PairedFixture {
    part0_json: String,
    part1_json: String,
    reference: ScenarioOutcome,
}

/// Two paired-slice parts and their clean merge — built once, behind the
/// fault lock of the calling test.
fn paired_fixture() -> &'static PairedFixture {
    static FIXTURE: OnceLock<PairedFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let scenario = tiny_paired_scenario();
        let parts = shard_all(&scenario, 2);
        let reference = merge_shards(parts.clone()).expect("clean paired merge");
        PairedFixture {
            part0_json: parts[0].to_json(),
            part1_json: parts[1].to_json(),
            reference,
        }
    })
}

struct CoordFixture {
    envelope: PrefixEnvelope,
    envelope_json: String,
    decision: StopDecision,
    decision_json: String,
}

/// A sealed prefix envelope and stop decision for the tiny scenario, the
/// exact payloads `POST /coord/submit` and the decision routes exchange.
fn coord_fixture() -> &'static CoordFixture {
    static FIXTURE: OnceLock<CoordFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let digest = scenario_digest(&tiny_scenario());
        let mut deltas = StreamingSummary::new();
        for i in 0..40 {
            deltas.record(10.0 + f64::from(i) * 0.25);
        }
        let mut run_means = StreamingSummary::new();
        for mean in [10.1, 10.4, 9.9] {
            run_means.record(mean);
        }
        let mut envelope = PrefixEnvelope {
            version: COORD_FORMAT_VERSION,
            scenario_digest: digest,
            cell_index: 0,
            shard_index: 0,
            shard_count: 2,
            upto: 3,
            deltas,
            run_means,
            measured_runs: 3,
            digest: 0,
        };
        envelope.seal();
        let mut decision = StopDecision {
            version: COORD_FORMAT_VERSION,
            scenario_digest: digest,
            cell_index: 0,
            stop_at: Some(2),
            rule: "ci(95%, ±5%, min 2)".to_string(),
            digest: 0,
        };
        decision.seal();
        let envelope_json = envelope.to_json();
        let decision_json = decision.to_json();
        CoordFixture {
            envelope,
            envelope_json,
            decision,
            decision_json,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any single bit of a paired-slice part either fails the
    /// parse, fails the merge, or merges to exactly the clean paired
    /// outcome — a corrupt clean/attacked slice is never silently folded
    /// into an `AdversaryReport`.
    #[test]
    fn a_flipped_paired_part_byte_never_silently_merges(
        offset in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let _lock = lock();
        let fx = paired_fixture();
        let mut bytes = fx.part0_json.clone().into_bytes();
        let at = offset % bytes.len();
        bytes[at] ^= 1 << bit;
        let Ok(text) = String::from_utf8(bytes) else { return; };
        let Ok(part) = PartialOutcome::from_json(&text) else { return; };
        let other = PartialOutcome::from_json(&fx.part1_json).expect("clean part");
        match merge_shards(vec![part, other]) {
            Err(_) => {}
            Ok(merged) => prop_assert_eq!(
                merged.to_json(),
                fx.reference.to_json(),
                "a merge that accepts the mutated paired part must equal the clean merge"
            ),
        }
    }

    /// Any proper prefix of a paired-slice part fails to parse.
    #[test]
    fn a_truncated_paired_part_never_parses(cut in 0usize..1_000_000) {
        let _lock = lock();
        let fx = paired_fixture();
        let len = cut % fx.part0_json.len();
        prop_assert!(
            PartialOutcome::from_json(&fx.part0_json[..len]).is_err(),
            "truncation at byte {} parsed",
            len
        );
    }

    /// Flipping any single bit of a prefix envelope either fails the
    /// parse, fails `verify_seal()`, or is the bit-identical envelope — a
    /// coordinator never folds accumulator state that differs from what
    /// the shard sealed.
    #[test]
    fn a_flipped_prefix_envelope_byte_never_verifies_divergent(
        offset in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let fx = coord_fixture();
        let mut bytes = fx.envelope_json.clone().into_bytes();
        let at = offset % bytes.len();
        bytes[at] ^= 1 << bit;
        let Ok(text) = String::from_utf8(bytes) else { return; };
        let Ok(envelope) = PrefixEnvelope::from_json(&text) else { return; };
        if envelope.verify_seal().is_ok() {
            prop_assert_eq!(
                &envelope,
                &fx.envelope,
                "a verifying mutation must be the identical envelope"
            );
        }
    }

    /// Any proper prefix of a prefix envelope fails to parse — a torn
    /// submit body is rejected before it reaches the fold.
    #[test]
    fn a_truncated_prefix_envelope_never_parses(cut in 0usize..1_000_000) {
        let fx = coord_fixture();
        let len = cut % fx.envelope_json.len();
        prop_assert!(
            PrefixEnvelope::from_json(&fx.envelope_json[..len]).is_err(),
            "truncation at byte {} parsed",
            len
        );
    }

    /// Flipping any single bit of a stop decision either fails the parse,
    /// fails `verify_seal()`, or is the bit-identical decision — a shard
    /// never truncates its run range on a corrupted broadcast.
    #[test]
    fn a_flipped_stop_decision_byte_never_verifies_divergent(
        offset in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let fx = coord_fixture();
        let mut bytes = fx.decision_json.clone().into_bytes();
        let at = offset % bytes.len();
        bytes[at] ^= 1 << bit;
        let Ok(text) = String::from_utf8(bytes) else { return; };
        let Ok(decision) = StopDecision::from_json(&text) else { return; };
        if decision.verify_seal().is_ok() {
            prop_assert_eq!(
                &decision,
                &fx.decision,
                "a verifying mutation must be the identical decision"
            );
        }
    }
}
