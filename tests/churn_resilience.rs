//! Integration: behaviour under churn (the paper's simulator models
//! session-length-driven join/leave events; §V.A).

use bcbpt::{ChurnModel, ExperimentConfig, Protocol};

fn churny() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
    cfg.net.num_nodes = 150;
    cfg.net.churn = ChurnModel {
        median_session_ms: 60_000.0,
        session_sigma: 1.0,
        mean_offline_ms: 20_000.0,
    };
    cfg.warmup_ms = 3_000.0;
    cfg.window_ms = 20_000.0;
    cfg.runs = 8;
    cfg
}

#[test]
fn protocols_keep_relaying_under_churn() {
    for protocol in [Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()] {
        let result = churny().with_protocol(protocol).run().unwrap();
        assert!(
            !result.runs.is_empty(),
            "{protocol}: no successful runs under churn"
        );
        // Coverage may dip below 100% (nodes offline mid-flood), but the
        // overlay must not fragment.
        assert!(
            result.mean_coverage() > 0.80,
            "{protocol}: coverage {} too low under churn",
            result.mean_coverage()
        );
    }
}

#[test]
fn heavy_churn_does_not_deadlock_or_panic() {
    let mut cfg = churny();
    cfg.net.churn = ChurnModel {
        median_session_ms: 5_000.0,
        session_sigma: 1.2,
        mean_offline_ms: 2_000.0,
    };
    cfg.runs = 4;
    cfg.window_ms = 10_000.0;
    for protocol in [Protocol::Bitcoin, Protocol::bcbpt_paper()] {
        // The assertion is completion: campaigns terminate and yield data
        // structures in a consistent state.
        let result = cfg.with_protocol(protocol).run().unwrap();
        for run in &result.runs {
            assert!(run.online > 0);
            assert!(run.reached <= result.num_nodes);
        }
    }
}

#[test]
fn churned_nodes_lose_cluster_membership_and_regain_it() {
    use bcbpt::{NetConfig, Network, NodeId};
    let mut config = NetConfig::test_scale();
    config.num_nodes = 60;
    config.churn = ChurnModel {
        median_session_ms: 2_000.0,
        session_sigma: 0.6,
        mean_offline_ms: 1_000.0,
    };
    let mut net = Network::build(config, Protocol::bcbpt_paper().build_policy(), 11).unwrap();
    net.run_for_ms(20_000.0);
    // Every *online* node has cluster membership; offline nodes have none.
    for i in 0..60u32 {
        let node = NodeId::from_index(i);
        if net.is_online(node) {
            // Nodes that just rejoined may briefly await their next
            // discovery tick; allow either but require the common case.
            continue;
        }
        assert_eq!(
            net.cluster_of(node),
            None,
            "offline node {node} still registered"
        );
    }
    let online_clustered = (0..60u32)
        .map(NodeId::from_index)
        .filter(|&n| net.is_online(n) && net.cluster_of(n).is_some())
        .count();
    let online_total = (0..60u32)
        .map(NodeId::from_index)
        .filter(|&n| net.is_online(n))
        .count();
    assert!(
        online_clustered * 10 >= online_total * 8,
        "only {online_clustered}/{online_total} online nodes clustered"
    );
}
