//! End-to-end coverage of the coded-relay subsystem: the `full` relay
//! through the registry reproduces the legacy path's dynamics on every
//! checked-in scenario, the frugal strategies are thread-count invariant,
//! relay sweeps shard and merge byte-identically, and the checked-in
//! `relay` scenario records the waste ordering the subsystem exists to
//! expose (compact and rlnc strictly below full).

use bcbpt::experiments::{merge_shards, run_shard, CellReport, RelayForkExt};
use bcbpt::{ExperimentConfig, Protocol, RelaySpec, Scenario, ShardSpec, Sweep, Workload};
use serde::{Serialize, Value};

/// Shrinks a quick-scaled scenario further so a two-variant comparison
/// over every builtin stays CI-sized.
fn ci_scale(mut s: Scenario) -> Scenario {
    s = s.quick_scaled();
    s.net.num_nodes = s.net.num_nodes.min(60);
    s.runs = s.runs.min(2);
    s.warmup_ms = s.warmup_ms.min(1_000.0);
    s.window_ms = s.window_ms.min(10_000.0);
    if let Workload::Mining { duration_ms, .. } = &mut s.workload {
        *duration_ms = duration_ms.min(20_000.0);
    }
    if let Workload::Adversarial { attackers, .. } = &mut s.workload {
        *attackers = (*attackers).min(s.net.num_nodes / 10).max(1);
    }
    if let Some(sweep) = &mut s.sweep {
        sweep.thresholds_ms.truncate(2);
        sweep.num_nodes = sweep.num_nodes.iter().map(|&n| n.min(60)).collect();
        let mut seen = std::collections::BTreeSet::new();
        sweep.num_nodes.retain(|&n| seen.insert(n));
    }
    s
}

/// Strips the keys that only exist because waste accounting is on — the
/// redundant-delivery maps inside `MessageStats` and the `relay`
/// extension of fork reports — so a relay-on outcome can be compared
/// field-for-field against the legacy relay-free output.
fn strip_accounting(v: &Value) -> Value {
    match v {
        Value::Map(entries) => Value::Map(
            entries
                .iter()
                .filter(|(k, _)| k != "redundant_counts" && k != "redundant_bytes" && k != "relay")
                .map(|(k, inner)| (k.clone(), strip_accounting(inner)))
                .collect(),
        ),
        Value::Seq(items) => Value::Seq(items.iter().map(strip_accounting).collect()),
        other => other.clone(),
    }
}

#[test]
fn registry_full_relay_matches_legacy_dynamics_on_every_builtin() {
    for name in Scenario::builtin_names() {
        if *name == "relay" {
            // The relay builtin already sweeps strategies; it is covered by
            // `checked_in_relay_scenario_records_the_waste_ordering`.
            continue;
        }
        let legacy = ci_scale(Scenario::builtin(name).expect("builtin resolves"));
        let mut with_full = legacy.clone();
        // Base-level relay: every cell runs the registry `full` strategy
        // (relay-axis builtins already sweep it; overriding the base is a
        // no-op for them).
        with_full.relay = Some(RelaySpec::new("full"));
        let baseline = legacy.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        let instrumented = with_full.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        // Waste accounting adds counters but must not perturb a single
        // event: after stripping the accounting-only fields the outcomes
        // are identical, cell for cell, run for run.
        assert_eq!(
            strip_accounting(&baseline.to_value()),
            strip_accounting(&instrumented.to_value()),
            "{name}: full relay through the registry drifted from the legacy path"
        );
    }
}

fn relay_campaign(relay: &str) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Protocol::bcbpt_paper());
    cfg.net.num_nodes = 60;
    cfg.warmup_ms = 1_000.0;
    cfg.window_ms = 10_000.0;
    cfg.runs = 4;
    cfg.relay = Some(RelaySpec::new(relay));
    cfg
}

#[test]
fn frugal_relay_campaigns_are_thread_count_invariant() {
    for relay in ["compact", "rlnc(chunks=8)"] {
        let cfg = relay_campaign(relay);
        let serial = cfg.run_serial().unwrap();
        for threads in [3, 8] {
            let parallel = cfg.run_with_threads(threads).unwrap();
            assert_eq!(
                parallel, serial,
                "{relay}: output must be byte-identical at {threads} threads"
            );
        }
    }
}

#[test]
fn relay_sweep_shards_merge_byte_identically() {
    let mut scenario =
        Scenario::from_experiment("relay-shards", &relay_campaign("full"), Workload::TxFlood);
    scenario.relay = None;
    scenario.runs = 4;
    let scenario = scenario.with_sweep(Sweep::over_relays(["full", "compact", "rlnc(chunks=8)"]));
    let whole = scenario.run_batch().unwrap();
    let parts: Vec<_> = (0..2)
        .map(|index| run_shard(&scenario, ShardSpec::new(index, 2).unwrap()).unwrap())
        .collect();
    let merged = merge_shards(parts).unwrap();
    assert_eq!(merged, whole, "2-shard merge must equal the batch run");
}

#[test]
fn checked_in_relay_scenario_records_the_waste_ordering() {
    let scenario = ci_scale(Scenario::builtin("relay").expect("relay builtin"));
    let outcome = scenario.run().unwrap();
    assert_eq!(outcome.cells.len(), 6, "2 protocols × 3 relays");
    // Per protocol: the frugal strategies waste strictly less than full.
    for protocol in ["bitcoin", "bcbpt(dt=25ms)"] {
        let ext = |relay: &str| -> RelayForkExt {
            let label = format!("{protocol} × {relay}");
            let cell = outcome
                .cells
                .iter()
                .find(|c| c.label == label)
                .unwrap_or_else(|| panic!("missing cell {label}"));
            let CellReport::Forks { report } = &cell.report else {
                panic!("{label}: mining cell must carry a fork report");
            };
            report.relay.clone().unwrap_or_else(|| {
                panic!("{label}: relay sweep cells must carry the relay extension")
            })
        };
        let full = ext("full");
        let compact = ext("compact");
        let rlnc = ext("rlnc(chunks=16)");
        for e in [&full, &compact, &rlnc] {
            assert!(e.bandwidth.waste_ratio.is_finite());
            assert!(e.bandwidth.bytes_on_wire > 0);
            assert!(e.block_delay_ms > 0.0, "{}: delay telemetry live", e.relay);
        }
        assert!(
            compact.bandwidth.waste_ratio < full.bandwidth.waste_ratio,
            "{protocol}: compact ({}) must waste less than full ({})",
            compact.bandwidth.waste_ratio,
            full.bandwidth.waste_ratio
        );
        assert!(
            rlnc.bandwidth.waste_ratio < full.bandwidth.waste_ratio,
            "{protocol}: rlnc ({}) must waste less than full ({})",
            rlnc.bandwidth.waste_ratio,
            full.bandwidth.waste_ratio
        );
    }
    // The rendered table pairs delay with wire bytes and waste.
    let text = outcome.render();
    assert!(text.contains("delay_ms"), "{text}");
    assert!(text.contains("wire_mb"), "{text}");
    assert!(text.contains("waste"), "{text}");
}
