//! Integration: the paper's headline comparisons, end to end.
//!
//! These run the full pipeline (placement → clustering → relay →
//! measurement → statistics) at CI scale and assert the *shape* of the
//! paper's results: who wins and in which direction, not absolute numbers.

use bcbpt::{fig3, fig4, ExperimentConfig, Protocol};

fn base() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
    cfg.net.num_nodes = 250;
    cfg.warmup_ms = 4_000.0;
    cfg.window_ms = 20_000.0;
    cfg.runs = 15;
    cfg
}

#[test]
fn fig3_bcbpt_beats_bitcoin_in_mean_and_variance() {
    let bundle = fig3(&base()).expect("fig3 runs");
    let rows: Vec<(String, Vec<f64>)> = bundle
        .table
        .rows()
        .map(|(l, v)| (l.to_string(), v.to_vec()))
        .collect();
    let stat = |label: &str, idx: usize| {
        rows.iter()
            .find(|(l, _)| l.starts_with(label))
            .map(|(_, v)| v[idx])
            .unwrap_or_else(|| panic!("row {label} missing"))
    };
    // Column order: mean, variance, median, p90, max, samples.
    let (mean, var, median) = (0, 1, 2);

    // The paper's headline (Fig. 3): BCBPT improves over both baselines.
    assert!(
        stat("bcbpt", mean) < stat("bitcoin", mean),
        "bcbpt mean {} !< bitcoin mean {}",
        stat("bcbpt", mean),
        stat("bitcoin", mean)
    );
    assert!(
        stat("bcbpt", median) < stat("bitcoin", median),
        "bcbpt median must beat bitcoin"
    );
    assert!(
        stat("bcbpt", var) < stat("bitcoin", var),
        "bcbpt variance {} !< bitcoin variance {}",
        stat("bcbpt", var),
        stat("bitcoin", var)
    );
    // BCBPT also improves on the geographic clustering baseline (the
    // paper's §V.C: LBC suffers from geographically-close-but-internet-far
    // pairs).
    assert!(
        stat("bcbpt", var) < stat("lbc", var),
        "bcbpt variance {} !< lbc variance {}",
        stat("bcbpt", var),
        stat("lbc", var)
    );
    // And the clustered protocols both beat the random baseline on mean.
    assert!(stat("lbc", mean) < stat("bitcoin", mean));
}

#[test]
fn fig4_produces_the_three_paper_thresholds() {
    let bundle = fig4(&base()).expect("fig4 runs");
    let labels: Vec<&str> = bundle
        .figure
        .series
        .iter()
        .map(|s| s.label.as_str())
        .collect();
    assert_eq!(labels.len(), 3);
    for needle in ["dt=30ms", "dt=50ms", "dt=100ms"] {
        assert!(
            labels.iter().any(|l| l.contains(needle)),
            "missing {needle} in {labels:?}"
        );
    }
    // All three distributions carry real samples.
    for (label, values) in bundle.table.rows() {
        assert!(values[5] > 0.0, "{label} has no samples");
    }
}

#[test]
fn tight_threshold_beats_loose_threshold() {
    // The paper's Fig. 4 trend — "less distance threshold performs less
    // variance of delays" — asserted at a contrast wide enough to clear
    // CI-scale noise (the 30-vs-100 ms gap needs the full 5000-node
    // network to separate reliably; see EXPERIMENTS.md).
    use bcbpt::threshold_sweep;
    let table = threshold_sweep(&base(), &[30.0, 250.0]).expect("sweep runs");
    let rows: Vec<(String, Vec<f64>)> = table
        .rows()
        .map(|(l, v)| (l.to_string(), v.to_vec()))
        .collect();
    let stat = |label: &str, idx: usize| {
        rows.iter()
            .find(|(l, _)| l.contains(label))
            .map(|(_, v)| v[idx])
            .unwrap()
    };
    // Columns: dt, mean, variance, p90, clusters, mean_cluster, max_cluster.
    assert!(
        stat("dt=30ms", 2) < stat("dt=250ms", 2),
        "variance at 30ms ({}) should beat 250ms ({})",
        stat("dt=30ms", 2),
        stat("dt=250ms", 2)
    );
    assert!(
        stat("dt=30ms", 3) < stat("dt=250ms", 3),
        "p90 at 30ms should beat 250ms"
    );
    // And the structural driver the paper cites: tighter thresholds keep
    // clusters smaller ("the number of nodes at each cluster is minimised").
    assert!(
        stat("dt=30ms", 4) > stat("dt=250ms", 4),
        "more clusters when tight"
    );
    assert!(
        stat("dt=30ms", 6) < stat("dt=250ms", 6),
        "smaller max cluster when tight"
    );
}

#[test]
fn campaigns_with_same_seed_are_reproducible() {
    let cfg = base().with_protocol(Protocol::bcbpt_paper());
    let mut small = cfg.clone();
    small.runs = 3;
    small.net.num_nodes = 100;
    small.warmup_ms = 1_500.0;
    let a = small.run().unwrap();
    let b = small.run().unwrap();
    assert_eq!(a, b, "same seed, same campaign, same results");
}

#[test]
fn all_protocols_achieve_full_coverage_without_churn() {
    let mut cfg = base();
    cfg.runs = 3;
    cfg.net.num_nodes = 120;
    cfg.warmup_ms = 2_000.0;
    for protocol in [Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()] {
        let result = cfg.with_protocol(protocol).run().unwrap();
        assert!(
            result.mean_coverage() > 0.97,
            "{protocol}: coverage {}",
            result.mean_coverage()
        );
    }
}
