//! The determinism contract for "shard every workload": every workload
//! family — streaming campaigns, paired adversarial campaigns, mining
//! fork campaigns, and the replicated single-shot tables — executes as
//! 1, 2 or 5 independent shards at 1, 3 or 8 worker threads and merges
//! back byte-identical to the unsharded batch run; and a coordinated
//! adaptive stop truncates the sharded campaign to exactly the
//! `FixedRuns` prefix `0..S` of the full run stream, with the same `S`
//! at every thread count.

use bcbpt::experiments::{
    merge_shards, run_shard_in, run_shard_with, LocalCoordinator, PartialOutcome, ShardRunOptions,
    ShardSpec, StopCoordinator,
};
use bcbpt::{ProtocolRegistry, Scenario, StopRule, Workload};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

/// Shrinks a quick-scaled scenario to integration-test scale (mirrors
/// `tests/shard_merge.rs`, slightly harder: this suite multiplies every
/// scenario by a shard × thread matrix).
fn shrink(scenario: &mut Scenario) {
    scenario.net.num_nodes = scenario.net.num_nodes.min(50);
    scenario.runs = scenario.runs.min(3);
    scenario.warmup_ms = scenario.warmup_ms.min(800.0);
    scenario.window_ms = scenario.window_ms.min(8_000.0);
    if let Workload::Mining { duration_ms, .. } = &mut scenario.workload {
        *duration_ms = duration_ms.min(12_000.0);
    }
    if let Workload::Adversarial { attackers, .. } = &mut scenario.workload {
        *attackers = (*attackers).clamp(1, 4);
    }
    if let Workload::Eclipse { victims, .. } = &mut scenario.workload {
        *victims = (*victims).min(4);
    }
    if let Some(sweep) = &mut scenario.sweep {
        sweep.protocols.truncate(2);
        sweep.thresholds_ms.truncate(1);
        sweep.num_nodes.truncate(1);
    }
}

/// Loads one checked-in scenario at integration-test scale.
fn checked_in(name: &str) -> Scenario {
    let path = scenarios_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut scenario = Scenario::from_json(&text)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .quick_scaled();
    shrink(&mut scenario);
    scenario
}

/// Executes every shard of `scenario` at an explicit thread count,
/// round-tripping each part through its JSON wire format exactly like
/// `scenario shard run --out` + `shard merge` would.
fn shard_all(scenario: &Scenario, count: usize, threads: usize) -> Vec<PartialOutcome> {
    let registry = ProtocolRegistry::builtins();
    (0..count)
        .map(|i| {
            let part = run_shard_in(
                scenario,
                ShardSpec::new(i, count).unwrap(),
                &registry,
                threads,
            )
            .unwrap_or_else(|e| {
                panic!(
                    "{} shard {i}/{count} at {threads} threads: {e}",
                    scenario.name
                )
            });
            PartialOutcome::from_json(&part.to_json())
                .unwrap_or_else(|e| panic!("{} shard {i}/{count} round trip: {e}", scenario.name))
        })
        .collect()
}

/// One representative checked-in scenario per workload family that used
/// to be "indivisible" (executed whole on shard 0): paired adversarial
/// campaigns (two strategies — they exercise different attacker state),
/// range-sharded mining, and the replicated single-shot tables.
const FAMILIES: &[&str] = &["pingspoof", "withhold", "forks", "partition", "eclipse"];

#[test]
fn every_workload_family_merges_byte_identically_at_any_shard_and_thread_count() {
    for name in FAMILIES {
        let scenario = checked_in(name);
        let batch = scenario
            .run_batch()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        // Every (count, threads) pairing merges to the same batch
        // reference, so equality across the pairs proves both shard- and
        // thread-invariance without paying for the full cross product.
        for (count, threads) in [(1usize, 3usize), (2, 8), (5, 1)] {
            let parts = shard_all(&scenario, count, threads);
            let merged = merge_shards(parts)
                .unwrap_or_else(|e| panic!("{name} at {count} shard(s), {threads} thread(s): {e}"));
            assert_eq!(
                merged, batch,
                "{name}: {count} shard(s) at {threads} thread(s) merged differently from batch"
            );
            assert_eq!(
                merged.to_json(),
                batch.to_json(),
                "{name}: {count} shard(s) at {threads} thread(s) serialized differently"
            );
        }
    }
}

/// A tiny streaming campaign with a deliberately loose adaptive rule:
/// two quiet run means satisfy a ±90% confidence interval, so a
/// coordinated fleet stops well inside the budget and the strict-prefix
/// property is actually exercised.
fn adaptive_scenario() -> Scenario {
    let mut scenario = checked_in("fig3");
    scenario.runs = 6;
    scenario.stop = Some(StopRule::CiHalfWidth {
        level: 0.95,
        rel_width: 0.9,
        min_runs: 2,
    });
    scenario
}

/// Runs a coordinated `shards`-way fleet of `scenario` concurrently (the
/// shards block on each other's prefix envelopes, so they must overlap in
/// time) and returns the merged outcome plus the coordinator's per-cell
/// stop indices.
fn coordinated_fleet(
    scenario: &Scenario,
    shards: usize,
    cadence: usize,
    threads: usize,
) -> (bcbpt::ScenarioOutcome, Vec<Option<usize>>) {
    let registry = ProtocolRegistry::builtins();
    let coordinator =
        Arc::new(LocalCoordinator::new(scenario, shards, cadence).expect("coordinator constructs"));
    let parts: Vec<PartialOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|i| {
                let coordinator = Arc::clone(&coordinator);
                let registry = &registry;
                scope.spawn(move || {
                    run_shard_with(
                        scenario,
                        ShardSpec::new(i, shards).unwrap(),
                        registry,
                        ShardRunOptions {
                            threads: Some(threads),
                            coordinator: Some(&*coordinator as &dyn StopCoordinator),
                            ..ShardRunOptions::default()
                        },
                    )
                    .unwrap_or_else(|e| panic!("coordinated shard {i}/{shards}: {e}"))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                let part = h.join().expect("shard thread");
                PartialOutcome::from_json(&part.to_json()).expect("part round trip")
            })
            .collect()
    });
    let stops: Vec<Option<usize>> = coordinator
        .decisions()
        .into_iter()
        .map(|d| d.expect("every cell decided").stop_at)
        .collect();
    let merged = merge_shards(parts).expect("coordinated merge");
    (merged, stops)
}

#[test]
fn a_coordinated_stop_is_a_deterministic_strict_prefix_of_the_budget() {
    let scenario = adaptive_scenario();
    let mut reference_stops: Option<Vec<Option<usize>>> = None;
    let mut reference_json: Option<String> = None;
    for threads in [1usize, 3, 8] {
        let (merged, stops) = coordinated_fleet(&scenario, 2, 1, threads);
        // The loose rule must actually fire inside the budget on every
        // cell, or this test is not exercising truncation at all.
        for (cell, stop) in stops.iter().enumerate() {
            let s = stop.unwrap_or_else(|| {
                panic!("cell {cell}: the loose ±90% rule did not fire inside the budget")
            });
            assert!(
                0 < s && s < scenario.runs,
                "cell {cell}: stop {s} not a strict prefix"
            );
        }
        // Thread-count invariance: same stop indices, same bytes.
        match (&reference_stops, &reference_json) {
            (None, _) => {
                reference_stops = Some(stops.clone());
                reference_json = Some(merged.to_json());
            }
            (Some(expected_stops), Some(expected_json)) => {
                assert_eq!(
                    &stops, expected_stops,
                    "{threads} threads changed the stop indices"
                );
                assert_eq!(
                    &merged.to_json(),
                    expected_json,
                    "{threads} threads changed the merged bytes"
                );
            }
            _ => unreachable!(),
        }
        // The strict-prefix contract: each cell of the merged coordinated
        // outcome is byte-identical to the same cell of a plain batch run
        // with `runs = S_cell` and no stop rule — the coordinator only
        // truncated the run stream, it never changed a folded byte. Cells
        // stop at different indices (their run streams differ), so each
        // gets its own `FixedRuns` reference batch.
        for (cell, stop) in stops.iter().enumerate() {
            let mut prefix = scenario.clone();
            prefix.runs = stop.expect("checked above");
            prefix.stop = None;
            let reference = prefix.run_batch().expect("prefix reference");
            assert_eq!(
                serde_json::to_string(&merged.cells[cell]).unwrap(),
                serde_json::to_string(&reference.cells[cell]).unwrap(),
                "cell {cell}: coordinated outcome is not the FixedRuns prefix at S={stop:?}"
            );
        }
    }
}

#[test]
fn the_coordinated_stop_index_is_recorded_in_every_part() {
    let scenario = adaptive_scenario();
    let registry = ProtocolRegistry::builtins();
    let coordinator =
        Arc::new(LocalCoordinator::new(&scenario, 2, 1).expect("coordinator constructs"));
    let scenario_ref = &scenario;
    let parts: Vec<PartialOutcome> = std::thread::scope(|scope| {
        (0..2)
            .map(|i| {
                let coordinator = Arc::clone(&coordinator);
                let registry = &registry;
                scope.spawn(move || {
                    run_shard_with(
                        scenario_ref,
                        ShardSpec::new(i, 2).unwrap(),
                        registry,
                        ShardRunOptions {
                            threads: Some(2),
                            coordinator: Some(&*coordinator as &dyn StopCoordinator),
                            ..ShardRunOptions::default()
                        },
                    )
                    .expect("coordinated shard")
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("shard thread"))
            .collect()
    });
    let stops: Vec<Option<usize>> = coordinator
        .decisions()
        .into_iter()
        .map(|d| d.expect("decided").stop_at)
        .collect();
    assert!(stops.iter().all(Option::is_some), "rule fired: {stops:?}");
    for (i, part) in parts.iter().enumerate() {
        assert_eq!(
            part.cell_stop_indices(),
            stops,
            "shard {i} recorded different stop indices than the coordinator broadcast"
        );
    }
    // `runs_saved` is the fleet-wide budget the early stops returned.
    let saved: usize = stops.iter().flatten().map(|s| scenario.runs - s).sum();
    assert_eq!(coordinator.runs_saved(), saved);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The paired-accumulator merge law: an adversarial campaign split at
    /// *arbitrary* shard boundaries (any fleet size up to one shard per
    /// run, at any thread count) reassembles the clean and attacked
    /// accumulator pairs into exactly the batch `AdversaryReport`.
    #[test]
    fn paired_slices_reassemble_identically_at_arbitrary_boundaries(
        shards in 1usize..=6,
        threads in 1usize..=3,
    ) {
        let mut scenario = checked_in("pingspoof");
        scenario.net.num_nodes = 40;
        let batch = scenario.run_batch().expect("batch reference");
        let parts = shard_all(&scenario, shards, threads);
        let merged = merge_shards(parts).expect("paired merge");
        prop_assert_eq!(
            merged.to_json(),
            batch.to_json(),
            "{} shard(s) at {} thread(s) broke the paired merge law",
            shards,
            threads
        );
    }
}
