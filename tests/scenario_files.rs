//! Golden-file coverage for the checked-in `scenarios/` directory: every
//! built-in scenario has a file, every file is exactly the serialized
//! built-in (pinning the JSON schema), and every file validates.

use bcbpt::{Scenario, ScenarioOutcome, Workload};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

#[test]
fn every_builtin_has_a_pinned_scenario_file() {
    for name in Scenario::builtin_names() {
        let path = scenarios_dir().join(format!("{name}.json"));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("{}: {e} (run `scenario export scenarios`)", path.display())
        });
        let builtin = Scenario::builtin(name).expect("builtin resolves");
        assert_eq!(
            text,
            format!("{}\n", builtin.to_json()),
            "{name}.json drifted from Scenario::builtin({name:?}); \
             regenerate with `scenario export scenarios`"
        );
        let parsed = Scenario::from_json(&text).expect("checked-in scenario parses");
        assert_eq!(parsed, builtin, "{name}.json round-trips to the builtin");
        parsed.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn no_stray_files_in_the_scenarios_directory() {
    let mut found: Vec<String> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ exists")
        .map(|entry| entry.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    found.sort();
    let mut expected: Vec<String> = Scenario::builtin_names()
        .iter()
        .map(|n| format!("{n}.json"))
        .collect();
    expected.sort();
    assert_eq!(found, expected, "scenarios/ and builtins must stay in sync");
}

#[test]
fn scenario_schema_spot_checks() {
    // Pin the externally-visible schema decisions a reader of a scenario
    // file relies on: protocols are plain strings, workloads are tagged by
    // variant name, disabled churn is null.
    let fig3 = std::fs::read_to_string(scenarios_dir().join("fig3.json")).unwrap();
    assert!(fig3.contains("\"protocol\": \"bitcoin\""));
    assert!(fig3.contains("\"bcbpt(dt=25ms)\""));
    assert!(fig3.contains("\"workload\": \"TxFlood\""));
    assert!(fig3.contains("\"median_session_ms\": null"));
    // No adaptive budget declared = null (fixed runs); the sweep declares
    // one, pinning the StopRule schema scenario authors rely on.
    assert!(fig3.contains("\"stop\": null"));
    let sweep = std::fs::read_to_string(scenarios_dir().join("sweep.json")).unwrap();
    assert!(sweep.contains("\"CiHalfWidth\""));
    assert!(sweep.contains("\"rel_width\": 0.05"));
    assert!(sweep.contains("\"min_runs\": 8"));
    let forks = std::fs::read_to_string(scenarios_dir().join("forks.json")).unwrap();
    assert!(forks.contains("\"Mining\""));
    assert!(forks.contains("\"block_interval_ms\""));
    let churn = std::fs::read_to_string(scenarios_dir().join("churn.json")).unwrap();
    assert!(churn.contains("\"ChurnBurst\""));
    // Adversarial workloads carry a nested strategy enum; pin both the
    // workload tag and the strategy tags scenario authors rely on.
    let pingspoof = std::fs::read_to_string(scenarios_dir().join("pingspoof.json")).unwrap();
    assert!(pingspoof.contains("\"Adversarial\""));
    assert!(pingspoof.contains("\"PingSpoof\""));
    assert!(pingspoof.contains("\"spoof_factor\": 0.05"));
    assert!(pingspoof.contains("\"attackers\": 30"));
    let withhold = std::fs::read_to_string(scenarios_dir().join("withhold.json")).unwrap();
    assert!(withhold.contains("\"Withhold\""));
    assert!(withhold.contains("\"drop_fraction\": 0.5"));
}

#[test]
fn quick_scaled_builtins_run_and_outcomes_round_trip() {
    // One representative per workload family, shrunk further so this stays
    // integration-test sized; `scenario quick` covers the full set in CI.
    for name in ["forks", "partition"] {
        let mut scenario = Scenario::builtin(name).unwrap().quick_scaled();
        scenario.net.num_nodes = 80;
        if let Workload::Mining { duration_ms, .. } = &mut scenario.workload {
            *duration_ms = 20_000.0;
        }
        scenario.sweep = None; // single cell is enough here
        let outcome = scenario.run().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(outcome.cells.len(), 1);
        let back = ScenarioOutcome::from_json(&outcome.to_json()).unwrap();
        assert_eq!(back, outcome, "{name} outcome survives a JSON round trip");
        assert!(!back.render().is_empty());
    }
}
