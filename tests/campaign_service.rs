//! End-to-end tests of the campaign service (`bcbpt-serve`): in-process
//! server, real TCP, real HTTP — the same path `scenario serve` exposes.
//!
//! The service's three core contracts are pinned here:
//!
//! 1. **Stream fidelity** — N concurrent `GET /jobs/:id/events`
//!    subscribers each receive a gap-free, ascending, byte-identical copy
//!    of the session's event stream, terminated by `scenario_completed`
//!    (exactly what `scenario run --jsonl` writes for the same seed).
//! 2. **Digest-keyed caching** — resubmitting an already-computed
//!    scenario is answered from the outcome store: byte-identical bytes,
//!    zero additional runs executed.
//! 3. **Drain/park/resume** — a drained service parks running jobs at a
//!    durable checkpoint; a service restarted on the same spool resumes
//!    them and completes with a byte-identical outcome and stream.

use bcbpt_core::Scenario;
use bcbpt_serve::{client, ServeConfig, Server};
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A fresh spool directory per test (removed up front so a rerun never
/// resumes a previous run's jobs).
fn temp_spool(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bcbpt-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start_server(spool: &Path, workers: usize) -> (Server, String) {
    let mut config = ServeConfig::new(spool);
    config.workers = workers;
    let server = Server::start(config).expect("server starts");
    let addr = server.local_addr().to_string();
    client::wait_healthy(&addr, Duration::from_secs(5)).expect("healthy");
    (server, addr)
}

/// CI-scale fig3 — 3 protocol cells, a few runs each.
fn fig3_quick() -> Scenario {
    Scenario::builtin("fig3").expect("builtin").quick_scaled()
}

/// A slower single-cell campaign with enough runs that a drain reliably
/// lands mid-cell.
fn drainable() -> Scenario {
    let mut scenario = fig3_quick();
    scenario.name = "drainable".to_string();
    scenario.sweep = None;
    scenario.runs = 24;
    scenario
}

/// The reference event stream: what a `ScenarioSession` observer (and
/// thus `scenario run --jsonl`) serializes for this scenario.
fn session_lines(scenario: &Scenario) -> Vec<String> {
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    scenario
        .session()
        .observe_fn(move |event| {
            sink.lock()
                .unwrap()
                .push(serde_json::to_string(event).expect("event serializes"));
        })
        .block()
        .expect("session runs");
    Arc::try_unwrap(lines)
        .expect("observers dropped")
        .into_inner()
        .unwrap()
}

/// The reference outcome bytes: what `scenario run --json` prints.
fn direct_outcome_bytes(scenario: &Scenario) -> String {
    format!("{}\n", scenario.run().expect("direct run").to_json())
}

fn str_field(json: &str, key: &str) -> String {
    let value: Value = serde_json::from_str(json).expect("response parses");
    value
        .as_map()
        .map(|entries| serde::map_get(entries, key))
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("no string {key:?} in {json}"))
        .to_string()
}

fn u64_field(json: &str, key: &str) -> u64 {
    let value: Value = serde_json::from_str(json).expect("response parses");
    match value.as_map().map(|entries| serde::map_get(entries, key)) {
        Some(Value::U64(n)) => *n,
        other => panic!("no numeric {key:?} in {json} ({other:?})"),
    }
}

fn bool_field(json: &str, key: &str) -> bool {
    let value: Value = serde_json::from_str(json).expect("response parses");
    match value.as_map().map(|entries| serde::map_get(entries, key)) {
        Some(Value::Bool(b)) => *b,
        other => panic!("no boolean {key:?} in {json} ({other:?})"),
    }
}

/// Submits a scenario; returns (job id, cached).
fn submit(addr: &str, scenario: &Scenario, query: &str) -> (String, bool) {
    let response =
        client::post(addr, &format!("/scenarios{query}"), &scenario.to_json()).expect("submit");
    assert!(
        response.status == 202 || response.status == 200,
        "submit status {}: {}",
        response.status,
        response.text()
    );
    let body = response.text();
    (str_field(&body, "job"), bool_field(&body, "cached"))
}

fn stats(addr: &str) -> String {
    let response = client::get(addr, "/stats").expect("stats");
    assert_eq!(response.status, 200);
    response.text()
}

#[test]
fn concurrent_subscribers_all_see_the_exact_session_stream() {
    let expected = session_lines(&fig3_quick());
    let spool = temp_spool("subscribers");
    let (server, addr) = start_server(&spool, 1);
    let (job, cached) = submit(&addr, &fig3_quick(), "");
    assert!(!cached);
    let subscribers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            let path = format!("/jobs/{job}/events");
            std::thread::spawn(move || {
                let mut lines = Vec::new();
                let clean = client::stream_lines(&addr, &path, |line| {
                    lines.push(line.to_string());
                })
                .expect("stream");
                (lines, clean)
            })
        })
        .collect();
    client::wait_job(&addr, &job, Duration::from_secs(300)).expect("job settles");
    for subscriber in subscribers {
        let (lines, clean) = subscriber.join().expect("subscriber thread");
        assert!(clean, "stream should end with the chunked terminator");
        assert_eq!(lines, expected, "live stream must match the session's");
    }
    // A late subscriber (job already done) replays the identical stream.
    let mut replay = Vec::new();
    let clean = client::stream_lines(&addr, &format!("/jobs/{job}/events"), |line| {
        replay.push(line.to_string());
    })
    .expect("replay stream");
    assert!(clean);
    assert_eq!(replay, expected);
    assert!(
        expected
            .last()
            .expect("events")
            .contains("ScenarioCompleted"),
        "session stream ends in scenario_completed"
    );
    server.request_drain();
    server.wait().expect("drain");
}

#[test]
fn resubmission_is_served_from_the_digest_keyed_store() {
    let scenario = fig3_quick();
    let direct = direct_outcome_bytes(&scenario);
    let spool = temp_spool("cache");
    let (server, addr) = start_server(&spool, 1);
    let (job, cached) = submit(&addr, &scenario, "");
    assert!(!cached);
    client::wait_job(&addr, &job, Duration::from_secs(300)).expect("job settles");
    let outcome = client::get(&addr, &format!("/jobs/{job}/outcome")).expect("outcome");
    assert_eq!(outcome.status, 200);
    assert_eq!(
        outcome.text(),
        direct,
        "served outcome must be byte-identical to `scenario run --json`"
    );
    let before = stats(&addr);
    let runs_before = u64_field(&before, "runs_executed");
    assert!(runs_before > 0, "the first submission executed runs");
    assert_eq!(u64_field(&before, "cache_hits"), 0);
    // Resubmit: same digest, answered from the store without executing.
    let (job2, cached2) = submit(&addr, &scenario, "");
    assert!(cached2, "second submission must be a cache hit");
    assert_ne!(job2, job, "a cache hit is still a fresh job id");
    let outcome2 = client::get(&addr, &format!("/jobs/{job2}/outcome")).expect("outcome");
    assert_eq!(outcome2.text(), direct);
    let after = stats(&addr);
    assert_eq!(
        u64_field(&after, "runs_executed"),
        runs_before,
        "a cache hit must not execute any runs"
    );
    assert_eq!(u64_field(&after, "cache_hits"), 1);
    // The cached job replays the stored event stream, terminator and all.
    let mut lines = Vec::new();
    let clean = client::stream_lines(&addr, &format!("/jobs/{job2}/events"), |line| {
        lines.push(line.to_string());
    })
    .expect("cached stream");
    assert!(clean);
    assert!(lines.last().expect("events").contains("ScenarioCompleted"));
    server.request_drain();
    server.wait().expect("drain");
}

#[test]
fn multi_shard_jobs_merge_to_the_same_bytes() {
    let scenario = fig3_quick();
    let direct = direct_outcome_bytes(&scenario);
    let spool = temp_spool("shards");
    let (server, addr) = start_server(&spool, 2);
    let (job, cached) = submit(&addr, &scenario, "?shards=2");
    assert!(!cached);
    client::wait_job(&addr, &job, Duration::from_secs(300)).expect("job settles");
    let outcome = client::get(&addr, &format!("/jobs/{job}/outcome")).expect("outcome");
    assert_eq!(outcome.status, 200);
    assert_eq!(
        outcome.text(),
        direct,
        "merged shard outcome must equal the unsharded run"
    );
    // Multi-shard streams are synthesized at cell granularity but still
    // close every cell and terminate in scenario_completed.
    let mut lines = Vec::new();
    let clean = client::stream_lines(&addr, &format!("/jobs/{job}/events"), |line| {
        lines.push(line.to_string());
    })
    .expect("stream");
    assert!(clean);
    assert_eq!(lines.len(), fig3_quick().cells().len() * 2 + 1);
    assert!(lines.last().expect("events").contains("ScenarioCompleted"));
    server.request_drain();
    server.wait().expect("drain");
}

#[test]
fn adaptive_multi_shard_jobs_coordinate_the_stop_and_match_the_direct_run() {
    // A loose ±90% CI rule fires inside the budget; the in-process
    // coordinator folds the shards' prefix envelopes at every checkpoint
    // with the same `StopEval` an unsharded adaptive session uses, so the
    // merged truncated parts must reproduce the direct adaptive run
    // byte-for-byte — while executing strictly fewer fleet runs than the
    // fixed budget.
    let mut scenario = fig3_quick();
    scenario.name = "adaptive-fleet".to_string();
    scenario.runs = 6;
    scenario.stop = Some(bcbpt_core::StopRule::CiHalfWidth {
        level: 0.95,
        rel_width: 0.9,
        min_runs: 2,
    });
    let direct = direct_outcome_bytes(&scenario);
    let budget: u64 = (scenario.runs * scenario.cells().len()) as u64;

    let spool = temp_spool("adaptive");
    let (server, addr) = start_server(&spool, 2);
    let (job, cached) = submit(&addr, &scenario, "?shards=2");
    assert!(!cached);
    client::wait_job(&addr, &job, Duration::from_secs(300)).expect("job settles");
    let outcome = client::get(&addr, &format!("/jobs/{job}/outcome")).expect("outcome");
    assert_eq!(outcome.status, 200);
    assert_eq!(
        outcome.text(),
        direct,
        "coordinated adaptive fleet must equal the direct adaptive run"
    );
    let executed = u64_field(&stats(&addr), "runs_executed");
    assert!(
        executed < budget,
        "the coordinated stop must save runs: executed {executed} of {budget}"
    );
    server.request_drain();
    server.wait().expect("drain");
}

#[test]
fn adaptive_jobs_wider_than_the_worker_pool_are_refused() {
    // Every shard of an adaptive job blocks on the cell's stop decision,
    // which needs envelopes from the whole fleet — a fleet wider than the
    // worker pool would deadlock, so submission refuses it up front.
    let mut scenario = fig3_quick();
    scenario.name = "adaptive-too-wide".to_string();
    scenario.runs = 6;
    scenario.stop = Some(bcbpt_core::StopRule::CiHalfWidth {
        level: 0.95,
        rel_width: 0.9,
        min_runs: 2,
    });
    let spool = temp_spool("adaptive-wide");
    let (server, addr) = start_server(&spool, 2);
    let response = client::post(&addr, "/scenarios?shards=3", &scenario.to_json()).expect("submit");
    assert_eq!(response.status, 400, "{}", response.text());
    assert!(
        response.text().contains("worker"),
        "refusal explains the worker-pool bound: {}",
        response.text()
    );
    server.request_drain();
    server.wait().expect("drain");
}

#[test]
fn drain_parks_at_a_checkpoint_and_a_restart_resumes_byte_identically() {
    let scenario = drainable();
    let expected_lines = session_lines(&scenario);
    let direct = direct_outcome_bytes(&scenario);
    let spool = temp_spool("drain");
    let (server, addr) = start_server(&spool, 1);
    let (job, cached) = submit(&addr, &scenario, "");
    assert!(!cached);
    // A live subscriber, to witness the cut stream on park.
    let subscriber = {
        let addr = addr.clone();
        let path = format!("/jobs/{job}/events");
        std::thread::spawn(move || {
            let mut lines = Vec::new();
            let clean = client::stream_lines(&addr, &path, |line| lines.push(line.to_string()))
                .expect("stream");
            (lines, clean)
        })
    };
    // Wait for real progress, then drain mid-cell.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    while u64_field(&stats(&addr), "runs_executed") < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "no runs folded in time"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let response = client::post(&addr, "/shutdown", "").expect("shutdown");
    assert_eq!(response.status, 200);
    server.wait().expect("drain");
    let (partial_lines, clean) = subscriber.join().expect("subscriber");
    if clean {
        // The job finished in the drain window before parking (rare on a
        // fast machine): the stream is complete and the outcome stored —
        // nothing left to resume, so just verify the stored result.
        assert_eq!(partial_lines, expected_lines);
        let spool2 = spool.clone();
        let (server2, addr2) = start_server(&spool2, 1);
        let (_, cached2) = submit(&addr2, &scenario, "");
        assert!(cached2, "completed-before-park job must be stored");
        server2.request_drain();
        server2.wait().expect("drain");
        return;
    }
    assert!(
        !partial_lines.is_empty(),
        "the subscriber saw the folded prefix before the park"
    );
    assert!(
        partial_lines.len() < expected_lines.len(),
        "a parked stream is a strict prefix"
    );
    assert_eq!(
        partial_lines[..],
        expected_lines[..partial_lines.len()],
        "the folded prefix matches the session stream byte for byte"
    );
    // Restart on the same spool: the job is re-queued, resumes from its
    // checkpoint, and completes as if never interrupted.
    let (server2, addr2) = start_server(&spool, 1);
    client::wait_job(&addr2, &job, Duration::from_secs(300)).expect("resumed job settles");
    let outcome = client::get(&addr2, &format!("/jobs/{job}/outcome")).expect("outcome");
    assert_eq!(outcome.status, 200);
    assert_eq!(
        outcome.text(),
        direct,
        "a parked-and-resumed job must produce byte-identical output"
    );
    // The resumed job's stream = replayed prefix + live continuation —
    // indistinguishable from an uninterrupted run.
    let mut lines = Vec::new();
    let clean = client::stream_lines(&addr2, &format!("/jobs/{job}/events"), |line| {
        lines.push(line.to_string())
    })
    .expect("resumed stream");
    assert!(clean);
    assert_eq!(lines, expected_lines);
    server2.request_drain();
    server2.wait().expect("drain");
}
