//! Integration: instrumentation is a wall-clock side channel only.
//!
//! The hard rule of the observability layer (`bcbpt-obs`) is that it
//! never participates in the simulation: no RNG draws, no fold-order
//! influence, nothing in the serialized outcome. These tests enforce it
//! the only way that matters — run the same campaign with metrics
//! recording and span tracing fully armed, and demand the outcome bytes
//! match the uninstrumented run exactly, at every thread count.
//!
//! Span recording uses process-global state (`install_trace` /
//! `take_trace`), so the tests that arm it serialize on one mutex.

use bcbpt::Scenario;
use bcbpt_obs::MetricsSnapshot;
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Serializes the tests that touch the global trace recorder.
static TRACE_GATE: Mutex<()> = Mutex::new(());

fn run_outcome(scenario: &Scenario, threads: usize) -> String {
    scenario
        .session()
        .with_threads(threads)
        .block()
        .expect("campaign runs")
        .to_json()
}

/// The core guarantee: arming every observability facility changes
/// nothing about the outcome bytes, for a clean figure campaign and an
/// adversarial one, at 1, 3 and 8 worker threads.
#[test]
fn instrumented_outcome_is_byte_identical() {
    let _gate = TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    for name in ["fig3", "pingspoof"] {
        let scenario = Scenario::builtin(name).expect("builtin").quick_scaled();
        // Uninstrumented baselines first (metrics counters are always-on
        // by design; "uninstrumented" means no trace sink installed and
        // no snapshot consumer — the disabled path the driver ships).
        let baselines: Vec<String> = [1, 3, 8]
            .iter()
            .map(|&t| run_outcome(&scenario, t))
            .collect();
        assert_eq!(
            baselines[0], baselines[1],
            "{name}: outcome differs across thread counts (1 vs 3)"
        );
        assert_eq!(
            baselines[0], baselines[2],
            "{name}: outcome differs across thread counts (1 vs 8)"
        );
        for (i, &threads) in [1usize, 3, 8].iter().enumerate() {
            bcbpt_core::obs::register_metrics();
            bcbpt_obs::install_trace();
            let instrumented = run_outcome(&scenario, threads);
            let spans = bcbpt_obs::take_trace();
            assert_eq!(
                instrumented, baselines[i],
                "{name}: instrumented run at {threads} thread(s) \
                 diverged from the uninstrumented outcome"
            );
            assert!(
                !spans.is_empty(),
                "{name}: tracing was armed but recorded no spans"
            );
        }
    }
}

/// The spans a campaign emits cover every phase of the runner: warmup,
/// the measuring window, per-run execution and the in-order fold.
#[test]
fn campaign_trace_covers_every_phase() {
    let _gate = TRACE_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let scenario = Scenario::builtin("fig3").expect("builtin").quick_scaled();
    bcbpt_obs::install_trace();
    let _ = run_outcome(&scenario, 3);
    let spans = bcbpt_obs::take_trace();
    for phase in ["warmup", "measure", "run", "fold"] {
        assert!(
            spans.iter().any(|s| s.name == phase),
            "no {phase:?} span in {} recorded spans",
            spans.len()
        );
    }
    // And the Chrome-trace rendering of them is valid JSON with one
    // entry per span.
    let json = bcbpt_obs::chrome_trace_json(&spans);
    let value: serde::Value = serde_json::from_str(&json).expect("trace JSON parses");
    let events = serde::map_get(value.as_map().expect("object"), "traceEvents")
        .as_seq()
        .expect("traceEvents is an array");
    assert_eq!(events.len(), spans.len());
}

/// A campaign actually moves the sim/runner metrics: events drain, runs
/// get timed, the fold parks at least zero runs. Snapshots round-trip
/// through JSON unchanged.
#[test]
fn campaign_metrics_flow_into_the_global_registry() {
    let scenario = Scenario::builtin("fig3").expect("builtin").quick_scaled();
    bcbpt_core::obs::register_metrics();
    let before = bcbpt_obs::global()
        .snapshot()
        .counter("bcbpt_sim_events_drained_total")
        .expect("registered");
    let _ = run_outcome(&scenario, 2);
    let snapshot = bcbpt_obs::global().snapshot();
    let drained = snapshot
        .counter("bcbpt_sim_events_drained_total")
        .expect("registered");
    assert!(
        drained > before,
        "a campaign drained no simulator events ({before} -> {drained})"
    );
    let runs = snapshot
        .histogram("bcbpt_runner_run_seconds")
        .expect("registered");
    assert!(runs.count > 0, "no per-run wall-clock samples recorded");
    assert_eq!(
        runs.count,
        runs.buckets.iter().sum::<u64>(),
        "per-bucket counts (including +Inf) must sum to the observation count"
    );

    let json = serde_json::to_string(&snapshot.to_value()).expect("snapshot serializes");
    let value: serde::Value = serde_json::from_str(&json).expect("snapshot JSON parses");
    let back = MetricsSnapshot::from_value(&value).expect("snapshot deserializes");
    assert_eq!(
        serde_json::to_string(&back.to_value()).expect("round-trip serializes"),
        json,
        "snapshot JSON round-trip drifted"
    );
}
