//! Integration coverage for cross-host campaign sharding: for every
//! checked-in scenario, executing the run range as 1, 2 or 5 independent
//! shards and merging the serialized parts reproduces the unsharded batch
//! outcome byte-for-byte — and scenarios that declare an adaptive stop
//! rule are rejected with a clear error unless the shard is pointed at a
//! coordinator, instead of silently diverging (the coordinated path is
//! pinned by `tests/shard_everything.rs`).

use bcbpt::experiments::{merge_shards, run_shard, PartialOutcome, ShardSpec};
use bcbpt::{Scenario, StopRule, Workload};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

/// Shrinks a quick-scaled scenario further so the whole corpus stays
/// integration-test sized in debug builds (mirrors
/// `tests/session_streaming.rs`).
fn shrink(scenario: &mut Scenario) {
    scenario.net.num_nodes = scenario.net.num_nodes.min(60);
    scenario.runs = scenario.runs.min(3);
    scenario.warmup_ms = scenario.warmup_ms.min(1_000.0);
    scenario.window_ms = scenario.window_ms.min(10_000.0);
    if let Workload::Mining { duration_ms, .. } = &mut scenario.workload {
        *duration_ms = duration_ms.min(15_000.0);
    }
    if let Workload::Adversarial { attackers, .. } = &mut scenario.workload {
        *attackers = (*attackers).clamp(1, 6);
    }
    if let Workload::Eclipse { victims, .. } = &mut scenario.workload {
        *victims = (*victims).min(5);
    }
    if let Some(sweep) = &mut scenario.sweep {
        sweep.protocols.truncate(2);
        sweep.thresholds_ms.truncate(2);
        sweep.num_nodes.truncate(1);
    }
}

/// Loads one checked-in scenario at integration-test scale.
fn checked_in(name: &str) -> Scenario {
    let path = scenarios_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut scenario = Scenario::from_json(&text)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .quick_scaled();
    shrink(&mut scenario);
    scenario
}

/// Executes every shard of `scenario` and round-trips each part through
/// its JSON wire format — the merge must consume exactly what
/// `scenario shard run --out` writes.
fn shard_all(scenario: &Scenario, count: usize) -> Vec<PartialOutcome> {
    (0..count)
        .map(|i| {
            let part = run_shard(scenario, ShardSpec::new(i, count).unwrap())
                .unwrap_or_else(|e| panic!("{} shard {i}/{count}: {e}", scenario.name));
            PartialOutcome::from_json(&part.to_json())
                .unwrap_or_else(|e| panic!("{} shard {i}/{count} round trip: {e}", scenario.name))
        })
        .collect()
}

#[test]
fn sharded_execution_matches_the_batch_reference_on_every_checked_in_scenario() {
    for name in Scenario::builtin_names() {
        let mut scenario = checked_in(name);
        if scenario.stop.as_ref().is_some_and(StopRule::is_adaptive) {
            // Covered by adaptive_stop_scenarios_are_rejected; the
            // equivalence claim below is for the batch semantics, which
            // ignore the stop rule — so strip it.
            scenario.stop = None;
        }
        let batch = scenario
            .run_batch()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for count in [1usize, 2, 5] {
            let parts = shard_all(&scenario, count);
            let merged =
                merge_shards(parts).unwrap_or_else(|e| panic!("{name} at {count} shard(s): {e}"));
            assert_eq!(
                merged, batch,
                "{name}: {count} shard(s) merged differently from the batch reference"
            );
            assert_eq!(
                merged.to_json(),
                batch.to_json(),
                "{name}: {count}-shard merge serialized differently"
            );
        }
    }
}

#[test]
fn merged_statistics_accessors_match_the_batch_recompute_bitwise() {
    // The merged outcome's cached accessors go through the same lazy path
    // as a deserialized batch outcome; the pooled summary and ECDF must be
    // bit-identical — i.e. the shard boundaries never reorder samples.
    let scenario = checked_in("fig3");
    let batch = scenario.run_batch().unwrap();
    let merged = merge_shards(shard_all(&scenario, 2)).unwrap();
    for (cell_merged, cell_batch) in merged.cells.iter().zip(&batch.cells) {
        assert_eq!(cell_merged.delta_summary(), cell_batch.delta_summary());
        assert_eq!(cell_merged.delta_ecdf(), cell_batch.delta_ecdf());
    }
    assert_eq!(merged.delta_summary(), batch.delta_summary());
}

#[test]
fn adaptive_stop_scenarios_are_rejected_with_a_clear_error() {
    // scenarios/sweep.json declares a CiHalfWidth budget — the checked-in
    // witness that sharding refuses adaptive stop rules.
    let scenario = checked_in("sweep");
    assert!(
        scenario.stop.as_ref().is_some_and(StopRule::is_adaptive),
        "sweep.json must keep declaring an adaptive stop rule for this test"
    );
    let err = run_shard(&scenario, ShardSpec::new(0, 2).unwrap()).unwrap_err();
    for needle in ["adaptive", "stop", "shard"] {
        assert!(
            err.contains(needle),
            "error should mention {needle:?}: {err}"
        );
    }
}

#[test]
fn adversarial_scenarios_range_shard_instead_of_deferring() {
    // Paired adversarial campaigns used to be indivisible (shard 0 ran
    // them whole, later shards deferred). They now range-shard like every
    // other family: each shard runs its slice of the clean and attacked
    // campaigns, reports real work, and the merge still reproduces the
    // batch outcome exactly.
    let scenario = checked_in("pingspoof");
    let batch = scenario.run_batch().unwrap();
    let parts = shard_all(&scenario, 2);
    for (i, part) in parts.iter().enumerate() {
        assert!(
            part.runs_used() > 0,
            "shard {i} deferred instead of running its paired slice"
        );
    }
    let merged = merge_shards(parts).unwrap();
    assert_eq!(merged, batch);
}
