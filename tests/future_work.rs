//! Integration: the experiments the paper declares as future work —
//! overhead accounting (§IV.A) and the eclipse/partition/behavioural
//! evaluations (§V.C) — exercised through the public facade.

use bcbpt::{
    adversarial_campaign, eclipse_table, overhead_table, partition_table, validate_delays,
    AdversaryStrategy, ExperimentConfig, Protocol,
};

fn base() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
    cfg.net.num_nodes = 150;
    cfg.warmup_ms = 3_000.0;
    cfg.window_ms = 15_000.0;
    cfg.runs = 4;
    cfg
}

#[test]
fn overhead_ranks_bcbpt_highest() {
    let table = overhead_table(
        &base(),
        &[Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()],
    )
    .unwrap();
    let probe: Vec<(String, f64)> = table.rows().map(|(l, v)| (l.to_string(), v[0])).collect();
    let of = |label: &str| {
        probe
            .iter()
            .find(|(l, _)| l.starts_with(label))
            .map(|(_, p)| *p)
            .unwrap()
    };
    assert_eq!(of("bitcoin"), 0.0);
    assert_eq!(of("lbc"), 0.0);
    assert!(of("bcbpt") > 0.0, "bcbpt must pay measurement overhead");
}

#[test]
fn eclipse_exposure_ordering() {
    let table = eclipse_table(
        &base(),
        &[Protocol::Bitcoin, Protocol::bcbpt_paper()],
        0.10,
        8,
    )
    .unwrap();
    let shares: Vec<(String, f64)> = table.rows().map(|(l, v)| (l.to_string(), v[0])).collect();
    let bitcoin = shares
        .iter()
        .find(|(l, _)| l.starts_with("bitcoin"))
        .unwrap()
        .1;
    let bcbpt = shares
        .iter()
        .find(|(l, _)| l.starts_with("bcbpt"))
        .unwrap()
        .1;
    assert!(
        bcbpt > bitcoin * 1.5,
        "proximity clustering should materially raise exposure: {bcbpt} vs {bitcoin}"
    );
}

#[test]
fn partition_attack_only_hurts_clustered_overlays() {
    let table = partition_table(&base(), &[Protocol::Bitcoin, Protocol::bcbpt_paper()]).unwrap();
    let rows: Vec<(String, Vec<f64>)> = table
        .rows()
        .map(|(l, v)| (l.to_string(), v.to_vec()))
        .collect();
    let (bitcoin_cut, bitcoin_reach) = rows
        .iter()
        .find(|(l, _)| l.starts_with("bitcoin"))
        .map(|(_, v)| (v[0], v[2]))
        .unwrap();
    let (bcbpt_cut, bcbpt_reach) = rows
        .iter()
        .find(|(l, _)| l.starts_with("bcbpt"))
        .map(|(_, v)| (v[0], v[2]))
        .unwrap();
    assert_eq!(bitcoin_cut, 0.0);
    assert_eq!(bitcoin_reach, 1.0);
    assert!(bcbpt_cut > 0.0);
    assert!(bcbpt_reach < bitcoin_reach);
}

#[test]
fn ping_spoofing_infiltrates_only_the_ping_time_protocol() {
    // The headline asymmetry of the behavioural adversary subsystem:
    // forged RTT probes infiltrate BCBPT's clusters, while LBC (geographic
    // clusters) and vanilla Bitcoin (no proximity input) are immune to
    // them — the paper's §V.C concern, answered quantitatively.
    let strategy = AdversaryStrategy::PingSpoof { spoof_factor: 0.03 };
    let mut cfg = base();
    cfg.net.num_nodes = 100;
    cfg.runs = 2;
    let report = |protocol: Protocol| {
        adversarial_campaign(&cfg.with_protocol(protocol), &strategy, 10).unwrap()
    };
    let bitcoin = report(Protocol::Bitcoin);
    let lbc = report(Protocol::Lbc);
    let bcbpt = report(Protocol::bcbpt_paper());
    assert_eq!(bitcoin.cluster_infiltration, 0.0, "no clusters to enter");
    assert_eq!(
        bitcoin.infiltration_gain(),
        0.0,
        "random selection never consults RTT"
    );
    assert!(
        lbc.infiltration_gain().abs() < 0.05,
        "geographic clustering ignores forged pings, got gain {}",
        lbc.infiltration_gain()
    );
    assert!(
        bcbpt.infiltration_gain() > lbc.infiltration_gain() + 0.2,
        "the spoof must buy real infiltration against bcbpt ({} over clean {}) \
         but not lbc ({} over clean {})",
        bcbpt.cluster_infiltration,
        bcbpt.clean_cluster_infiltration,
        lbc.cluster_infiltration,
        lbc.clean_cluster_infiltration
    );
    assert!(
        bcbpt.cluster_infiltration > 0.5,
        "most honest bcbpt nodes should share a cluster with an attacker, got {}",
        bcbpt.cluster_infiltration
    );
    // Spoofing only rewires the topology; nothing is dropped.
    for r in [&bitcoin, &lbc, &bcbpt] {
        assert_eq!(r.withheld_messages, 0);
    }
}

#[test]
fn measured_client_config_passes_shape_validation() {
    // The §V.A validation experiment end-to-end: vanilla protocol on the
    // measured-client configuration must produce a Bitcoin-shaped delay
    // distribution.
    let mut cfg = base();
    let n = cfg.net.num_nodes;
    cfg.net = bcbpt::NetConfig::measured_client();
    cfg.net.num_nodes = n;
    cfg.runs = 6;
    cfg.window_ms = 45_000.0;
    cfg.protocol = Protocol::Bitcoin.into();
    let campaign = cfg.run().unwrap();
    let report = validate_delays(&campaign.all_arrivals_ms()).unwrap();
    assert!(
        report.shape_ok,
        "validation failed: ks={} tail={} (ref {})",
        report.ks_distance, report.sim_tail_ratio, report.ref_tail_ratio
    );
}

#[test]
fn pipelined_relay_is_faster_than_measured_client() {
    // Decker & Wattenhofer's pipelining claim, reproduced: the pipelined
    // relay (no trickling, fast verification) propagates much faster than
    // the measured 2013-era client behaviour.
    let mut pipelined = base();
    pipelined.runs = 4;
    let fast = pipelined.run().unwrap();

    let mut measured = base();
    let n = measured.net.num_nodes;
    measured.net = bcbpt::NetConfig::measured_client();
    measured.net.num_nodes = n;
    measured.runs = 4;
    measured.window_ms = 45_000.0;
    let slow = measured.run().unwrap();

    let fast_median = fast.arrival_ecdf().unwrap().median();
    let slow_median = slow.arrival_ecdf().unwrap().median();
    assert!(
        fast_median * 2.0 < slow_median,
        "pipelined median {fast_median} should be far below measured {slow_median}"
    );
}
