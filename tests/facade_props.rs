//! Property-based integration tests through the public facade: invariants
//! that must hold for any seed and any protocol.

use bcbpt::{NetConfig, Network, NodeId, Protocol};
use proptest::prelude::*;

fn any_protocol() -> impl Strategy<Value = Protocol> {
    prop_oneof![
        Just(Protocol::Bitcoin),
        Just(Protocol::Lbc),
        (10.0f64..150.0).prop_map(|t| Protocol::Bcbpt { threshold_ms: t }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the protocol and seed: the built topology respects the
    /// outbound cap, contains no self-loops, and every edge is symmetric.
    #[test]
    fn topology_invariants(protocol in any_protocol(), seed in 0u64..1000) {
        let mut config = NetConfig::test_scale();
        config.num_nodes = 60;
        let mut net = Network::build(config.clone(), protocol.build_policy(), seed).unwrap();
        net.warmup_ms(1_000.0);
        for i in 0..60u32 {
            let node = NodeId::from_index(i);
            prop_assert!(net.links().outbound_count(node) <= config.target_outbound);
            prop_assert!(!net.links().connected(node, node));
            for peer in net.links().peers(node).iter().copied() {
                prop_assert!(net.links().connected(peer, node), "asymmetric edge");
            }
        }
    }

    /// A watched transaction reaches every online node when churn is off,
    /// and every announcement delta is non-negative and finite.
    #[test]
    fn full_flood_and_sane_deltas(protocol in any_protocol(), seed in 0u64..1000) {
        let mut config = NetConfig::test_scale();
        config.num_nodes = 40;
        let mut net = Network::build(config, protocol.build_policy(), seed).unwrap();
        net.warmup_ms(800.0);
        let origin = net.pick_online_node().unwrap();
        net.inject_watched_tx(origin, None).unwrap();
        net.run_for_ms(60_000.0);
        let watch = net.watch().unwrap();
        prop_assert_eq!(watch.reached_count(), 39, "flood incomplete");
        for d in watch.deltas_ms() {
            prop_assert!(d.is_finite() && d >= 0.0);
        }
    }

    /// Cluster membership is internally consistent for clustering
    /// protocols: same cluster id => both online nodes report it.
    #[test]
    fn cluster_ids_consistent(seed in 0u64..1000, threshold in 15.0f64..120.0) {
        let mut config = NetConfig::test_scale();
        config.num_nodes = 50;
        let protocol = Protocol::Bcbpt { threshold_ms: threshold };
        let mut net = Network::build(config, protocol.build_policy(), seed).unwrap();
        net.warmup_ms(1_000.0);
        let mut seen = std::collections::BTreeMap::new();
        for i in 0..50u32 {
            let node = NodeId::from_index(i);
            let c = net.cluster_of(node);
            prop_assert!(c.is_some(), "node {} unclustered after warmup", node);
            *seen.entry(c.unwrap()).or_insert(0usize) += 1;
        }
        prop_assert_eq!(seen.values().sum::<usize>(), 50);
    }

    /// Traffic statistics are conserved: category counters never exceed the
    /// total.
    #[test]
    fn stats_conservation(protocol in any_protocol(), seed in 0u64..1000) {
        let mut config = NetConfig::test_scale();
        config.num_nodes = 40;
        let mut net = Network::build(config, protocol.build_policy(), seed).unwrap();
        net.warmup_ms(500.0);
        let s = net.stats();
        let categorised = s.probe_messages() + s.cluster_control_messages() + s.relay_messages();
        prop_assert!(categorised <= s.total_messages());
        prop_assert!(s.total_bytes() >= s.total_messages() * 24, "every message has a header");
    }
}
