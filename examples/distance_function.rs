//! The paper's distance utility function (Eq. 2–4), explored numerically.
//!
//! Prints `D(i,j)` for representative city pairs under (a) the
//! self-consistent default parameters and (b) the constants as literally
//! printed in the paper, illustrating the faithfulness note in DESIGN.md:
//! with the published `rate ≈ 100 KB/hour`, the transmission term alone
//! exceeds any plausible clustering threshold.
//!
//! Run with: `cargo run --example distance_function`

use bcbpt::geo::{DistanceParams, GeoPoint, TransmissionMedium};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cities = [
        ("London", GeoPoint::new(51.5074, -0.1278)?),
        ("Paris", GeoPoint::new(48.8566, 2.3522)?),
        ("Frankfurt", GeoPoint::new(50.1109, 8.6821)?),
        ("New York", GeoPoint::new(40.7128, -74.0060)?),
        ("Tokyo", GeoPoint::new(35.6762, 139.6503)?),
    ];

    let sane = DistanceParams::sane();
    let paper = DistanceParams::paper();

    println!(
        "{:<22} {:>9} {:>12} {:>14}",
        "pair", "km", "D sane (ms)", "D paper (ms)"
    );
    for (i, (name_a, a)) in cities.iter().enumerate() {
        for (name_b, b) in cities.iter().skip(i + 1) {
            let km = a.distance_km(b);
            println!(
                "{:<22} {:>9.0} {:>12.2} {:>14.1}",
                format!("{name_a}-{name_b}"),
                km,
                sane.distance_ms(km),
                paper.distance_ms(km),
            );
        }
    }

    println!("\nthreshold coverage radii under the sane parameters:");
    for dt in [25.0, 30.0, 50.0, 100.0] {
        println!(
            "  Dth = {:>5.0} ms  ->  radius {:>6.0} km",
            dt,
            sane.coverage_radius_km(dt)
        );
    }
    println!(
        "\nunder the paper's printed constants the transmission term alone is\n\
         {:.0} ms, so the 25 ms threshold admits nobody — see DESIGN.md §1\n\
         for why the defaults use a self-consistent rate instead.",
        paper.transmission_ms()
    );
    println!(
        "\n(signal speeds: wifi {:.0} km/ms, copper/fibre {:.0} km/ms)",
        TransmissionMedium::Wifi.signal_speed_km_per_ms(),
        TransmissionMedium::Copper.signal_speed_km_per_ms()
    );
    Ok(())
}
