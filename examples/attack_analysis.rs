//! Security analysis of proximity clustering: eclipse and partition
//! attacks.
//!
//! The paper flags both risks (§V.C) — an adversary can concentrate bad
//! peers inside one latency neighbourhood, and a clustered overlay exposes
//! a cheap inter-cluster cut set — and defers their evaluation to future
//! work. This example runs that evaluation at a small scale.
//!
//! Run with: `cargo run --release --example attack_analysis`

use bcbpt::{eclipse_table, partition_table, ExperimentConfig, Protocol};

fn main() -> Result<(), String> {
    let mut base = ExperimentConfig::quick(Protocol::Bitcoin);
    base.net.num_nodes = 250;
    base.warmup_ms = 4_000.0;
    base.runs = 0; // attacks need the topology, not relay measurements

    let protocols = [Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()];

    eprintln!("building topologies and measuring eclipse exposure...");
    let eclipse = eclipse_table(&base, &protocols, 0.10, 12)?;
    println!("{}", eclipse.render());
    println!(
        "With 10% adversarial nodes placed latency-close to a victim, the\n\
         random baseline hands the adversary ~10% of the victim's slots —\n\
         proximity clustering hands it several times that. Proximity awareness\n\
         trades propagation speed for eclipse surface.\n"
    );

    eprintln!("measuring partition resilience...");
    let partition = partition_table(&base, &protocols)?;
    println!("{}", partition.render());
    println!(
        "Clustered overlays expose a small inter-cluster cut set; severing it\n\
         fragments the network, while the random topology has no such cheap\n\
         cut. This is the partition risk the paper flags for future work."
    );
    Ok(())
}
