//! Threshold tuning: pick the BCBPT distance threshold `Dth` for a
//! deployment.
//!
//! The paper investigates "the optimal latency distance threshold that can
//! speed up information propagation" (§V.C, Fig. 4) and finds that smaller
//! thresholds reduce delay variance because clusters stay small and tight.
//! This example sweeps `Dth`, printing delay statistics *and* the cluster
//! structure each threshold induces, so an operator can see the trade-off:
//! too tight and nodes fall back to long links; too loose and clusters stop
//! meaning anything.
//!
//! Run with: `cargo run --release --example threshold_tuning`

use bcbpt::{threshold_sweep, ExperimentConfig, Protocol};

fn main() -> Result<(), String> {
    let mut base = ExperimentConfig::quick(Protocol::Bitcoin);
    base.net.num_nodes = 250;
    base.warmup_ms = 4_000.0;
    base.runs = 10;

    let thresholds = [10.0, 25.0, 50.0, 100.0, 200.0];
    eprintln!(
        "sweeping Dth over {thresholds:?} ms on a {}-node network ({} runs each)...",
        base.net.num_nodes, base.runs
    );
    let table = threshold_sweep(&base, &thresholds)?;
    println!("{}", table.render());
    println!(
        "Reading the table: variance falls as Dth tightens (the paper's Fig. 4\n\
         finding) while the cluster count rises; below the network's natural\n\
         latency floor most candidates fail the threshold and nodes lean on\n\
         long links again."
    );
    Ok(())
}
