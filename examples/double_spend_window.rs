//! Double-spend exposure window: the scenario that motivates the paper.
//!
//! A merchant accepting zero-confirmation payments is vulnerable while a
//! payment has not yet reached most of the network (paper §I: accelerating
//! propagation "would result in reducing the probability of performing a
//! successful double spending attack"). This example measures, for each
//! protocol, how long a transaction needs to reach 50% / 90% of nodes —
//! the attacker's window.
//!
//! Run with: `cargo run --release --example double_spend_window`

use bcbpt::{NetConfig, Network, Protocol};

const NODES: usize = 300;
const TRIALS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("double-spend exposure window ({NODES} nodes, {TRIALS} trials per protocol)\n");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "protocol", "t50 (ms)", "t90 (ms)", "coverage"
    );
    for protocol in [Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()] {
        let mut config = NetConfig::test_scale();
        config.num_nodes = NODES;
        let mut net = Network::build(config, protocol.build_policy(), 2024)?;
        net.warmup_ms(4_000.0);

        let mut t50 = Vec::new();
        let mut t90 = Vec::new();
        let mut coverage = Vec::new();
        for _ in 0..TRIALS {
            let origin = net.pick_online_node().expect("online node");
            // Merchants broadcast to all peers (normal client behaviour).
            if net.inject_broadcast_tx(origin).is_err() {
                continue;
            }
            net.run_for_ms(30_000.0);
            let watch = net.take_watch().expect("watch armed");
            let population = net.online_count().saturating_sub(1);
            if let Some(t) = watch.time_to_reach_ms(0.5, population) {
                t50.push(t);
            }
            if let Some(t) = watch.time_to_reach_ms(0.9, population) {
                t90.push(t);
            }
            coverage.push(watch.reached_count() as f64 / population as f64);
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>11.1}%",
            protocol.label(),
            mean(&t50),
            mean(&t90),
            mean(&coverage) * 100.0
        );
    }
    println!(
        "\nReading the numbers: time-to-coverage is a *global* flood metric and\n\
         flooding always takes the fastest of many paths, so the medians sit\n\
         close together across protocols. The clustering win the paper reports\n\
         is in the per-connection announcement deltas (run `scenario run scenarios/fig3.json`) —\n\
         i.e. how quickly and uniformly *your own* peers confirm having seen\n\
         the payment, which is what a watching merchant actually observes."
    );
    Ok(())
}
