//! Quickstart: build a small BCBPT network, watch one transaction flood it,
//! and print the per-connection announcement deltas `Δt(m,n)` — the paper's
//! core measurement (Fig. 2, Eq. 5).
//!
//! Run with: `cargo run --release --example quickstart`

use bcbpt::{NetConfig, Network, Protocol};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure a small network (the paper runs 5000 nodes; 200 keeps
    //    this example instant).
    let mut config = NetConfig::test_scale();
    config.num_nodes = 200;

    // 2. Build it with the paper's protocol: BCBPT, Dth = 25 ms.
    let protocol = Protocol::bcbpt_paper();
    let mut net = Network::build(config, protocol.build_policy(), 42)?;
    println!("built {} ({} nodes)", protocol, net.num_nodes());

    // 3. Let the clusters form (discovery ticks fire every 100 ms).
    net.warmup_ms(3_000.0);
    let sizes = bcbpt::experiments::cluster_sizes(&net);
    println!(
        "clusters after warmup: {} (largest {})",
        sizes.len(),
        sizes.first().copied().unwrap_or(0)
    );

    // 4. The measuring-node methodology: inject a transaction at one node,
    //    relay it to a single peer, and record when every other connection
    //    of the measuring node announces it back.
    let origin = net.pick_online_node().expect("network is online");
    let txid = net.inject_watched_tx(origin, None)?;
    net.run_for_ms(30_000.0);

    let watch = net.watch().expect("watch armed");
    println!(
        "\ntransaction {txid} from {origin}: reached {}/{} nodes",
        watch.reached_count(),
        net.num_nodes() - 1
    );
    let mut deltas = watch.deltas_ms();
    deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!("per-connection announcement deltas Δt(m,n), ms:");
    for (i, d) in deltas.iter().enumerate() {
        println!("  peer {:>2}: {:>8.1}", i + 1, d);
    }

    // 5. Traffic cost of this whole session, including BCBPT's probing.
    println!("\ntraffic: {}", net.stats());
    Ok(())
}
