//! Fork (stale-block) rate under each relay protocol.
//!
//! The paper's motivation (§I): slow transaction/block propagation lets two
//! blocks be mined "simultaneously, each one as a possible addition to the
//! same sub-chain", enabling double spends. This example runs proof-of-work
//! on top of each protocol's topology and compares how many mined blocks go
//! stale, using compact (20 KB) blocks so relay latency is the bottleneck.
//!
//! Run with: `cargo run --release --example fork_rate`

use bcbpt::{fork_table, ExperimentConfig, Protocol};

fn main() -> Result<(), String> {
    let mut base = ExperimentConfig::quick(Protocol::Bitcoin);
    base.net.num_nodes = 250;
    base.net.block_size_bytes = 20_000;
    base.warmup_ms = 4_000.0;
    base.runs = 0;

    // Aggressively fast blocks (1 s) relative to propagation, so the fork
    // signal is visible in a short run.
    let interval_ms = 1_000.0;
    let duration_ms = 240_000.0;
    eprintln!(
        "mining every {interval_ms} ms for {duration_ms} ms over {} nodes...",
        base.net.num_nodes
    );
    let table = fork_table(
        &base,
        &[Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()],
        interval_ms,
        duration_ms,
    )?;
    println!("{}", table.render());
    println!(
        "Lower stale rates mean fewer competing branches and a smaller\n\
         double-spend surface. Note the flip side visible in tip_agreement:\n\
         clustered overlays spread blocks quickly *within* a cluster but\n\
         cross clusters over only a few long links, so global convergence\n\
         can lag the random topology — a trade-off the paper does not\n\
         discuss but this reproduction surfaces."
    );
    Ok(())
}
