//! # bcbpt — reproduction of the BCBPT proximity-aware Bitcoin relay
//!
//! A from-scratch Rust reproduction of **“Proximity Awareness Approach to
//! Enhance Propagation Delay on the Bitcoin Peer-to-Peer Network”**
//! (Fadhil/Sallal, Owen, Adda — ICDCS 2017): the BCBPT ping-time clustering
//! protocol, its LBC and vanilla-Bitcoin baselines, the event-driven
//! Bitcoin network simulator they are evaluated on, and the full experiment
//! harness that regenerates the paper's figures.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `bcbpt-sim` | deterministic discrete-event engine |
//! | [`geo`] | `bcbpt-geo` | world model, Eq. 2–4 distance utility, latency & churn |
//! | [`stats`] | `bcbpt-stats` | summaries, ECDFs, KS distance, figures |
//! | [`net`] | `bcbpt-net` | Bitcoin P2P substrate and network fabric |
//! | [`adversary`] | `bcbpt-adversary` | in-loop attacker strategies: ping spoofing, relay delaying, withholding |
//! | [`cluster`] | `bcbpt-cluster` | BCBPT, LBC, protocol selection and the protocol registry |
//! | [`experiments`] | `bcbpt-core` | declarative scenarios, campaigns, Fig. 3/Fig. 4, validation, overhead, attacks |
//!
//! The most common types are at the top level.
//!
//! # Examples
//!
//! Measure one transaction's propagation under BCBPT:
//!
//! ```
//! use bcbpt::{NetConfig, Network, Protocol};
//!
//! let mut config = NetConfig::test_scale();
//! config.num_nodes = 40;
//! let mut net = Network::build(config, Protocol::bcbpt_paper().build_policy(), 7)?;
//! net.warmup_ms(1_000.0); // clusters form
//! let origin = net.pick_online_node().expect("nodes online");
//! net.inject_watched_tx(origin, None)?;
//! net.run_for_ms(30_000.0);
//! let watch = net.watch().expect("watch armed");
//! assert!(watch.reached_count() > 30);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Regenerate a CI-scale Fig. 3:
//!
//! ```no_run
//! use bcbpt::{fig3, ExperimentConfig, Protocol};
//!
//! let bundle = fig3(&ExperimentConfig::quick(Protocol::Bitcoin))?;
//! println!("{}", bundle.render());
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The discrete-event simulation engine (`bcbpt-sim`).
pub mod sim {
    pub use bcbpt_sim::*;
}

/// Geography, latency and churn models (`bcbpt-geo`).
pub mod geo {
    pub use bcbpt_geo::*;
}

/// Statistics toolkit (`bcbpt-stats`).
pub mod stats {
    pub use bcbpt_stats::*;
}

/// The Bitcoin P2P substrate (`bcbpt-net`).
pub mod net {
    pub use bcbpt_net::*;
}

/// Behavioural adversary strategies (`bcbpt-adversary`).
pub mod adversary {
    pub use bcbpt_adversary::*;
}

/// Clustering protocols (`bcbpt-cluster`).
pub mod cluster {
    pub use bcbpt_cluster::*;
}

/// Block-relay strategies: full, compact, RLNC (`bcbpt-relay`).
pub mod relay {
    pub use bcbpt_relay::*;
}

/// Experiment harness (`bcbpt-core`).
pub mod experiments {
    pub use bcbpt_core::*;
}

pub use bcbpt_adversary::{AdversaryForce, AdversaryStrategy};
pub use bcbpt_cluster::{
    BcbptConfig, BcbptPolicy, LbcConfig, LbcPolicy, Protocol, ProtocolRegistry, ProtocolSpec,
};
pub use bcbpt_core::{
    adversarial_campaign, degree_variance_table, eclipse_table, fig3, fig4, fork_table,
    merge_shards, overhead_table, partition_table, run_shard, run_shard_in, threshold_sweep,
    validate_delays, AdversaryReport, CampaignResult, ExperimentConfig, FigureBundle, Observer,
    PartialOutcome, RunEvent, RunStats, Scenario, ScenarioOutcome, ScenarioSession, ShardPlan,
    ShardSpec, StopRule, Sweep, WarmSnapshot, Workload,
};
pub use bcbpt_geo::{ChurnModel, DistanceParams, GeoPoint, LatencyConfig};
pub use bcbpt_net::{NetConfig, Network, NodeId, RelaySpec, Transaction, TxId, TxWatch};
pub use bcbpt_sim::{SimDuration, SimTime};
pub use bcbpt_stats::{Ecdf, EcdfBuilder, StreamingSummary, Summary};
