//! Offline stand-in for `rand_chacha`: the ChaCha12 generator.
//!
//! Implements the original (djb) ChaCha variant used by `rand_chacha`: a
//! 256-bit key from the seed, 64-bit block counter in state words 12–13 and
//! a 64-bit stream id (zero by default) in words 14–15. Keystream words are
//! emitted in block order, low word first, which together with the
//! `rand`-compatible [`rand::SeedableRng::seed_from_u64`] seed expansion
//! keeps deterministic simulations aligned with the real crates.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha generator with 12 rounds — `rand_chacha`'s recommended balance
/// of speed and security margin, and the workspace-wide deterministic RNG.
#[derive(Clone)]
pub struct ChaCha12Rng {
    /// Key + constants + stream id (counter excluded; tracked separately).
    key: [u32; 8],
    stream: [u32; 2],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread index into `buf`; `BLOCK_WORDS` means "refill".
    index: usize,
}

impl core::fmt::Debug for ChaCha12Rng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChaCha12Rng")
            .field("counter", &self.counter)
            .field("index", &self.index)
            .finish()
    }
}

impl PartialEq for ChaCha12Rng {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
            && self.stream == other.stream
            && self.counter == other.counter
            && self.index == other.index
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    /// 64-bit block counter position (diagnostics).
    pub fn get_word_pos(&self) -> u128 {
        u128::from(self.counter) * BLOCK_WORDS as u128 + self.index as u128
    }

    fn refill(&mut self) {
        const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream[0];
        state[15] = self.stream[1];
        let mut working = state;
        for _ in 0..6 {
            // One double round (column + diagonal) per iteration; 6 of
            // them give ChaCha12.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha12Rng {
            key,
            stream: [0, 0],
            counter: 0,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        rand::next_u64_via_u32(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = ChaCha12Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn chacha_ietf_test_vector_structure() {
        // With an all-zero seed the first block must differ from the second
        // and the stream must be stable across clones.
        let mut rng = ChaCha12Rng::from_seed([0u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
        let mut replay = ChaCha12Rng::from_seed([0u8; 32]);
        assert_eq!(replay.next_u32(), first[0]);
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let _ = rng.next_u32();
        let mut snap = rng.clone();
        assert_eq!(rng.next_u64(), snap.next_u64());
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            lo = lo.min(x);
            hi = hi.max(x);
            assert!((0.0..1.0).contains(&x));
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn fill_bytes_handles_remainders() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut buf = [0u8; 7];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
