//! Derive macros for the in-tree `serde` stand-in.
//!
//! Parses the derive input token stream by hand (no `syn`/`quote` in the
//! offline build) and generates `to_value`/`from_value` implementations:
//!
//! * named structs — object with one entry per field;
//! * single-field tuple structs — transparent (delegate to the inner value),
//!   which matches the `#[serde(transparent)]` annotation the workspace's
//!   newtype ids carry;
//! * enums — externally tagged: unit variants as strings, struct variants
//!   as one-entry objects, serde's default representation.
//!
//! Generics, tuple enum variants and multi-field tuple structs are not used
//! by this workspace and are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    NewtypeStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<(String, Vec<String>)>,
    },
}

fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 1; // the attribute group
                if i < tokens.len() {
                    if let TokenTree::Punct(p2) = &tokens[i] {
                        // #![...] inner attribute
                        if p2.as_char() == '!' {
                            i += 1;
                        }
                    }
                }
                i += 1;
            }
            _ => break,
        }
    }
    i
}

fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses `name: Type,` fields out of a brace group, returning field names.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected ':' after field {name}, found {other}"),
        }
        // Skip the type: commas inside groups are invisible (one token
        // tree), but generic angle brackets are punctuation we must track.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<(String, Vec<String>)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let mut fields = Vec::new();
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = parse_named_fields(g);
                    i += 1;
                }
                Delimiter::Parenthesis => {
                    panic!("serde stand-in derive does not support tuple enum variants ({name})")
                }
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stand-in derive does not support generic type {name}");
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let commas = inner
                    .iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count();
                if commas > 1 {
                    panic!(
                        "serde stand-in derive supports only single-field tuple structs ({name})"
                    );
                }
                Shape::NewtypeStruct { name }
            }
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g),
            },
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for {other} items"),
    }
}

/// Derives the stand-in `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!(
                            "{name}::{v} => \
                             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                        )
                    } else {
                        let binds = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Value::Map(::std::vec![{entries}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(__m, \"{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __m = v.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::NewtypeStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let struct_arms: String = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::map_get(__inner, \"{f}\"))?,"
                            )
                        })
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                             let __inner = __entry.1.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected map for {name}::{v}\"))?;\n\
                             ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                         }},"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let __entry = &__entries[0];\n\
                                 match __entry.0.as_str() {{\n\
                                     {struct_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                                         ::std::format!(\"unknown {name} variant {{__other}}\"))),\n\
                                 }}\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"cannot read {name} from {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
