//! Offline stand-in for `serde`.
//!
//! Serialization here targets a small JSON-like [`Value`] tree instead of
//! serde's visitor machinery; `serde_json` renders/parses that tree. The
//! derive macros (re-exported from the in-tree `serde_derive`) generate
//! `to_value`/`from_value` implementations with serde's externally-tagged
//! enum representation, so round trips through `serde_json` behave like the
//! real crates for the data shapes this workspace uses.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (negative values).
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object (insertion-ordered key/value pairs).
    Map(Vec<(String, Value)>),
}

/// Static `null` for missing-key lookups.
pub static NULL: Value = Value::Null;

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in map entries, yielding `null` when absent (how the
/// derive handles `Option` fields).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses a value tree into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! unsigned_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$ty>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$ty>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as $ty),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$ty>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$ty>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    Value::F64(x) if x.fract() == 0.0 => Ok(*x as $ty),
                    other => Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            // serde_json renders non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected 2-tuple"))?;
        if seq.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2 elements, got {}",
                seq.len()
            )));
        }
        Ok((A::from_value(&seq[0])?, B::from_value(&seq[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v
            .as_seq()
            .ok_or_else(|| Error::custom("expected 3-tuple"))?;
        if seq.len() != 3 {
            return Err(Error::custom(format!(
                "expected 3 elements, got {}",
                seq.len()
            )));
        }
        Ok((
            A::from_value(&seq[0])?,
            B::from_value(&seq[1])?,
            C::from_value(&seq[2])?,
        ))
    }
}

/// Maps serialize with stringified keys, like `serde_json` objects.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.as_map().ok_or_else(|| Error::custom("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, val) in entries {
            let key = key_from_string::<K>(k)?;
            out.insert(key, V::from_value(val)?);
        }
        Ok(out)
    }
}

fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::F64(x) => x.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key must be a primitive, got {other:?}"),
    }
}

fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(n)) {
            return Ok(k);
        }
    }
    if let Ok(x) = key.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::F64(x)) {
            return Ok(k);
        }
    }
    Err(Error::custom(format!("cannot parse map key {key:?}")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        let back: BTreeMap<String, u64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_are_descriptive() {
        let err = bool::from_value(&Value::U64(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
    }
}
