//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/`proptest!` surface this workspace's property
//! tests use: range and tuple strategies, `any`, `Just`, `prop_map`,
//! `prop_oneof!`, `proptest::collection::vec`, and deterministic case
//! generation. Failing inputs are reported through the panic message;
//! shrinking is not implemented (cases are deterministic per test, so a
//! failure reproduces exactly).

#![forbid(unsafe_code)]

use rand::Rng;
pub use rand_chacha::ChaCha12Rng as TestRng;

/// Test-runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; the stand-in trades coverage for suite
        // runtime since there is no fork/persistence machinery.
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy for heterogeneous collections.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty => $method:ident),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::$method(rng) as $ty
            }
        }
    )*};
}

arbitrary_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
               u64 => next_u64, usize => next_u64,
               i8 => next_u32, i16 => next_u32, i32 => next_u32,
               i64 => next_u64, isize => next_u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u32(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>() * 2.0e6 - 1.0e6
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Creates the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A length range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi_exclusive, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::SeedableRng;
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` runs
/// `cases` times with deterministically sampled arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Distinct deterministic stream per property name.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in stringify!($name).bytes() {
                __seed ^= __b as u64;
                __seed = __seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut __rng =
                <$crate::TestRng as $crate::__rt::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __run = || $body;
                __run();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -1.0f64..=1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u32), (5u32..8).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || (50..80).contains(&x));
        }

        #[test]
        fn tuples_sample_elementwise(pair in (0u8..4, 10u32..20)) {
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(pair.1 / 10, 1);
        }
    }

    #[test]
    fn runs_the_declared_tests() {
        ranges_stay_in_bounds();
        vec_lengths_respect_size();
        oneof_and_map_compose();
        tuples_sample_elementwise();
    }
}
