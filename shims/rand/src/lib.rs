//! Offline stand-in for the `rand` crate (0.8-series API subset).
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal reimplementation of the parts of `rand` it uses. The algorithms
//! mirror `rand` 0.8 / `rand_core` 0.6 bit-for-bit where determinism leaks
//! into simulation results:
//!
//! * [`SeedableRng::seed_from_u64`] — the PCG32-based seed expansion.
//! * `gen::<f64>()` — 53 random bits scaled into `[0, 1)`.
//! * `gen_range` over integers — Lemire widening-multiply rejection.
//! * `gen_range` over floats — the `[1, 2)` mantissa-fill transform.
//! * [`seq::SliceRandom::shuffle`] — reverse Fisher–Yates with inclusive
//!   bounds.

#![forbid(unsafe_code)]

/// Core RNG abstraction (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Builds `next_u64` from two `next_u32` calls, low word first — the
/// `rand_core` convention for 32-bit generators.
pub fn next_u64_via_u32<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
    let x = u64::from(rng.next_u32());
    let y = u64::from(rng.next_u32());
    (y << 32) | x
}

/// Seedable RNG abstraction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type, e.g. `[u8; 32]`.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64`, expanding it with the same PCG32-based
    /// procedure as `rand_core` 0.6 so streams match the real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let bytes = x.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that [`Rng::gen`] can produce (stands in for
/// `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl StandardSample for u16 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl StandardSample for i32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}
impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}
impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 significant bits into [0, 1): matches rand 0.8's Standard.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// rand 0.8 samples u8/u16/u32 ranges through a 32-bit generator word and
// u64/usize ranges through a 64-bit word; the split is reproduced here so
// generator streams stay aligned with the real crate.
macro_rules! uniform_int_range_32 {
    ($($ty:ty => $small_zone:expr),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end.wrapping_sub(self.start)) as u32;
                self.start.wrapping_add(sample_u32_below(rng, range, $small_zone) as $ty)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let range = (hi.wrapping_sub(lo) as u32).wrapping_add(1);
                if range == 0 {
                    return lo.wrapping_add(rng.next_u32() as $ty);
                }
                lo.wrapping_add(sample_u32_below(rng, range, $small_zone) as $ty)
            }
        }
    )*};
}

// u8/u16 compute the rejection zone by modulo; u32 by shift (rand 0.8).
uniform_int_range_32!(u8 => true, u16 => true, u32 => false, i8 => true, i16 => true, i32 => false);

macro_rules! uniform_int_range_64 {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let range = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_u64_below(rng, range) as $ty)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let range = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if range == 0 {
                    // Full u64 span: every draw is in range.
                    return lo.wrapping_add(rng.next_u64() as $ty);
                }
                lo.wrapping_add(sample_u64_below(rng, range) as $ty)
            }
        }
    )*};
}

uniform_int_range_64!(u64, usize, i64, isize);

/// Lemire widening-multiply rejection in the 32-bit domain (rand 0.8's
/// `sample_single` for `u8`/`u16`/`u32`).
fn sample_u32_below<R: RngCore + ?Sized>(rng: &mut R, range: u32, small_zone: bool) -> u32 {
    debug_assert!(range > 0);
    let zone = if small_zone {
        // Types no wider than u16: exact zone by modulo.
        let ints_to_reject = (u32::MAX - range + 1) % range;
        u32::MAX - ints_to_reject
    } else {
        (range << range.leading_zeros()).wrapping_sub(1)
    };
    loop {
        let v = rng.next_u32();
        let m = u64::from(v) * u64::from(range);
        let lo = m as u32;
        if lo <= zone {
            return (m >> 32) as u32;
        }
    }
}

/// Lemire's widening-multiply rejection sampling of a uniform value in
/// `[0, range)` — the `rand` 0.8 `sample_single` algorithm for 64-bit
/// unsigned ranges, so draws match the real crate for a given stream.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(range);
        let lo = m as u64;
        if lo <= zone {
            return (m >> 64) as u64;
        }
    }
}

/// `rand` 0.8's `gen_index`: bounds that fit in `u32` sample through the
/// 32-bit path so slice helpers consume the stream identically.
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        (0..ubound as u32).sample_from(rng) as usize
    } else {
        (0..ubound).sample_from(rng)
    }
}

/// `[1, 2)` mantissa fill used by rand 0.8's float uniform sampling.
fn value1_2<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let bits = rng.next_u64() >> 12; // keep 52 mantissa bits
    f64::from_bits((1023u64 << 52) | bits)
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        let offset = self.start - scale;
        value1_2(rng) * scale + offset
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // rand 0.8's new_inclusive: stretch the scale so the maximum
        // mantissa fill lands exactly on `hi`.
        let max_rand = 1.0 - f64::EPSILON / 2.0;
        let scale = (hi - lo) / max_rand;
        let offset = lo - scale;
        let value = value1_2(rng) * scale + offset;
        value.clamp(lo, hi)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let bits = rng.next_u32() >> 9;
        let v = f32::from_bits((127u32 << 23) | bits);
        let scale = self.end - self.start;
        v * scale + (self.start - scale)
    }
}

/// Convenience methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{gen_index, RngCore};

    /// Slice extension trait (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (reverse Fisher–Yates, matching
        /// rand 0.8's draw order).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(gen_index(rng, self.len()))
            }
        }
    }
}

/// `rand::rngs` stand-in (unused streams kept for API familiarity).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&b));
            let c = rng.gen_range(0u64..1);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
