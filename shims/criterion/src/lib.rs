//! Offline stand-in for `criterion`.
//!
//! Provides the macro/harness surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with inputs, `Bencher::iter`/`iter_batched` — measuring
//! wall-clock time with `std::time::Instant` and reporting min/mean/max per
//! benchmark. `cargo bench -- --test` runs each benchmark exactly once
//! (smoke mode), like the real crate.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are grouped (accepted for API compatibility; the
/// stand-in always sets up one input per timed iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures for one benchmark target.
pub struct Bencher<'a> {
    samples: usize,
    results: &'a mut Vec<Duration>,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // The real default (100) makes simulation benches take minutes;
            // the stand-in favours quick signal.
            sample_size: 10,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("bench {name:<40} (no samples)");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().expect("non-empty");
    let max = results.iter().max().expect("non-empty");
    println!(
        "bench {name:<40} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({} samples)",
        results.len()
    );
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    /// Runs one benchmark target.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut results = Vec::new();
        let mut bencher = Bencher {
            samples: self.effective_samples(),
            results: &mut results,
        };
        f(&mut bencher);
        report(name, &results);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.effective_samples(),
            test_mode: self.test_mode,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        if !self.test_mode {
            self.sample_size = n;
        }
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut results = Vec::new();
        let mut bencher = Bencher {
            samples: self.sample_size,
            results: &mut results,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), &results);
        self
    }

    /// Finishes the group (reporting happens per-benchmark).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
