//! Offline stand-in for `serde_json`: renders and parses the in-tree
//! `serde` [`Value`] tree as JSON text.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::Error;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the value shapes the workspace produces; the `Result`
/// mirrors the real crate's signature.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Infallible for the value shapes the workspace produces.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a deserializable value.
///
/// # Errors
///
/// Returns a description of the first syntax or shape error.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest round-trip float formatting; force a
                // decimal point so the token re-parses as a float.
                let s = format!("{x}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            write_compound(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                write_value(out, &items[i], indent, d);
            })
        }
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, d);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        item(out, i, depth + 1);
    }
    if len > 0 {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(pad);
            }
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::custom(e.to_string()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|e| Error::custom(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error::custom(e.to_string()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::custom(e.to_string()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!("expected ',' or ']', got {other:?}")));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}', got {other:?}"
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_strings() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&(-3i64)).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), "\"a\\\"b\\n\"");
        let back: String = from_str("\"a\\\"b\\n\"").unwrap();
        assert_eq!(back, "a\"b\n");
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![(1.25f64, 2.0f64), (3.0, 4.5)];
        let json = to_string(&v).unwrap();
        let back: Vec<(f64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested_objects() {
        let v: Value = from_str(r#"{"a": [1, 2.5, null], "b": {"c": true}}"#).unwrap();
        let map = v.as_map().unwrap();
        assert_eq!(map[0].0, "a");
        assert_eq!(map[0].1.as_seq().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nulL").is_err());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u64, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<u64> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
