//! Property-based tests for the network fabric.

use bcbpt_net::{Message, NetConfig, Network, NodeId, RandomPolicy, TxId};
use proptest::prelude::*;

fn build(n: usize, seed: u64) -> Network {
    let mut config = NetConfig::test_scale();
    config.num_nodes = n;
    Network::build(config, Box::new(RandomPolicy::new()), seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Outbound caps hold for any seed; edges are symmetric; no self loops.
    #[test]
    fn topology_caps_hold(seed in any::<u64>()) {
        let net = build(40, seed);
        for i in 0..40u32 {
            let node = NodeId::from_index(i);
            prop_assert!(net.links().outbound_count(node) <= 8);
            prop_assert!(!net.links().connected(node, node));
            prop_assert_eq!(
                net.links().inbound_count(node) + net.links().outbound_count(node),
                net.links().degree(node)
            );
        }
        // Edge count equals half the degree sum.
        let degree_sum: usize = (0..40u32)
            .map(|i| net.links().degree(NodeId::from_index(i)))
            .sum();
        prop_assert_eq!(net.links().edge_count() * 2, degree_sum);
    }

    /// Base RTT is symmetric, positive and respects the triangle-free floor.
    #[test]
    fn rtt_symmetric_positive(seed in any::<u64>()) {
        let net = build(20, seed);
        for i in 0..20u32 {
            for j in 0..20u32 {
                let a = NodeId::from_index(i);
                let b = NodeId::from_index(j);
                let rtt = net.base_rtt_ms(a, b);
                prop_assert!(rtt >= 0.0 && rtt.is_finite());
                prop_assert!((rtt - net.base_rtt_ms(b, a)).abs() < 1e-9);
            }
        }
    }

    /// Watched floods: arrival times are at least the injection time, and
    /// announcement deltas never decrease when we give the network longer.
    #[test]
    fn watch_monotone_in_time(seed in any::<u64>()) {
        let mut net = build(30, seed);
        let origin = net.pick_online_node().unwrap();
        net.inject_watched_tx(origin, None).unwrap();
        net.run_for_ms(1_000.0);
        let early = net.watch().unwrap().reached_count();
        net.run_for_ms(59_000.0);
        let late = net.watch().unwrap().reached_count();
        prop_assert!(late >= early, "coverage cannot shrink");
        prop_assert_eq!(late, 29, "eventually everyone");
    }

    /// Traffic accounting: total bytes grow monotonically with messages and
    /// every message carries at least the 24-byte header.
    #[test]
    fn byte_accounting(seed in any::<u64>(), k in 1usize..10) {
        let mut net = build(20, seed);
        for _ in 0..k {
            let origin = net.pick_online_node().unwrap();
            let _ = net.inject_broadcast_tx(origin);
            net.run_for_ms(5_000.0);
        }
        let s = net.stats();
        prop_assert!(s.total_bytes() >= s.total_messages() * 24);
    }

    /// Deterministic replay: identical seeds yield identical traffic and
    /// identical watch results.
    #[test]
    fn replay_identical(seed in any::<u64>()) {
        let run = |seed: u64| {
            let mut net = build(25, seed);
            let origin = net.pick_online_node().unwrap();
            net.inject_watched_tx(origin, None).unwrap();
            net.run_for_ms(20_000.0);
            (
                net.stats().total_messages(),
                net.stats().total_bytes(),
                net.take_watch().unwrap().deltas_ms(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Mining at any interval yields a consistent ledger: main chain never
    /// exceeds mined count, heights strictly increase along the chain.
    #[test]
    fn ledger_consistency(seed in any::<u64>(), interval in 200.0f64..5_000.0) {
        let mut net = build(25, seed);
        net.enable_mining(interval);
        net.run_for_ms(30_000.0);
        let ledger = net.ledger();
        let chain = ledger.main_chain();
        prop_assert!(chain.len() <= ledger.mined_count());
        for w in chain.windows(2) {
            let a = ledger.get(w[0]).unwrap();
            let b = ledger.get(w[1]).unwrap();
            prop_assert_eq!(b.parent, Some(a.id));
            prop_assert_eq!(b.height, a.height + 1);
        }
        prop_assert!((0.0..=1.0).contains(&ledger.stale_rate()));
    }

    /// Wire sizes are stable: re-encoding the same message reports the same
    /// size, and content growth strictly grows the size.
    #[test]
    fn wire_size_monotone(n in 0usize..50) {
        let ids: Vec<TxId> = (0..n as u64).map(TxId::from_raw).collect();
        let small = Message::Inv { txids: ids.clone() };
        let mut bigger_ids = ids;
        bigger_ids.push(TxId::from_raw(u64::MAX));
        let big = Message::Inv { txids: bigger_ids };
        prop_assert!(big.wire_size_bytes() > small.wire_size_bytes());
        prop_assert_eq!(small.wire_size_bytes(), small.wire_size_bytes());
    }
}
