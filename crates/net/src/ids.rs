//! Identifier newtypes for the network substrate.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Identifies a node in the simulated network.
///
/// Node ids are dense indices assigned at network construction, which lets
/// the fabric store per-node state in flat vectors. The newtype keeps them
/// from being confused with transaction ids or plain counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    #[inline]
    pub const fn from_index(index: u32) -> Self {
        NodeId(index)
    }

    /// The dense index backing this id.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32`.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a transaction.
///
/// In the real protocol this is a 32-byte hash; the simulation only needs
/// uniqueness, so a `u64` drawn from a deterministic counter suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TxId(u64);

impl TxId {
    /// Creates a transaction id from a raw value.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        TxId(raw)
    }

    /// The raw value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_u32(), 42);
        assert_eq!(id.to_string(), "n42");
    }

    #[test]
    fn node_ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert_eq!(NodeId::from_index(7), NodeId::from_index(7));
    }

    #[test]
    fn tx_id_round_trips() {
        let id = TxId::from_raw(0xdead);
        assert_eq!(id.as_u64(), 0xdead);
        assert_eq!(id.to_string(), "txdead");
    }

    #[test]
    fn ids_usable_in_collections() {
        use std::collections::{BTreeSet, HashSet};
        let mut hs = HashSet::new();
        hs.insert(NodeId::from_index(1));
        assert!(hs.contains(&NodeId::from_index(1)));
        let mut bs = BTreeSet::new();
        bs.insert(TxId::from_raw(2));
        bs.insert(TxId::from_raw(1));
        let v: Vec<_> = bs.into_iter().collect();
        assert_eq!(v, vec![TxId::from_raw(1), TxId::from_raw(2)]);
    }
}
