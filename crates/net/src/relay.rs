//! Pluggable block-relay strategies: how a block body travels once mined.
//!
//! Neighbour selection ([`crate::NeighborPolicy`]) decides *who* a node
//! talks to; a [`RelayStrategy`] decides *how a block body crosses those
//! links*. The legacy inv/getdata/full-body exchange is extracted here as
//! [`FullRelay`] — byte-identical to the previously hard-wired path — and
//! the open [`RelayRegistry`] lets downstream crates (`bcbpt-relay`) plug
//! in compact-block and network-coded strategies without this crate
//! knowing about them.
//!
//! Strategies act through a [`RelayNet`] — a deliberately narrow window
//! over the [`Network`] exposing sends, chain state, verification
//! scheduling, the dedicated `"relay"` RNG stream and redundancy
//! accounting. Every byte a strategy puts on the wire is sized by
//! [`Message::wire_size_bytes`], and every delivery whose payload the
//! receiver already had is recorded via [`RelayNet::record_redundant`], so
//! `waste_ratio` comparisons across strategies are honest.

use crate::block::{Block, BlockId, ChainState};
use crate::config::NetConfig;
use crate::ids::NodeId;
use crate::msg::{Message, MessageKind, INV_ENTRY_BYTES};
use crate::network::Network;
use core::fmt;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A relay strategy named as data: the string form scenario files and
/// campaign reports share, mirroring `ProtocolSpec` in `bcbpt-cluster`.
///
/// The grammar is `family` or `family(k=v, ...)` — e.g. `"full"`,
/// `"compact(known=0.95)"`, `"rlnc(chunks=16, overhead=1.05)"`. The spec
/// carries no behaviour; a [`RelayRegistry`] resolves it into a
/// [`RelayStrategy`].
///
/// # Examples
///
/// ```
/// use bcbpt_net::{RelayRegistry, RelaySpec};
///
/// let spec = RelaySpec::new("full(known=0.9)");
/// assert_eq!(spec.family(), "full");
/// let relay = RelayRegistry::builtins().build(&spec)?;
/// assert_eq!(relay.name(), "full");
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RelaySpec(String);

impl RelaySpec {
    /// Creates a spec from any label.
    pub fn new(label: impl Into<String>) -> Self {
        RelaySpec(label.into())
    }

    /// The full label, e.g. `"rlnc(chunks=16)"`.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The family the registry dispatches on: everything before the first
    /// `(`, trimmed.
    pub fn family(&self) -> &str {
        self.0.split('(').next().unwrap_or("").trim()
    }

    /// The `k=v` argument pairs between the parentheses, trimmed; empty
    /// when the spec is a bare family name.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed argument.
    pub fn args(&self) -> Result<Vec<(String, String)>, String> {
        let s = self.0.trim();
        let Some(open) = s.find('(') else {
            return Ok(Vec::new());
        };
        let inner = s[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| format!("unclosed '(' in relay spec {s:?}"))?;
        let mut pairs = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("expected k=v in relay spec {s:?}, got {part:?}"))?;
            pairs.push((k.trim().to_string(), v.trim().to_string()));
        }
        Ok(pairs)
    }
}

impl fmt::Display for RelaySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for RelaySpec {
    fn from(label: &str) -> Self {
        RelaySpec(label.to_string())
    }
}

impl From<String> for RelaySpec {
    fn from(label: String) -> Self {
        RelaySpec(label)
    }
}

/// The window a [`RelayStrategy`] acts through: sends, per-node chain
/// state, verification scheduling, the `"relay"` RNG stream and redundancy
/// accounting — nothing else, so strategies cannot perturb topology or the
/// transaction plane.
pub struct RelayNet<'a> {
    net: &'a mut Network,
}

impl<'a> RelayNet<'a> {
    pub(crate) fn new(net: &'a mut Network) -> Self {
        RelayNet { net }
    }

    /// Sends `msg` from `from` to `to` with sampled link latency plus
    /// serialization delay (and the adversary tap, like every send).
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        self.net.send(from, to, msg);
    }

    /// Takes the reusable fan-out buffer filled with `node`'s peers minus
    /// `exclude`. Hand it back with [`RelayNet::restore_peers`] after
    /// iterating (forgetting only costs the buffer reuse, never
    /// correctness).
    pub fn take_peers(&mut self, node: NodeId, exclude: Option<NodeId>) -> Vec<NodeId> {
        self.net.take_peer_scratch(node, exclude)
    }

    /// Returns the fan-out buffer taken by [`RelayNet::take_peers`].
    pub fn restore_peers(&mut self, peers: Vec<NodeId>) {
        self.net.restore_peer_scratch(peers);
    }

    /// `node`'s chain view.
    pub fn chain(&self, node: NodeId) -> &ChainState {
        self.net.chain(node)
    }

    /// Mutable access to `node`'s chain view.
    pub fn chain_mut(&mut self, node: NodeId) -> &mut ChainState {
        self.net.chain_state_mut(node)
    }

    /// Looks up a block body in the global ledger.
    pub fn block(&self, id: BlockId) -> Option<Block> {
        self.net.ledger().get(id).copied()
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        self.net.config()
    }

    /// Schedules the give-up timer for an outstanding block pull, after
    /// which the id is forgotten so a later announcement can retry.
    pub fn schedule_block_timeout(&mut self, node: NodeId, block: BlockId) {
        self.net.schedule_block_timeout(node, block);
    }

    /// Schedules block verification at `to` (size-proportional cost scaled
    /// by the node's verify factor); on completion the network adopts the
    /// block and re-announces through the installed strategy, excluding
    /// `relayer`.
    pub fn schedule_block_verify(&mut self, to: NodeId, block: &Block, relayer: NodeId) {
        self.net.schedule_block_verify(to, block, relayer);
    }

    /// The dedicated `"relay"` RNG stream — coding coefficients and any
    /// other strategy randomness draw from here, never from the streams
    /// the rest of the fabric consumes, so installing a strategy that
    /// ignores this stream leaves every other draw sequence untouched.
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        self.net.relay_rng_mut()
    }

    /// Records a redundant delivery of `kind` wasting `bytes` — a no-op
    /// unless waste accounting was enabled by installing a relay strategy
    /// explicitly, so legacy runs stay byte-identical.
    pub fn record_redundant(&mut self, kind: MessageKind, bytes: u64) {
        self.net.record_redundant_gated(kind, bytes);
    }
}

impl fmt::Debug for RelayNet<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RelayNet").finish_non_exhaustive()
    }
}

/// How a block body travels once announced.
///
/// The network calls [`announce`](RelayStrategy::announce) when a node
/// mints or adopts a block, and routes every block-plane message
/// ([`Message::BlockInv`] through [`Message::GetPiece`]) to
/// [`on_message`](RelayStrategy::on_message). Strategies own any per-node
/// transfer state (e.g. decode matrices) — the network clones them with
/// itself, so snapshot/resume and the parallel campaign runner work
/// unchanged.
pub trait RelayStrategy: fmt::Debug + Send + Sync {
    /// Short strategy name for reports, e.g. `"full"`.
    fn name(&self) -> &'static str;

    /// Clones the strategy (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn RelayStrategy>;

    /// `node` has a newly adopted `block` to offer its peers (minus
    /// `exclude`, the peer it came from).
    fn announce(
        &mut self,
        node: NodeId,
        block: &Block,
        exclude: Option<NodeId>,
        net: &mut RelayNet<'_>,
    );

    /// A block-plane message arrived at `to`.
    fn on_message(&mut self, from: NodeId, to: NodeId, msg: Message, net: &mut RelayNet<'_>);

    /// `node` went offline — drop any in-progress transfer state for it.
    fn on_leave(&mut self, _node: NodeId) {}
}

impl Clone for Box<dyn RelayStrategy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The legacy inv/getdata/full-body exchange, extracted verbatim from the
/// network's previously hard-wired block arms: announce with `BlockInv`,
/// pull with `GetBlocks`, ship the whole body as `BlockData`.
///
/// With waste accounting enabled it also measures what the full body
/// wastes: duplicate announcements, duplicate bodies, and the
/// `known` fraction of every delivered body — transactions the receiver
/// already held in its mempool (the BIP152 motivation).
#[derive(Debug, Clone)]
pub struct FullRelay {
    /// Fraction of a delivered block body the receiver already had.
    known_fraction: f64,
}

impl FullRelay {
    /// The spec family this strategy answers to.
    pub const FAMILY: &'static str = "full";

    /// Creates the strategy with the given already-known body fraction.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `[0, 1]`.
    pub fn new(known_fraction: f64) -> Result<Self, String> {
        if !(0.0..=1.0).contains(&known_fraction) || !known_fraction.is_finite() {
            return Err(format!(
                "relay known fraction must be within [0, 1], got {known_fraction}"
            ));
        }
        Ok(FullRelay { known_fraction })
    }

    /// Parses `full` or `full(known=F)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid argument.
    pub fn from_spec(spec: &RelaySpec) -> Result<Self, String> {
        let mut known = DEFAULT_KNOWN_TX_FRACTION;
        for (k, v) in spec.args()? {
            match k.as_str() {
                "known" => known = parse_f64(&k, &v)?,
                other => return Err(format!("unknown argument {other:?} in relay spec {spec}")),
            }
        }
        FullRelay::new(known)
    }
}

impl Default for FullRelay {
    fn default() -> Self {
        FullRelay {
            known_fraction: DEFAULT_KNOWN_TX_FRACTION,
        }
    }
}

/// Default fraction of a relayed block body the receiver already holds —
/// BIP152's observation that mempools overlap heavily.
pub const DEFAULT_KNOWN_TX_FRACTION: f64 = 0.95;

/// Parses a float relay argument.
pub(crate) fn parse_f64(key: &str, v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .map_err(|_| format!("relay argument {key}={v:?} is not a number"))
}

impl RelayStrategy for FullRelay {
    fn name(&self) -> &'static str {
        "full"
    }

    fn clone_box(&self) -> Box<dyn RelayStrategy> {
        Box::new(self.clone())
    }

    fn announce(
        &mut self,
        node: NodeId,
        block: &Block,
        exclude: Option<NodeId>,
        net: &mut RelayNet<'_>,
    ) {
        let peers = net.take_peers(node, exclude);
        for &p in &peers {
            net.send(node, p, Message::BlockInvOne { id: block.id });
        }
        net.restore_peers(peers);
    }

    fn on_message(&mut self, from: NodeId, to: NodeId, msg: Message, net: &mut RelayNet<'_>) {
        match msg {
            Message::BlockInv { ref ids } => {
                let known_before = ids.iter().filter(|&&id| net.chain(to).knows(id)).count() as u64;
                let chain = net.chain_mut(to);
                let mut wanted = Vec::new();
                for &id in ids {
                    if !chain.knows(id) {
                        chain.inflight.insert(id);
                        wanted.push(id);
                    }
                }
                if known_before > 0 {
                    net.record_redundant(
                        MessageKind::BlockInv,
                        known_before * INV_ENTRY_BYTES as u64,
                    );
                }
                if !wanted.is_empty() {
                    for &id in &wanted {
                        net.schedule_block_timeout(to, id);
                    }
                    net.send(to, from, Message::GetBlocks { ids: wanted });
                }
            }
            Message::BlockInvOne { id } => {
                if net.chain(to).knows(id) {
                    net.record_redundant(MessageKind::BlockInv, msg.wire_size_bytes() as u64);
                    return;
                }
                net.chain_mut(to).inflight.insert(id);
                net.schedule_block_timeout(to, id);
                net.send(to, from, Message::GetBlocksOne { id });
            }
            Message::GetBlocks { ids } => {
                for id in ids {
                    if net.chain(to).known.contains(&id) {
                        if let Some(block) = net.block(id) {
                            net.send(to, from, Message::BlockData { block });
                        }
                    }
                }
            }
            Message::GetBlocksOne { id } if net.chain(to).known.contains(&id) => {
                if let Some(block) = net.block(id) {
                    net.send(to, from, Message::BlockData { block });
                }
            }
            Message::GetBlocksOne { .. } => {}
            Message::BlockData { block } => {
                let wire = msg.wire_size_bytes() as u64;
                let chain = net.chain_mut(to);
                if chain.known.contains(&block.id) || chain.verifying.contains(&block.id) {
                    net.record_redundant(MessageKind::Block, wire);
                    return;
                }
                chain.inflight.remove(&block.id);
                chain.verifying.insert(block.id);
                // The receiver already held `known_fraction` of the body's
                // transactions — that share of the full body crossed the
                // wire for nothing.
                let wasted = (self.known_fraction * block.size_bytes as f64).round() as u64;
                if wasted > 0 {
                    net.record_redundant(MessageKind::Block, wasted);
                }
                net.schedule_block_verify(to, &block, from);
            }
            // Compact/coded traffic is not ours; a mixed-strategy network
            // is not modeled, so stray messages are dropped.
            _ => {}
        }
    }
}

/// A strategy factory: receives the full spec (family + arguments) and
/// instantiates the strategy, or explains why the arguments are invalid.
pub type RelayFactory =
    Box<dyn Fn(&RelaySpec) -> Result<Box<dyn RelayStrategy>, String> + Send + Sync>;

/// Maps relay families to [`RelayStrategy`] factories.
///
/// The built-in registry covers `full` only; `bcbpt-relay` extends it with
/// `compact` and `rlnc`, and downstream crates can register further
/// families so scenario files can name custom strategies without this
/// crate knowing about them.
pub struct RelayRegistry {
    factories: BTreeMap<String, RelayFactory>,
}

impl RelayRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        RelayRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// A registry preloaded with the strategies this crate ships: `full`.
    pub fn builtins() -> Self {
        let mut registry = RelayRegistry::new();
        registry.register(FullRelay::FAMILY, |spec: &RelaySpec| {
            Ok(Box::new(FullRelay::from_spec(spec)?))
        });
        registry
    }

    /// Registers (or replaces) the factory for `family`.
    pub fn register<F>(&mut self, family: impl Into<String>, factory: F)
    where
        F: Fn(&RelaySpec) -> Result<Box<dyn RelayStrategy>, String> + Send + Sync + 'static,
    {
        self.factories.insert(family.into(), Box::new(factory));
    }

    /// Whether `family` is registered.
    pub fn contains(&self, family: &str) -> bool {
        self.factories.contains_key(family)
    }

    /// Registered families, sorted.
    pub fn families(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// Resolves a spec into a strategy instance.
    ///
    /// # Errors
    ///
    /// Returns an error naming the known families when the spec's family
    /// is unregistered, or the factory's error when its arguments are
    /// invalid.
    pub fn build(&self, spec: &RelaySpec) -> Result<Box<dyn RelayStrategy>, String> {
        let family = spec.family();
        let factory = self.factories.get(family).ok_or_else(|| {
            format!(
                "unknown relay family {:?} in spec {:?} (registered: {})",
                family,
                spec.as_str(),
                self.families().collect::<Vec<_>>().join(", ")
            )
        })?;
        factory(spec)
    }
}

impl Default for RelayRegistry {
    fn default() -> Self {
        Self::builtins()
    }
}

impl fmt::Debug for RelayRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RelayRegistry")
            .field("families", &self.factories.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_exposes_family_label_and_args() {
        let spec = RelaySpec::new("rlnc(chunks=16, overhead=1.05)");
        assert_eq!(spec.family(), "rlnc");
        assert_eq!(spec.as_str(), "rlnc(chunks=16, overhead=1.05)");
        assert_eq!(spec.to_string(), "rlnc(chunks=16, overhead=1.05)");
        assert_eq!(
            spec.args().unwrap(),
            vec![
                ("chunks".to_string(), "16".to_string()),
                ("overhead".to_string(), "1.05".to_string()),
            ]
        );
        assert_eq!(RelaySpec::new("full").args().unwrap(), vec![]);
    }

    #[test]
    fn malformed_specs_error() {
        let err = RelaySpec::new("rlnc(chunks=16").args().unwrap_err();
        assert!(err.contains("unclosed"), "{err}");
        let err = RelaySpec::new("rlnc(chunks)").args().unwrap_err();
        assert!(err.contains("k=v"), "{err}");
    }

    #[test]
    fn spec_serde_is_transparent() {
        let spec = RelaySpec::new("compact(known=0.95)");
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(json, "\"compact(known=0.95)\"");
        let back: RelaySpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn builtin_registry_builds_full() {
        let registry = RelayRegistry::builtins();
        assert_eq!(registry.families().collect::<Vec<_>>(), vec!["full"]);
        assert!(registry.contains("full"));
        let relay = registry.build(&RelaySpec::new("full")).unwrap();
        assert_eq!(relay.name(), "full");
        let relay = registry.build(&RelaySpec::new("full(known=0.5)")).unwrap();
        assert_eq!(relay.name(), "full");
        let cloned = relay.clone();
        assert_eq!(cloned.name(), "full");
    }

    #[test]
    fn unknown_family_errors_and_names_the_known_set() {
        let registry = RelayRegistry::builtins();
        let err = registry.build(&RelaySpec::new("erasure(k=3)")).unwrap_err();
        assert!(err.contains("erasure"), "{err}");
        assert!(err.contains("full"), "error lists known families: {err}");
        assert!(!RelayRegistry::new().contains("full"));
    }

    #[test]
    fn full_relay_validates_known_fraction() {
        let err = FullRelay::from_spec(&RelaySpec::new("full(known=1.5)")).unwrap_err();
        assert!(err.contains("within [0, 1]"), "{err}");
        let err = FullRelay::from_spec(&RelaySpec::new("full(known=abc)")).unwrap_err();
        assert!(err.contains("not a number"), "{err}");
        let err = FullRelay::from_spec(&RelaySpec::new("full(frac=0.5)")).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }
}
