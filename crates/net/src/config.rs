//! Network configuration.

use bcbpt_geo::{ChurnModel, LatencyConfig};
use serde::{Deserialize, Serialize};

use crate::tx::VerifyCost;

/// Configuration of the simulated Bitcoin network.
///
/// Defaults mirror the paper's experiment setup (§V.B) scaled to the real
/// client's constants: 8 outbound connections, discovery every 100 ms,
/// measured-like latency and churn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetConfig {
    /// Number of nodes in the network. The paper starts the simulation with
    /// the measured size of the reachable Bitcoin network (~5000); tests use
    /// smaller populations.
    pub num_nodes: usize,
    /// Outbound connections each node maintains (Bitcoin Core default: 8).
    pub target_outbound: usize,
    /// Maximum inbound connections a node accepts (Core default: 117).
    pub max_inbound: usize,
    /// Verification cost model applied before a node relays a transaction.
    pub verify: VerifyCost,
    /// Transaction payload size in bytes (typical Bitcoin tx ≈ 500 B).
    pub tx_size_bytes: u32,
    /// Interval between a node's discovery ticks, ms (paper: 100 ms).
    pub discovery_interval_ms: f64,
    /// Addresses learned per discovery tick.
    pub discovery_sample: usize,
    /// Repeated ping samples per RTT measurement — the paper sends
    /// "multiple messages ... repeatedly ... to determine variance" (§IV.A).
    pub ping_samples: usize,
    /// Link-latency model configuration.
    pub latency: LatencyConfig,
    /// Churn model (session lengths / rejoin gaps).
    pub churn: ChurnModel,
    /// Timeout after which an unanswered GETDATA is forgotten so the
    /// transaction can be re-requested from another announcer, ms.
    pub getdata_timeout_ms: f64,
    /// Link bandwidth in bytes per millisecond, adding a serialization delay
    /// of `size / bandwidth` per message (16 Mbit/s ≈ 2000 B/ms default).
    pub bandwidth_bytes_per_ms: f64,
    /// σ of the per-pair lognormal route-stretch factor modelling BGP
    /// detours (0 disables; see `bcbpt_net::RouteTable`). This is what
    /// decorrelates geographic from internet proximity — the effect the
    /// paper's LBC-vs-BCBPT comparison hinges on (§V.C).
    pub route_sigma: f64,
    /// σ of a per-node lognormal multiplier on verification time
    /// (0 disables). Real networks contain slow verifiers; contributes to
    /// the measured heavy tail.
    pub verify_heterogeneity_sigma: f64,
    /// Block payload size in bytes (compact ~200 KB default).
    pub block_size_bytes: u32,
    /// Verification cost model for blocks (larger than transactions).
    pub block_verify: VerifyCost,
    /// Mean of an exponential per-peer delay added before each INV
    /// announcement, ms (0 disables). The 2013-era client *trickled*
    /// announcements instead of pipelining them; the paper's protocols all
    /// assume the pipelined relay (its refs \[9\],\[10\]), so this defaults to
    /// off and is enabled by [`NetConfig::measured_client`] for simulator
    /// validation.
    pub inv_trickle_mean_ms: f64,
}

impl NetConfig {
    /// Full-scale configuration matching the paper's experiment setup.
    pub fn paper_scale() -> Self {
        NetConfig {
            num_nodes: 5000,
            ..Self::default()
        }
    }

    /// A small configuration suitable for unit/integration tests.
    pub fn test_scale() -> Self {
        NetConfig {
            num_nodes: 120,
            ..Self::default()
        }
    }

    /// The "measured client" configuration used by the simulator-validation
    /// experiment (§V.A): access-delay tail, heterogeneous verifiers and
    /// INV trickling, matching the behaviour of the crawled 2013-era
    /// network rather than the pipelined relay the protocol experiments
    /// assume.
    pub fn measured_client() -> Self {
        NetConfig {
            latency: bcbpt_geo::LatencyConfig::measured(),
            // 2013-era verification against an unindexed ledger was two
            // orders of magnitude slower than today's, with extremely slow
            // outliers (Decker & Wattenhofer attribute the propagation tail
            // to such nodes).
            verify: crate::tx::VerifyCost {
                base_ms: 100.0,
                per_kb_ms: 20.0,
            },
            verify_heterogeneity_sigma: 2.1,
            inv_trickle_mean_ms: 150.0,
            ..Self::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_nodes < 2 {
            return Err(format!("num_nodes must be >= 2, got {}", self.num_nodes));
        }
        if self.target_outbound == 0 {
            return Err("target_outbound must be >= 1".to_string());
        }
        if self.target_outbound >= self.num_nodes {
            return Err(format!(
                "target_outbound {} must be < num_nodes {}",
                self.target_outbound, self.num_nodes
            ));
        }
        if self.max_inbound == 0 {
            return Err("max_inbound must be >= 1".to_string());
        }
        if !self.discovery_interval_ms.is_finite() || self.discovery_interval_ms <= 0.0 {
            return Err("discovery_interval_ms must be positive".to_string());
        }
        if self.ping_samples == 0 {
            return Err("ping_samples must be >= 1".to_string());
        }
        if !self.getdata_timeout_ms.is_finite() || self.getdata_timeout_ms <= 0.0 {
            return Err("getdata_timeout_ms must be positive".to_string());
        }
        if !self.bandwidth_bytes_per_ms.is_finite() || self.bandwidth_bytes_per_ms <= 0.0 {
            return Err("bandwidth_bytes_per_ms must be positive".to_string());
        }
        if !self.route_sigma.is_finite() || self.route_sigma < 0.0 {
            return Err("route_sigma must be a non-negative finite number".to_string());
        }
        if !self.verify_heterogeneity_sigma.is_finite() || self.verify_heterogeneity_sigma < 0.0 {
            return Err("verify_heterogeneity_sigma must be non-negative".to_string());
        }
        if !self.inv_trickle_mean_ms.is_finite() || self.inv_trickle_mean_ms < 0.0 {
            return Err("inv_trickle_mean_ms must be non-negative".to_string());
        }
        if self.block_size_bytes == 0 {
            return Err("block_size_bytes must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            num_nodes: 1000,
            target_outbound: 8,
            max_inbound: 117,
            verify: VerifyCost::realistic(),
            tx_size_bytes: 500,
            discovery_interval_ms: 100.0,
            discovery_sample: 8,
            ping_samples: 5,
            latency: LatencyConfig::internet(),
            churn: ChurnModel::disabled(),
            getdata_timeout_ms: 2_000.0,
            bandwidth_bytes_per_ms: 2_000.0,
            route_sigma: 0.35,
            verify_heterogeneity_sigma: 0.0,
            inv_trickle_mean_ms: 0.0,
            block_size_bytes: 200_000,
            block_verify: VerifyCost {
                base_ms: 20.0,
                per_kb_ms: 0.1,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        NetConfig::default().validate().unwrap();
        NetConfig::paper_scale().validate().unwrap();
        NetConfig::test_scale().validate().unwrap();
    }

    #[test]
    fn paper_scale_matches_measured_network_size() {
        assert_eq!(NetConfig::paper_scale().num_nodes, 5000);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validation_catches_each_violation() {
        let mut c = NetConfig::default();
        c.num_nodes = 1;
        assert!(c.validate().unwrap_err().contains("num_nodes"));

        let mut c = NetConfig::default();
        c.target_outbound = 0;
        assert!(c.validate().is_err());

        let mut c = NetConfig::test_scale();
        c.target_outbound = c.num_nodes;
        assert!(c.validate().unwrap_err().contains("target_outbound"));

        let mut c = NetConfig::default();
        c.max_inbound = 0;
        assert!(c.validate().is_err());

        let mut c = NetConfig::default();
        c.discovery_interval_ms = 0.0;
        assert!(c.validate().is_err());

        let mut c = NetConfig::default();
        c.ping_samples = 0;
        assert!(c.validate().is_err());

        let mut c = NetConfig::default();
        c.getdata_timeout_ms = -1.0;
        assert!(c.validate().is_err());

        let mut c = NetConfig::default();
        c.bandwidth_bytes_per_ms = 0.0;
        assert!(c.validate().is_err());

        let mut c = NetConfig::default();
        c.route_sigma = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = NetConfig::default();
        c.verify_heterogeneity_sigma = -0.1;
        assert!(c.validate().is_err());

        let mut c = NetConfig::default();
        c.inv_trickle_mean_ms = f64::INFINITY;
        assert!(c.validate().is_err());
    }

    #[test]
    fn measured_client_validates_and_differs() {
        let c = NetConfig::measured_client();
        c.validate().unwrap();
        assert!(c.inv_trickle_mean_ms > 0.0);
        assert!(c.verify_heterogeneity_sigma > 0.0);
    }

    #[test]
    fn serde_round_trip() {
        // JSON cannot represent infinities, so use finite churn here.
        let c = NetConfig {
            churn: bcbpt_geo::ChurnModel::measured_like(),
            ..NetConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: NetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
