//! Neighbour-selection policy abstraction.
//!
//! The paper's three protocols — vanilla Bitcoin (random neighbours), LBC
//! (geographic clusters) and BCBPT (ping-latency clusters) — differ *only*
//! in how nodes choose whom to connect to. The fabric therefore delegates
//! every topology decision to a [`NeighborPolicy`], giving the policy a
//! [`NetView`] through which it can inspect geography, measure ping
//! latencies (at an accounted message cost) and steer connections.

use crate::adversary::Adversary;
use crate::config::NetConfig;
use crate::ids::NodeId;
use crate::links::Links;
use crate::msg::Message;
use crate::node::NodeMeta;
use crate::online::OnlineSet;
use crate::routes::RouteTable;
use crate::stats::MessageStats;
use bcbpt_geo::LinkLatencyModel;
use rand::Rng;
use rand_chacha::ChaCha12Rng;

/// Topology changes a policy requests after a discovery tick.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopologyActions {
    /// Peers to dial (outbound).
    pub connect: Vec<NodeId>,
    /// Existing connections to drop.
    pub disconnect: Vec<NodeId>,
}

impl TopologyActions {
    /// No changes.
    pub fn none() -> Self {
        Self::default()
    }

    /// Dial the given peers.
    pub fn connect_to(connect: Vec<NodeId>) -> Self {
        TopologyActions {
            connect,
            disconnect: Vec::new(),
        }
    }

    /// `true` when nothing is requested.
    pub fn is_empty(&self) -> bool {
        self.connect.is_empty() && self.disconnect.is_empty()
    }
}

/// A neighbour-selection protocol.
///
/// Implementations live in `bcbpt-cluster`; the fabric calls these hooks:
///
/// * [`bootstrap`](Self::bootstrap) — when a node first joins (or rejoins
///   after churn): return the initial outbound targets.
/// * [`on_discovery`](Self::on_discovery) — every discovery tick (paper:
///   100 ms): the node has learned `discovered` addresses; return topology
///   actions.
/// * [`on_leave`](Self::on_leave) — the node went offline.
///
/// Policies that maintain clusters should report membership through
/// [`cluster_of`](Self::cluster_of) so experiments can inspect cluster
/// structure.
///
/// Policies are `Send + Sync` and cloneable so campaigns can snapshot a
/// warmed-up network (policy state included) and fan independent measuring
/// runs out across worker threads.
pub trait NeighborPolicy: core::fmt::Debug + Send + Sync {
    /// Short name used in reports (`"bitcoin"`, `"lbc"`, `"bcbpt"`).
    fn name(&self) -> &'static str;

    /// Clones the policy (with its full state) into a fresh box — the
    /// per-run snapshot primitive of the parallel campaign runner.
    fn clone_box(&self) -> Box<dyn NeighborPolicy>;

    /// Initial outbound targets for a (re)joining node.
    fn bootstrap(&mut self, node: NodeId, view: &mut NetView<'_>) -> Vec<NodeId>;

    /// Reaction to a discovery tick.
    fn on_discovery(
        &mut self,
        node: NodeId,
        discovered: &[NodeId],
        view: &mut NetView<'_>,
    ) -> TopologyActions;

    /// Notification that `node` disconnected from the network.
    fn on_leave(&mut self, node: NodeId, view: &mut NetView<'_>);

    /// The cluster `node` currently belongs to, if this policy clusters.
    fn cluster_of(&self, _node: NodeId) -> Option<usize> {
        None
    }
}

impl Clone for Box<dyn NeighborPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// The policy's window into the network.
///
/// Everything a protocol implementation may legitimately observe: node
/// geography (DNS seeds know coarse location), liveness, the connection
/// table, and *measured* ping latencies. Measurements cost accounted
/// PING/PONG messages, which is how the overhead experiment (paper §IV.A,
/// future work) is fed.
#[derive(Debug)]
pub struct NetView<'a> {
    pub(crate) meta: &'a [NodeMeta],
    pub(crate) links: &'a Links,
    pub(crate) online: &'a OnlineSet,
    pub(crate) latency: &'a LinkLatencyModel,
    pub(crate) routes: &'a RouteTable,
    pub(crate) stats: &'a mut MessageStats,
    pub(crate) rng: &'a mut ChaCha12Rng,
    pub(crate) config: &'a NetConfig,
    pub(crate) adversary: Option<&'a mut (dyn Adversary + 'static)>,
}

impl<'a> NetView<'a> {
    /// Number of nodes in the network.
    pub fn num_nodes(&self) -> usize {
        self.meta.len()
    }

    /// Whether `node` is currently online.
    pub fn is_online(&self, node: NodeId) -> bool {
        self.meta[node.index()].online
    }

    /// Country tag of `node` (what the LBC baseline clusters on).
    pub fn country(&self, node: NodeId) -> &str {
        &self.meta[node.index()].placement.country
    }

    /// Great-circle distance between two nodes in kilometres — the
    /// geographic knowledge a DNS seed can derive from IP geolocation.
    pub fn geo_distance_km(&self, a: NodeId, b: NodeId) -> f64 {
        self.meta[a.index()]
            .placement
            .point
            .distance_km(&self.meta[b.index()].placement.point)
    }

    /// Noise-free ground-truth RTT (ms). Reserved for tests and analysis;
    /// protocol implementations should use [`measure_rtt_ms`] which pays the
    /// message cost and sees congestion noise.
    ///
    /// [`measure_rtt_ms`]: Self::measure_rtt_ms
    pub fn base_rtt_ms(&self, a: NodeId, b: NodeId) -> f64 {
        let ma = &self.meta[a.index()];
        let mb = &self.meta[b.index()];
        2.0 * self.latency.base_one_way_ms_with_route(
            &ma.placement.point,
            &mb.placement.point,
            &ma.access,
            &mb.access,
            self.routes.stretch(a, b),
        )
    }

    /// Measures the RTT from `a` to `b` the way a real node would: send
    /// `config.ping_samples` pings, average the noisy round trips. Each
    /// sample costs one PING and one PONG, recorded in the traffic stats.
    ///
    /// The averaged measurement passes through the installed behavioural
    /// adversary (if any): an attacker endpoint can forge the value its
    /// probes report, which is how proximity spoofing reaches the
    /// clustering protocols' RTT estimators.
    pub fn measure_rtt_ms(&mut self, a: NodeId, b: NodeId) -> f64 {
        let samples = self.config.ping_samples.max(1);
        let base_one_way = self.base_rtt_ms(a, b) / 2.0;
        let mut total = 0.0;
        for _ in 0..samples {
            let out = self.latency.sample_one_way_ms(base_one_way, self.rng);
            let back = self.latency.sample_one_way_ms(base_one_way, self.rng);
            total += out + back;
            let nonce = self.rng.gen();
            self.stats.record(&Message::Ping { nonce });
            self.stats.record(&Message::Pong { nonce });
        }
        let measured = total / samples as f64;
        match &mut self.adversary {
            Some(adversary) => adversary.rewrite_rtt_ms(a, b, measured),
            None => measured,
        }
    }

    /// Records a control message the policy conceptually sent (e.g. the
    /// BCBPT JOIN / CLUSTERLIST exchange) without scheduling a delivery —
    /// topology changes are applied synchronously, but their traffic must
    /// still show up in the overhead accounting.
    pub fn count_control(&mut self, msg: &Message) {
        self.stats.record(msg);
    }

    /// Established peers of `node`, in id order.
    pub fn peers(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.links.peers(node).iter().copied()
    }

    /// Whether `a` and `b` are connected.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.links.connected(a, b)
    }

    /// Number of outbound connections `node` holds.
    pub fn outbound_count(&self, node: NodeId) -> usize {
        self.links.outbound_count(node)
    }

    /// Number of inbound connections `node` holds.
    pub fn inbound_count(&self, node: NodeId) -> usize {
        self.links.inbound_count(node)
    }

    /// Free outbound slots of `node` under the configured cap.
    pub fn free_outbound_slots(&self, node: NodeId) -> usize {
        self.config
            .target_outbound
            .saturating_sub(self.links.outbound_count(node))
    }

    /// Whether `node` can accept one more inbound connection.
    pub fn can_accept_inbound(&self, node: NodeId) -> bool {
        self.links.inbound_count(node) < self.config.max_inbound
    }

    /// The network configuration.
    pub fn config(&self) -> &NetConfig {
        self.config
    }

    /// Draws from the policy's deterministic random stream.
    pub fn rng(&mut self) -> &mut ChaCha12Rng {
        self.rng
    }

    /// The traffic counters (read-only).
    pub fn stats(&self) -> &MessageStats {
        self.stats
    }

    #[doc(hidden)]
    pub fn stats_for_tests(&self) -> &MessageStats {
        self.stats
    }

    /// Samples `k` distinct online nodes uniformly, excluding `exclude` —
    /// the "normal Bitcoin network nodes discovery mechanism" the paper
    /// refers to.
    pub fn sample_online(&mut self, k: usize, exclude: NodeId) -> Vec<NodeId> {
        self.online.sample(k, exclude, self.rng)
    }

    /// Number of online nodes.
    pub fn online_count(&self) -> usize {
        self.online.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_geo::{GeoPoint, LatencyConfig, Placement};
    use rand::SeedableRng;

    fn make_meta(n: usize) -> Vec<NodeMeta> {
        (0..n)
            .map(|i| NodeMeta {
                placement: Placement {
                    point: GeoPoint::new(i as f64, i as f64).unwrap(),
                    region_index: 0,
                    country: if i % 2 == 0 { "US" } else { "DE" }.to_string(),
                },
                access: bcbpt_geo::AccessProfile {
                    access_delay_ms: 1.0,
                },
                verify_factor: 1.0,
                online: i != 3,
            })
            .collect()
    }

    fn with_view<F: FnOnce(&mut NetView<'_>)>(n: usize, f: F) {
        let meta = make_meta(n);
        let mut links = Links::new(n);
        links.connect(NodeId::from_index(0), NodeId::from_index(1));
        let mut online = OnlineSet::all_online(n);
        for (i, m) in meta.iter().enumerate() {
            if !m.online {
                online.remove(NodeId::from_index(i as u32));
            }
        }
        let latency = LinkLatencyModel::new(LatencyConfig::noiseless());
        let routes = RouteTable::new(0, 0.0);
        let mut stats = MessageStats::new();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let config = NetConfig::test_scale();
        let mut view = NetView {
            meta: &meta,
            links: &links,
            online: &online,
            latency: &latency,
            routes: &routes,
            stats: &mut stats,
            rng: &mut rng,
            config: &config,
            adversary: None,
        };
        f(&mut view);
    }

    #[test]
    fn view_exposes_liveness_and_geography() {
        with_view(6, |v| {
            assert_eq!(v.num_nodes(), 6);
            assert!(v.is_online(NodeId::from_index(0)));
            assert!(!v.is_online(NodeId::from_index(3)));
            assert_eq!(v.country(NodeId::from_index(0)), "US");
            assert_eq!(v.country(NodeId::from_index(1)), "DE");
            let d01 = v.geo_distance_km(NodeId::from_index(0), NodeId::from_index(1));
            let d05 = v.geo_distance_km(NodeId::from_index(0), NodeId::from_index(5));
            assert!(d05 > d01);
        });
    }

    #[test]
    fn measured_rtt_tracks_base_and_counts_probes() {
        with_view(6, |v| {
            let a = NodeId::from_index(0);
            let b = NodeId::from_index(5);
            let base = v.base_rtt_ms(a, b);
            let measured = v.measure_rtt_ms(a, b);
            // Noiseless config: measurement equals ground truth.
            assert!((measured - base).abs() < 1e-9);
            let samples = v.config().ping_samples as u64;
            assert_eq!(v.stats.probe_messages(), 2 * samples);
        });
    }

    #[test]
    fn connection_queries_reflect_links() {
        with_view(6, |v| {
            let a = NodeId::from_index(0);
            let b = NodeId::from_index(1);
            assert!(v.connected(a, b));
            assert_eq!(v.peers(a).collect::<Vec<_>>(), vec![b]);
            assert_eq!(v.outbound_count(a), 1);
            assert_eq!(v.inbound_count(b), 1);
            assert_eq!(v.free_outbound_slots(a), v.config().target_outbound - 1);
            assert!(v.can_accept_inbound(b));
        });
    }

    #[test]
    fn sample_online_excludes_self_and_offline() {
        with_view(6, |v| {
            let me = NodeId::from_index(0);
            for _ in 0..20 {
                let sample = v.sample_online(10, me);
                assert!(sample.len() <= 4, "5 others minus 1 offline");
                assert!(!sample.contains(&me));
                assert!(!sample.contains(&NodeId::from_index(3)));
            }
        });
    }

    #[test]
    fn count_control_feeds_stats() {
        with_view(4, |v| {
            v.count_control(&Message::Join);
            v.count_control(&Message::ClusterList { members: vec![] });
            assert_eq!(v.stats.cluster_control_messages(), 2);
        });
    }

    #[test]
    fn topology_actions_helpers() {
        assert!(TopologyActions::none().is_empty());
        let a = TopologyActions::connect_to(vec![NodeId::from_index(1)]);
        assert!(!a.is_empty());
        assert_eq!(a.connect.len(), 1);
        assert!(a.disconnect.is_empty());
    }
}
