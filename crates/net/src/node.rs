//! Per-node state.

use crate::ids::TxId;
use bcbpt_geo::{AccessProfile, Placement};
use std::collections::BTreeSet;

/// Static/geographic attributes of a node, visible to neighbour-selection
/// policies.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeMeta {
    /// Where the node sits and which country tag it carries.
    pub placement: Placement,
    /// Its access-network delay profile.
    pub access: AccessProfile,
    /// Per-node multiplier on verification time (1.0 = nominal hardware).
    pub verify_factor: f64,
    /// Whether the node is currently online (churn toggles this).
    pub online: bool,
}

/// Protocol (relay) state of a node.
///
/// Sets are ordered so iteration — and thus simulation behaviour — is
/// deterministic across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtoState {
    /// Transactions fully verified and available for relay.
    pub mempool: BTreeSet<TxId>,
    /// Transactions currently being verified (payload received).
    pub verifying: BTreeSet<TxId>,
    /// Transactions requested via GETDATA and not yet received.
    pub inflight: BTreeSet<TxId>,
}

impl ProtoState {
    /// Creates empty protocol state.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the node has seen the transaction in any stage.
    pub fn knows(&self, tx: TxId) -> bool {
        self.mempool.contains(&tx) || self.verifying.contains(&tx) || self.inflight.contains(&tx)
    }

    /// Resets relay state (used when a node rejoins after churn with a cold
    /// cache — conservative: it may re-request transactions).
    pub fn clear(&mut self) {
        self.mempool.clear();
        self.verifying.clear();
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knows_covers_all_stages() {
        let mut p = ProtoState::new();
        let t1 = TxId::from_raw(1);
        let t2 = TxId::from_raw(2);
        let t3 = TxId::from_raw(3);
        assert!(!p.knows(t1));
        p.mempool.insert(t1);
        p.verifying.insert(t2);
        p.inflight.insert(t3);
        assert!(p.knows(t1));
        assert!(p.knows(t2));
        assert!(p.knows(t3));
        assert!(!p.knows(TxId::from_raw(4)));
    }

    #[test]
    fn clear_resets_everything() {
        let mut p = ProtoState::new();
        p.mempool.insert(TxId::from_raw(1));
        p.inflight.insert(TxId::from_raw(2));
        p.clear();
        assert_eq!(p, ProtoState::new());
    }
}
