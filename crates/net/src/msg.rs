//! Wire messages of the simulated Bitcoin P2P protocol.
//!
//! The subset that matters for propagation-delay experiments (paper Fig. 1
//! and §IV): the INV/GETDATA/TX relay exchange, PING/PONG for latency
//! measurement, ADDR/GETADDR for discovery, VERSION/VERACK handshakes, and
//! the BCBPT-specific JOIN/CLUSTERLIST exchange.

use crate::block::{Block, BlockId};
use crate::ids::{NodeId, TxId};
use crate::tx::Transaction;
use core::fmt;
use serde::{Deserialize, Serialize};

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message {
    /// Connection handshake, first half.
    Version,
    /// Connection handshake, second half.
    Verack,
    /// Latency probe.
    Ping {
        /// Echo nonce.
        nonce: u64,
    },
    /// Latency probe reply.
    Pong {
        /// Echoed nonce.
        nonce: u64,
    },
    /// Request for known addresses.
    GetAddr,
    /// Address gossip.
    Addr {
        /// Advertised peers.
        nodes: Vec<NodeId>,
    },
    /// Inventory announcement: "I have these transactions".
    Inv {
        /// Announced transaction ids.
        txids: Vec<TxId>,
    },
    /// Single-transaction inventory announcement — the relay fabric's hot
    /// path announces exactly one transaction per INV, and this variant
    /// carries it inline instead of heap-allocating a one-element vector.
    /// Wire-identical to `Inv` with one entry.
    InvOne {
        /// The announced transaction id.
        txid: TxId,
    },
    /// Request for full transaction data.
    GetData {
        /// Requested transaction ids.
        txids: Vec<TxId>,
    },
    /// Single-transaction data request (allocation-free twin of `GetData`).
    GetDataOne {
        /// The requested transaction id.
        txid: TxId,
    },
    /// Full transaction payload.
    TxData {
        /// The transaction.
        tx: Transaction,
    },
    /// Block inventory announcement.
    BlockInv {
        /// Announced block ids.
        ids: Vec<BlockId>,
    },
    /// Single-block inventory announcement (allocation-free twin of
    /// `BlockInv`).
    BlockInvOne {
        /// The announced block id.
        id: BlockId,
    },
    /// Request for full block data.
    GetBlocks {
        /// Requested block ids.
        ids: Vec<BlockId>,
    },
    /// Single-block data request (allocation-free twin of `GetBlocks`).
    GetBlocksOne {
        /// The requested block id.
        id: BlockId,
    },
    /// Full block payload.
    BlockData {
        /// The block.
        block: Block,
    },
    /// BCBPT: ask the closest node to admit us to its cluster (§IV.B).
    Join,
    /// BCBPT: reply to [`Message::Join`] listing the cluster's members.
    ClusterList {
        /// Members of the responder's cluster.
        members: Vec<NodeId>,
    },
    /// Compact-block announcement (BIP152 high-bandwidth mode): the block
    /// header plus one short id per transaction in the block body.
    CmpctBlock {
        /// The announced block.
        block: Block,
        /// Number of short transaction ids in the announcement.
        short_ids: u32,
    },
    /// Request for the transactions a compact-block receiver is missing.
    GetBlockTxn {
        /// The block whose transactions are requested.
        block: BlockId,
        /// Number of requested transaction indexes.
        indexes: u32,
    },
    /// The missing transactions a [`Message::GetBlockTxn`] asked for.
    BlockTxn {
        /// The block the transactions belong to.
        block: BlockId,
        /// Number of transactions carried.
        tx_count: u32,
        /// Total serialized size of the carried transactions.
        tx_bytes: u32,
    },
    /// One GF(256) random-linear network-coded piece of a chunked block:
    /// the coding-coefficient vector (one byte per chunk) plus the coded
    /// payload.
    CodedPiece {
        /// The block the piece codes over.
        block: Block,
        /// GF(256) coding coefficients, one per chunk.
        coeffs: Vec<u8>,
        /// Size of the coded payload in bytes.
        piece_bytes: u32,
    },
    /// Request for more coded pieces of a block the sender is still
    /// decoding (its decode-rank deficit).
    GetPiece {
        /// The block being decoded.
        block: BlockId,
        /// Number of additional pieces requested.
        pieces: u32,
    },
}

/// Coarse message classification for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MessageKind {
    /// VERSION.
    Version,
    /// VERACK.
    Verack,
    /// PING.
    Ping,
    /// PONG.
    Pong,
    /// GETADDR.
    GetAddr,
    /// ADDR.
    Addr,
    /// INV.
    Inv,
    /// GETDATA.
    GetData,
    /// TX.
    Tx,
    /// Block INV.
    BlockInv,
    /// GETBLOCKS.
    GetBlocks,
    /// BLOCK.
    Block,
    /// JOIN.
    Join,
    /// CLUSTERLIST.
    ClusterList,
    /// CMPCTBLOCK.
    CmpctBlock,
    /// GETBLOCKTXN.
    GetBlockTxn,
    /// BLOCKTXN.
    BlockTxn,
    /// Coded piece.
    CodedPiece,
    /// GETPIECE.
    GetPiece,
}

impl MessageKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [MessageKind; 19] = [
        MessageKind::Version,
        MessageKind::Verack,
        MessageKind::Ping,
        MessageKind::Pong,
        MessageKind::GetAddr,
        MessageKind::Addr,
        MessageKind::Inv,
        MessageKind::GetData,
        MessageKind::Tx,
        MessageKind::BlockInv,
        MessageKind::GetBlocks,
        MessageKind::Block,
        MessageKind::Join,
        MessageKind::ClusterList,
        MessageKind::CmpctBlock,
        MessageKind::GetBlockTxn,
        MessageKind::BlockTxn,
        MessageKind::CodedPiece,
        MessageKind::GetPiece,
    ];
}

impl fmt::Display for MessageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageKind::Version => "version",
            MessageKind::Verack => "verack",
            MessageKind::Ping => "ping",
            MessageKind::Pong => "pong",
            MessageKind::GetAddr => "getaddr",
            MessageKind::Addr => "addr",
            MessageKind::Inv => "inv",
            MessageKind::GetData => "getdata",
            MessageKind::Tx => "tx",
            MessageKind::BlockInv => "blockinv",
            MessageKind::GetBlocks => "getblocks",
            MessageKind::Block => "block",
            MessageKind::Join => "join",
            MessageKind::ClusterList => "clusterlist",
            MessageKind::CmpctBlock => "cmpctblock",
            MessageKind::GetBlockTxn => "getblocktxn",
            MessageKind::BlockTxn => "blocktxn",
            MessageKind::CodedPiece => "codedpiece",
            MessageKind::GetPiece => "getpiece",
        };
        f.write_str(s)
    }
}

/// Bitcoin wire overhead: 24-byte header on every message.
const HEADER_BYTES: usize = 24;
/// Bytes per inventory vector entry (type + hash).
pub(crate) const INV_ENTRY_BYTES: usize = 36;
/// Bytes per address entry (time + services + IP + port).
const ADDR_ENTRY_BYTES: usize = 30;
/// Serialized block header (BIP152 `cmpctblock` prefix).
const BLOCK_HEADER_BYTES: usize = 80;
/// Bytes per BIP152 short transaction id.
const SHORT_ID_BYTES: usize = 6;
/// Bytes per differentially-encoded `getblocktxn` index.
const TXN_INDEX_BYTES: usize = 3;

impl Message {
    /// The statistics kind of this message.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Version => MessageKind::Version,
            Message::Verack => MessageKind::Verack,
            Message::Ping { .. } => MessageKind::Ping,
            Message::Pong { .. } => MessageKind::Pong,
            Message::GetAddr => MessageKind::GetAddr,
            Message::Addr { .. } => MessageKind::Addr,
            Message::Inv { .. } | Message::InvOne { .. } => MessageKind::Inv,
            Message::GetData { .. } | Message::GetDataOne { .. } => MessageKind::GetData,
            Message::TxData { .. } => MessageKind::Tx,
            Message::BlockInv { .. } | Message::BlockInvOne { .. } => MessageKind::BlockInv,
            Message::GetBlocks { .. } | Message::GetBlocksOne { .. } => MessageKind::GetBlocks,
            Message::BlockData { .. } => MessageKind::Block,
            Message::Join => MessageKind::Join,
            Message::ClusterList { .. } => MessageKind::ClusterList,
            Message::CmpctBlock { .. } => MessageKind::CmpctBlock,
            Message::GetBlockTxn { .. } => MessageKind::GetBlockTxn,
            Message::BlockTxn { .. } => MessageKind::BlockTxn,
            Message::CodedPiece { .. } => MessageKind::CodedPiece,
            Message::GetPiece { .. } => MessageKind::GetPiece,
        }
    }

    /// Approximate wire size in bytes, mirroring the real protocol's
    /// framing. Drives bandwidth accounting and the overhead experiment.
    pub fn wire_size_bytes(&self) -> usize {
        HEADER_BYTES
            + match self {
                Message::Version => 86,
                Message::Verack => 0,
                Message::Ping { .. } | Message::Pong { .. } => 8,
                Message::GetAddr => 0,
                Message::Addr { nodes } => 1 + nodes.len() * ADDR_ENTRY_BYTES,
                Message::Inv { txids } | Message::GetData { txids } => {
                    1 + txids.len() * INV_ENTRY_BYTES
                }
                Message::InvOne { .. } | Message::GetDataOne { .. } => 1 + INV_ENTRY_BYTES,
                Message::TxData { tx } => tx.size_bytes as usize,
                Message::BlockInv { ids } | Message::GetBlocks { ids } => {
                    1 + ids.len() * INV_ENTRY_BYTES
                }
                Message::BlockInvOne { .. } | Message::GetBlocksOne { .. } => 1 + INV_ENTRY_BYTES,
                Message::BlockData { block } => block.size_bytes as usize,
                Message::Join => 8,
                Message::ClusterList { members } => 1 + members.len() * ADDR_ENTRY_BYTES,
                Message::CmpctBlock { short_ids, .. } => {
                    BLOCK_HEADER_BYTES + 8 + 1 + *short_ids as usize * SHORT_ID_BYTES
                }
                Message::GetBlockTxn { indexes, .. } => {
                    INV_ENTRY_BYTES + 1 + *indexes as usize * TXN_INDEX_BYTES
                }
                Message::BlockTxn { tx_bytes, .. } => INV_ENTRY_BYTES + 1 + *tx_bytes as usize,
                Message::CodedPiece {
                    coeffs,
                    piece_bytes,
                    ..
                } => BLOCK_HEADER_BYTES + coeffs.len() + *piece_bytes as usize,
                Message::GetPiece { .. } => INV_ENTRY_BYTES + 4,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TxId;

    fn test_block() -> Block {
        Block {
            id: BlockId::from_raw(1),
            parent: None,
            height: 0,
            miner: NodeId::from_index(0),
            size_bytes: 1000,
        }
    }

    #[test]
    fn kind_mapping_is_total() {
        let msgs: Vec<Message> = vec![
            Message::Version,
            Message::Verack,
            Message::Ping { nonce: 1 },
            Message::Pong { nonce: 1 },
            Message::GetAddr,
            Message::Addr { nodes: vec![] },
            Message::Inv { txids: vec![] },
            Message::GetData { txids: vec![] },
            Message::TxData {
                tx: Transaction::new(TxId::from_raw(1), 250),
            },
            Message::BlockInv { ids: vec![] },
            Message::GetBlocks { ids: vec![] },
            Message::BlockData {
                block: Block {
                    id: BlockId::from_raw(1),
                    parent: None,
                    height: 0,
                    miner: NodeId::from_index(0),
                    size_bytes: 1000,
                },
            },
            Message::Join,
            Message::ClusterList { members: vec![] },
            Message::CmpctBlock {
                block: test_block(),
                short_ids: 40,
            },
            Message::GetBlockTxn {
                block: BlockId::from_raw(1),
                indexes: 2,
            },
            Message::BlockTxn {
                block: BlockId::from_raw(1),
                tx_count: 2,
                tx_bytes: 1000,
            },
            Message::CodedPiece {
                block: test_block(),
                coeffs: vec![1, 2, 3],
                piece_bytes: 64,
            },
            Message::GetPiece {
                block: BlockId::from_raw(1),
                pieces: 4,
            },
        ];
        let kinds: Vec<MessageKind> = msgs.iter().map(Message::kind).collect();
        assert_eq!(kinds, MessageKind::ALL.to_vec());
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let inv1 = Message::Inv {
            txids: vec![TxId::from_raw(1)],
        };
        let inv3 = Message::Inv {
            txids: vec![TxId::from_raw(1), TxId::from_raw(2), TxId::from_raw(3)],
        };
        assert_eq!(
            inv3.wire_size_bytes() - inv1.wire_size_bytes(),
            2 * INV_ENTRY_BYTES
        );
        let tx = Message::TxData {
            tx: Transaction::new(TxId::from_raw(1), 500),
        };
        assert_eq!(tx.wire_size_bytes(), HEADER_BYTES + 500);
    }

    #[test]
    fn every_message_has_nonzero_wire_size() {
        assert!(Message::Verack.wire_size_bytes() >= HEADER_BYTES);
        assert!(Message::Ping { nonce: 0 }.wire_size_bytes() > HEADER_BYTES);
    }

    #[test]
    fn one_element_twins_match_their_vec_forms() {
        let txid = TxId::from_raw(7);
        let id = BlockId::from_raw(9);
        let pairs = [
            (Message::Inv { txids: vec![txid] }, Message::InvOne { txid }),
            (
                Message::GetData { txids: vec![txid] },
                Message::GetDataOne { txid },
            ),
            (
                Message::BlockInv { ids: vec![id] },
                Message::BlockInvOne { id },
            ),
            (
                Message::GetBlocks { ids: vec![id] },
                Message::GetBlocksOne { id },
            ),
        ];
        for (vec_form, one_form) in pairs {
            assert_eq!(vec_form.kind(), one_form.kind());
            assert_eq!(vec_form.wire_size_bytes(), one_form.wire_size_bytes());
        }
    }

    #[test]
    fn relay_wire_sizes_scale_with_content() {
        let small = Message::CmpctBlock {
            block: test_block(),
            short_ids: 10,
        };
        let large = Message::CmpctBlock {
            block: test_block(),
            short_ids: 20,
        };
        assert_eq!(
            large.wire_size_bytes() - small.wire_size_bytes(),
            10 * SHORT_ID_BYTES
        );
        // A compact announcement of a 1000-byte block is smaller than the
        // full body; the combined compact exchange stays competitive.
        let full = Message::BlockData {
            block: test_block(),
        };
        assert!(small.wire_size_bytes() < full.wire_size_bytes());

        let txn = Message::BlockTxn {
            block: BlockId::from_raw(1),
            tx_count: 3,
            tx_bytes: 1500,
        };
        assert_eq!(
            txn.wire_size_bytes(),
            HEADER_BYTES + INV_ENTRY_BYTES + 1 + 1500
        );

        let piece = Message::CodedPiece {
            block: test_block(),
            coeffs: vec![0; 16],
            piece_bytes: 63,
        };
        assert_eq!(
            piece.wire_size_bytes(),
            HEADER_BYTES + BLOCK_HEADER_BYTES + 16 + 63
        );
        let pull = Message::GetPiece {
            block: BlockId::from_raw(1),
            pieces: 7,
        };
        assert_eq!(pull.wire_size_bytes(), HEADER_BYTES + INV_ENTRY_BYTES + 4);
    }

    #[test]
    fn relay_messages_round_trip_through_serde() {
        let msgs = vec![
            Message::CmpctBlock {
                block: test_block(),
                short_ids: 40,
            },
            Message::GetBlockTxn {
                block: BlockId::from_raw(9),
                indexes: 2,
            },
            Message::BlockTxn {
                block: BlockId::from_raw(9),
                tx_count: 2,
                tx_bytes: 1000,
            },
            Message::CodedPiece {
                block: test_block(),
                coeffs: vec![7, 0, 255],
                piece_bytes: 64,
            },
            Message::GetPiece {
                block: BlockId::from_raw(9),
                pieces: 4,
            },
        ];
        for msg in msgs {
            let json = serde_json::to_string(&msg).expect("serializes");
            let back: Message = serde_json::from_str(&json).expect("parses");
            assert_eq!(back, msg, "round trip failed for {json}");
        }
    }

    #[test]
    fn kind_display_distinct_and_nonempty() {
        let mut seen = std::collections::BTreeSet::new();
        for k in MessageKind::ALL {
            let s = k.to_string();
            assert!(!s.is_empty());
            assert!(seen.insert(s), "duplicate display for {k:?}");
        }
    }
}
