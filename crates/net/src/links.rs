//! Connection bookkeeping.
//!
//! Connections are logical TCP sessions between peers: undirected for
//! message flow, but each edge remembers its *initiator* because Bitcoin
//! caps outbound (8) and inbound (117) connections separately. All sets are
//! ordered (`BTreeSet`) so that iteration order — and therefore every
//! simulation run — is deterministic.

use crate::ids::NodeId;
use std::collections::BTreeSet;

/// The connection table of the whole network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Links {
    /// All established peers, per node.
    peers: Vec<BTreeSet<NodeId>>,
    /// Peers this node dialled (subset of `peers`).
    outbound: Vec<BTreeSet<NodeId>>,
}

impl Links {
    /// Creates an empty table for `n` nodes.
    pub fn new(n: usize) -> Self {
        Links {
            peers: vec![BTreeSet::new(); n],
            outbound: vec![BTreeSet::new(); n],
        }
    }

    /// Number of nodes the table covers.
    pub fn num_nodes(&self) -> usize {
        self.peers.len()
    }

    /// Establishes `from → to`. Returns `false` (and changes nothing) when
    /// the edge already exists or the endpoints are equal.
    ///
    /// # Panics
    ///
    /// Panics when either id is out of range.
    pub fn connect(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.peers.len(), "from out of range");
        assert!(to.index() < self.peers.len(), "to out of range");
        if from == to || self.peers[from.index()].contains(&to) {
            return false;
        }
        self.peers[from.index()].insert(to);
        self.peers[to.index()].insert(from);
        self.outbound[from.index()].insert(to);
        true
    }

    /// Tears down the edge between `a` and `b` (either direction). Returns
    /// `false` when no edge existed.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> bool {
        let existed = self.peers[a.index()].remove(&b);
        self.peers[b.index()].remove(&a);
        self.outbound[a.index()].remove(&b);
        self.outbound[b.index()].remove(&a);
        existed
    }

    /// Drops every edge incident to `node`, returning the former peers.
    pub fn drop_all(&mut self, node: NodeId) -> Vec<NodeId> {
        let former: Vec<NodeId> = self.peers[node.index()].iter().copied().collect();
        for p in &former {
            self.peers[p.index()].remove(&node);
            self.outbound[p.index()].remove(&node);
        }
        self.peers[node.index()].clear();
        self.outbound[node.index()].clear();
        former
    }

    /// `true` when `a` and `b` are connected.
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        self.peers[a.index()].contains(&b)
    }

    /// All peers of `node`, in id order.
    pub fn peers(&self, node: NodeId) -> &BTreeSet<NodeId> {
        &self.peers[node.index()]
    }

    /// Peers `node` dialled.
    pub fn outbound(&self, node: NodeId) -> &BTreeSet<NodeId> {
        &self.outbound[node.index()]
    }

    /// Number of connections `node` dialled.
    pub fn outbound_count(&self, node: NodeId) -> usize {
        self.outbound[node.index()].len()
    }

    /// Number of connections dialled *to* `node`.
    pub fn inbound_count(&self, node: NodeId) -> usize {
        self.peers[node.index()].len() - self.outbound[node.index()].len()
    }

    /// Total degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.peers[node.index()].len()
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.peers.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Iterates all undirected edges as `(initiator, acceptor)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.outbound.iter().enumerate().flat_map(|(i, set)| {
            let from = NodeId::from_index(i as u32);
            set.iter().map(move |&to| (from, to))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn connect_creates_symmetric_edge() {
        let mut links = Links::new(4);
        assert!(links.connect(n(0), n(1)));
        assert!(links.connected(n(0), n(1)));
        assert!(links.connected(n(1), n(0)));
        assert_eq!(links.outbound_count(n(0)), 1);
        assert_eq!(links.outbound_count(n(1)), 0);
        assert_eq!(links.inbound_count(n(1)), 1);
        assert_eq!(links.inbound_count(n(0)), 0);
        assert_eq!(links.edge_count(), 1);
    }

    #[test]
    fn duplicate_and_self_connect_rejected() {
        let mut links = Links::new(3);
        assert!(links.connect(n(0), n(1)));
        assert!(!links.connect(n(0), n(1)), "duplicate");
        assert!(!links.connect(n(1), n(0)), "reverse duplicate");
        assert!(!links.connect(n(2), n(2)), "self loop");
        assert_eq!(links.edge_count(), 1);
    }

    #[test]
    fn disconnect_removes_both_directions() {
        let mut links = Links::new(3);
        links.connect(n(0), n(1));
        assert!(
            links.disconnect(n(1), n(0)),
            "either endpoint may disconnect"
        );
        assert!(!links.connected(n(0), n(1)));
        assert_eq!(links.degree(n(0)), 0);
        assert!(!links.disconnect(n(0), n(1)), "double disconnect is false");
    }

    #[test]
    fn drop_all_clears_node() {
        let mut links = Links::new(5);
        links.connect(n(0), n(1));
        links.connect(n(2), n(0));
        links.connect(n(3), n(4));
        let former = links.drop_all(n(0));
        assert_eq!(former, vec![n(1), n(2)]);
        assert_eq!(links.degree(n(0)), 0);
        assert_eq!(links.degree(n(1)), 0);
        assert_eq!(links.degree(n(2)), 0);
        assert!(links.connected(n(3), n(4)), "unrelated edge survives");
    }

    #[test]
    fn counts_track_direction() {
        let mut links = Links::new(4);
        links.connect(n(0), n(1));
        links.connect(n(0), n(2));
        links.connect(n(3), n(0));
        assert_eq!(links.outbound_count(n(0)), 2);
        assert_eq!(links.inbound_count(n(0)), 1);
        assert_eq!(links.degree(n(0)), 3);
    }

    #[test]
    fn edges_iterates_initiator_first() {
        let mut links = Links::new(3);
        links.connect(n(2), n(0));
        links.connect(n(0), n(1));
        let edges: Vec<_> = links.edges().collect();
        assert_eq!(edges, vec![(n(0), n(1)), (n(2), n(0))]);
    }

    #[test]
    fn peers_iteration_is_ordered() {
        let mut links = Links::new(5);
        links.connect(n(0), n(3));
        links.connect(n(0), n(1));
        links.connect(n(0), n(2));
        let peers: Vec<_> = links.peers(n(0)).iter().copied().collect();
        assert_eq!(peers, vec![n(1), n(2), n(3)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut links = Links::new(2);
        links.connect(n(0), n(5));
    }
}
