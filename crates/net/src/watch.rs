//! The measuring-node instrumentation (paper Fig. 2 and Eq. 5).
//!
//! The experiment methodology: a measuring node `m` creates a transaction,
//! sends it to exactly **one** of its connections, and then records the time
//! at which each of its connections first *announces* the transaction back
//! to it. The deltas `Δt(m,i) = T_i − T_m` are the propagation-delay samples
//! the paper's Fig. 3/Fig. 4 plot. The watch also records each node's first
//! mempool acceptance, which feeds the network-wide validation experiment.

use crate::ids::{NodeId, TxId};
use bcbpt_sim::SimTime;
use std::collections::BTreeMap;

/// Observation record for one watched transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxWatch {
    /// The watched transaction.
    pub tx: TxId,
    /// The measuring node `m`.
    pub origin: NodeId,
    /// When `m` propagated the transaction (`T_m`).
    pub injected_at: SimTime,
    /// First announcement (INV) seen by `m` from each of its peers.
    announcements: BTreeMap<NodeId, SimTime>,
    /// First mempool acceptance per node (network-wide propagation).
    arrivals: BTreeMap<NodeId, SimTime>,
}

impl TxWatch {
    /// Starts watching `tx` injected by `origin` at `injected_at`.
    pub fn new(tx: TxId, origin: NodeId, injected_at: SimTime) -> Self {
        TxWatch {
            tx,
            origin,
            injected_at,
            announcements: BTreeMap::new(),
            arrivals: BTreeMap::new(),
        }
    }

    /// Records that peer `from` announced the watched tx to the measuring
    /// node at `at`. Only the first announcement per peer counts.
    pub fn record_announcement(&mut self, from: NodeId, at: SimTime) {
        self.announcements.entry(from).or_insert(at);
    }

    /// Records that `node` accepted the watched tx into its mempool at `at`.
    /// Only the first acceptance counts.
    pub fn record_arrival(&mut self, node: NodeId, at: SimTime) {
        self.arrivals.entry(node).or_insert(at);
    }

    /// Per-peer announcement deltas `Δt(m,i)` in milliseconds, in peer-id
    /// order (Eq. 5).
    pub fn deltas_ms(&self) -> Vec<f64> {
        self.announcements
            .values()
            .map(|t| t.saturating_since(self.injected_at).as_millis_f64())
            .collect()
    }

    /// Number of peers that have announced so far.
    pub fn announced_count(&self) -> usize {
        self.announcements.len()
    }

    /// The raw per-peer announcement times.
    pub fn announcements(&self) -> &BTreeMap<NodeId, SimTime> {
        &self.announcements
    }

    /// Network-wide first-arrival delays in milliseconds (excluding the
    /// origin), in node-id order — the series the validation experiment
    /// compares against reference measurements.
    pub fn arrival_delays_ms(&self) -> Vec<f64> {
        self.arrivals
            .iter()
            .filter(|(node, _)| **node != self.origin)
            .map(|(_, t)| t.saturating_since(self.injected_at).as_millis_f64())
            .collect()
    }

    /// Number of nodes the transaction has reached (excluding the origin).
    pub fn reached_count(&self) -> usize {
        self.arrivals
            .keys()
            .filter(|node| **node != self.origin)
            .count()
    }

    /// Time (ms) by which the transaction reached `fraction` of
    /// `population` nodes, or `None` if it never did.
    ///
    /// # Panics
    ///
    /// Panics when `fraction` is outside `(0, 1]`.
    pub fn time_to_reach_ms(&self, fraction: f64, population: usize) -> Option<f64> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let needed = ((population as f64) * fraction).ceil() as usize;
        let mut delays = self.arrival_delays_ms();
        if delays.len() < needed {
            return None;
        }
        delays.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        delays.get(needed.saturating_sub(1)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn deltas_follow_eq5() {
        let mut w = TxWatch::new(TxId::from_raw(1), n(0), t(100));
        w.record_announcement(n(1), t(130));
        w.record_announcement(n(2), t(150));
        assert_eq!(w.deltas_ms(), vec![30.0, 50.0]);
        assert_eq!(w.announced_count(), 2);
    }

    #[test]
    fn only_first_announcement_counts() {
        let mut w = TxWatch::new(TxId::from_raw(1), n(0), t(0));
        w.record_announcement(n(1), t(10));
        w.record_announcement(n(1), t(99));
        assert_eq!(w.deltas_ms(), vec![10.0]);
    }

    #[test]
    fn arrivals_exclude_origin() {
        let mut w = TxWatch::new(TxId::from_raw(1), n(0), t(0));
        w.record_arrival(n(0), t(0));
        w.record_arrival(n(1), t(20));
        w.record_arrival(n(2), t(40));
        assert_eq!(w.arrival_delays_ms(), vec![20.0, 40.0]);
        assert_eq!(w.reached_count(), 2);
    }

    #[test]
    fn only_first_arrival_counts() {
        let mut w = TxWatch::new(TxId::from_raw(1), n(0), t(0));
        w.record_arrival(n(1), t(5));
        w.record_arrival(n(1), t(50));
        assert_eq!(w.arrival_delays_ms(), vec![5.0]);
    }

    #[test]
    fn time_to_reach_fraction() {
        let mut w = TxWatch::new(TxId::from_raw(1), n(0), t(0));
        for i in 1..=10u32 {
            w.record_arrival(n(i), t(u64::from(i) * 10));
        }
        // population of 10 others: 50% = 5 nodes, reached at t=50.
        assert_eq!(w.time_to_reach_ms(0.5, 10), Some(50.0));
        assert_eq!(w.time_to_reach_ms(1.0, 10), Some(100.0));
        assert_eq!(w.time_to_reach_ms(1.0, 20), None, "never reached 20 nodes");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_validated() {
        let w = TxWatch::new(TxId::from_raw(1), n(0), t(0));
        let _ = w.time_to_reach_ms(0.0, 10);
    }

    #[test]
    fn announcements_accessor_ordered() {
        let mut w = TxWatch::new(TxId::from_raw(1), n(0), t(0));
        w.record_announcement(n(5), t(10));
        w.record_announcement(n(2), t(20));
        let keys: Vec<_> = w.announcements().keys().copied().collect();
        assert_eq!(keys, vec![n(2), n(5)]);
    }
}
