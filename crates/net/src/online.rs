//! O(1) membership / O(k) sampling set of online nodes.
//!
//! Discovery ticks fire for every node every 100 ms (paper §V.B); sampling
//! candidates must not be O(network size) per tick or full-scale runs crawl.

use crate::ids::NodeId;
use rand::Rng;

/// Swap-remove indexed set of online nodes supporting uniform sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OnlineSet {
    list: Vec<NodeId>,
    pos: Vec<Option<usize>>,
}

impl OnlineSet {
    /// Creates a set over `n` node ids, all initially online.
    pub fn all_online(n: usize) -> Self {
        OnlineSet {
            list: (0..n as u32).map(NodeId::from_index).collect(),
            pos: (0..n).map(Some).collect(),
        }
    }

    /// Creates a set over `n` node ids, all initially offline.
    pub fn all_offline(n: usize) -> Self {
        OnlineSet {
            list: Vec::new(),
            pos: vec![None; n],
        }
    }

    /// Number of online nodes.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// `true` when no node is online.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// `true` when `node` is online. Out-of-range ids are simply "not
    /// online", which lets callers use sentinel ids as a non-excluding
    /// `exclude` argument to [`sample`](Self::sample).
    pub fn contains(&self, node: NodeId) -> bool {
        self.pos.get(node.index()).is_some_and(Option::is_some)
    }

    /// Marks `node` online. Returns `false` if it already was.
    pub fn insert(&mut self, node: NodeId) -> bool {
        if self.pos[node.index()].is_some() {
            return false;
        }
        self.pos[node.index()] = Some(self.list.len());
        self.list.push(node);
        true
    }

    /// Marks `node` offline. Returns `false` if it already was.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let Some(idx) = self.pos[node.index()].take() else {
            return false;
        };
        let last = self.list.pop().expect("pos implies non-empty");
        if last != node {
            self.list[idx] = last;
            self.pos[last.index()] = Some(idx);
        }
        true
    }

    /// Samples up to `k` distinct online nodes uniformly, excluding
    /// `exclude`. O(k) expected.
    pub fn sample<R: Rng + ?Sized>(&self, k: usize, exclude: NodeId, rng: &mut R) -> Vec<NodeId> {
        let available = self
            .list
            .len()
            .saturating_sub(usize::from(self.contains(exclude)));
        let k = k.min(available);
        if k == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(k);
        // Rejection sampling with a budget; falls back to a scan if unlucky
        // (only possible when k is close to the population size).
        let mut attempts = 0usize;
        let budget = 8 * k + 32;
        while out.len() < k && attempts < budget {
            attempts += 1;
            let candidate = self.list[rng.gen_range(0..self.list.len())];
            if candidate != exclude && !out.contains(&candidate) {
                out.push(candidate);
            }
        }
        if out.len() < k {
            for &candidate in &self.list {
                if out.len() >= k {
                    break;
                }
                if candidate != exclude && !out.contains(&candidate) {
                    out.push(candidate);
                }
            }
        }
        out
    }

    /// All online nodes in insertion order (order is an implementation
    /// detail; do not rely on it across mutations).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.list.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = OnlineSet::all_offline(5);
        assert!(s.is_empty());
        assert!(s.insert(n(2)));
        assert!(!s.insert(n(2)));
        assert!(s.contains(n(2)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(n(2)));
        assert!(!s.remove(n(2)));
        assert!(!s.contains(n(2)));
    }

    #[test]
    fn all_online_starts_full() {
        let s = OnlineSet::all_online(4);
        assert_eq!(s.len(), 4);
        for i in 0..4 {
            assert!(s.contains(n(i)));
        }
    }

    #[test]
    fn swap_remove_keeps_indices_consistent() {
        let mut s = OnlineSet::all_online(10);
        s.remove(n(0));
        s.remove(n(5));
        s.remove(n(9));
        for i in [1, 2, 3, 4, 6, 7, 8] {
            assert!(s.contains(n(i)), "node {i} should remain");
            assert!(s.remove(n(i)));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn sample_excludes_and_dedups() {
        let s = OnlineSet::all_online(10);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..100 {
            let sample = s.sample(5, n(3), &mut rng);
            assert_eq!(sample.len(), 5);
            assert!(!sample.contains(&n(3)));
            let mut dedup = sample.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 5);
        }
    }

    #[test]
    fn sample_more_than_population_returns_all_others() {
        let s = OnlineSet::all_online(4);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let sample = s.sample(10, n(0), &mut rng);
        assert_eq!(sample.len(), 3);
        assert!(!sample.contains(&n(0)));
    }

    #[test]
    fn sample_from_empty_is_empty() {
        let s = OnlineSet::all_offline(4);
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert!(s.sample(3, n(0), &mut rng).is_empty());
    }

    #[test]
    fn sample_is_roughly_uniform() {
        let s = OnlineSet::all_online(20);
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let mut counts = [0u32; 20];
        let trials = 20_000;
        for _ in 0..trials {
            for node in s.sample(1, n(19), &mut rng) {
                counts[node.index()] += 1;
            }
        }
        assert_eq!(counts[19], 0);
        let expected = trials as f64 / 19.0;
        for (i, &c) in counts.iter().enumerate().take(19) {
            assert!(
                (f64::from(c) - expected).abs() < expected * 0.2,
                "node {i}: {c} vs expected {expected}"
            );
        }
    }

    #[test]
    fn iter_yields_online_nodes() {
        let mut s = OnlineSet::all_online(3);
        s.remove(n(1));
        let mut ids: Vec<_> = s.iter().collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![n(0), n(2)]);
    }
}
