//! Message-traffic accounting.
//!
//! The paper defers evaluating BCBPT's ping-measurement overhead to future
//! work (§IV.A); this reproduction implements that experiment, so the fabric
//! counts every message and byte by kind.

use crate::msg::{Message, MessageKind};
use core::fmt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-kind message and byte counters.
///
/// # Examples
///
/// ```
/// use bcbpt_net::{Message, MessageKind, MessageStats};
///
/// let mut stats = MessageStats::new();
/// stats.record(&Message::Ping { nonce: 1 });
/// stats.record(&Message::Pong { nonce: 1 });
/// assert_eq!(stats.count(MessageKind::Ping), 1);
/// assert_eq!(stats.total_messages(), 2);
/// ```
///
/// Serde is hand-written (not derived) so the two redundancy maps are
/// emitted only when non-empty: outcomes from runs that never record
/// redundancy stay byte-identical to the pre-relay-subsystem format.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MessageStats {
    counts: BTreeMap<MessageKind, u64>,
    bytes: BTreeMap<MessageKind, u64>,
    /// Messages an in-loop adversary withheld (never put on the wire);
    /// tracked apart from the sent counters above.
    withheld: BTreeMap<MessageKind, u64>,
    /// Deliveries whose payload the receiver already had (duplicate invs,
    /// already-known txs inside a full block body, linearly-dependent coded
    /// pieces). These messages *were* sent — they are a subset of `counts`.
    redundant_counts: BTreeMap<MessageKind, u64>,
    /// Wasted wire bytes corresponding to `redundant_counts`. A partially
    /// wasted message (e.g. a full block body whose txs were mostly known)
    /// contributes only its wasted fraction here.
    redundant_bytes: BTreeMap<MessageKind, u64>,
}

/// Bandwidth-waste summary distilled from a [`MessageStats`]: how many
/// bytes crossed the wire and what fraction of them carried nothing new.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthReport {
    /// Total bytes put on the wire.
    pub bytes_on_wire: u64,
    /// Bytes the receivers already had (redundant deliveries).
    pub redundant_bytes: u64,
    /// `redundant_bytes / bytes_on_wire` (0 when nothing was sent).
    pub waste_ratio: f64,
}

impl fmt::Display for BandwidthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bytes on wire, {} redundant (waste {:.3})",
            self.bytes_on_wire, self.redundant_bytes, self.waste_ratio
        )
    }
}

impl Serialize for MessageStats {
    fn to_value(&self) -> serde::Value {
        let mut entries = vec![
            ("counts".to_string(), self.counts.to_value()),
            ("bytes".to_string(), self.bytes.to_value()),
            ("withheld".to_string(), self.withheld.to_value()),
        ];
        if !self.redundant_counts.is_empty() {
            entries.push((
                "redundant_counts".to_string(),
                self.redundant_counts.to_value(),
            ));
        }
        if !self.redundant_bytes.is_empty() {
            entries.push((
                "redundant_bytes".to_string(),
                self.redundant_bytes.to_value(),
            ));
        }
        serde::Value::Map(entries)
    }
}

impl Deserialize for MessageStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for MessageStats"))?;
        let optional_map = |key: &str| -> Result<BTreeMap<MessageKind, u64>, serde::Error> {
            match serde::map_get(m, key) {
                serde::Value::Null => Ok(BTreeMap::new()),
                other => Deserialize::from_value(other),
            }
        };
        Ok(MessageStats {
            counts: Deserialize::from_value(serde::map_get(m, "counts"))?,
            bytes: Deserialize::from_value(serde::map_get(m, "bytes"))?,
            withheld: Deserialize::from_value(serde::map_get(m, "withheld"))?,
            redundant_counts: optional_map("redundant_counts")?,
            redundant_bytes: optional_map("redundant_bytes")?,
        })
    }
}

impl MessageStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message.
    pub fn record(&mut self, msg: &Message) {
        let kind = msg.kind();
        *self.counts.entry(kind).or_insert(0) += 1;
        *self.bytes.entry(kind).or_insert(0) += msg.wire_size_bytes() as u64;
    }

    /// Records one message an adversary withheld instead of sending.
    pub fn record_withheld(&mut self, msg: &Message) {
        *self.withheld.entry(msg.kind()).or_insert(0) += 1;
    }

    /// Records one redundant delivery: a message (already counted by
    /// [`MessageStats::record`]) of which `wasted_bytes` carried data the
    /// receiver already had. `wasted_bytes` may be less than the message's
    /// wire size when only part of the payload was redundant.
    pub fn record_redundant(&mut self, kind: MessageKind, wasted_bytes: u64) {
        *self.redundant_counts.entry(kind).or_insert(0) += 1;
        *self.redundant_bytes.entry(kind).or_insert(0) += wasted_bytes;
    }

    /// Number of redundant deliveries of `kind`.
    pub fn redundant_count(&self, kind: MessageKind) -> u64 {
        self.redundant_counts.get(&kind).copied().unwrap_or(0)
    }

    /// Wasted bytes attributed to `kind`.
    pub fn redundant_bytes(&self, kind: MessageKind) -> u64 {
        self.redundant_bytes.get(&kind).copied().unwrap_or(0)
    }

    /// Total redundant deliveries across kinds.
    pub fn redundant_messages(&self) -> u64 {
        self.redundant_counts.values().sum()
    }

    /// Total wasted bytes across kinds.
    pub fn total_redundant_bytes(&self) -> u64 {
        self.redundant_bytes.values().sum()
    }

    /// Distills the counters into a [`BandwidthReport`].
    pub fn bandwidth_report(&self) -> BandwidthReport {
        let bytes_on_wire = self.total_bytes();
        let redundant_bytes = self.total_redundant_bytes();
        let waste_ratio = if bytes_on_wire == 0 {
            0.0
        } else {
            redundant_bytes as f64 / bytes_on_wire as f64
        };
        BandwidthReport {
            bytes_on_wire,
            redundant_bytes,
            waste_ratio,
        }
    }

    /// Number of messages of `kind` an adversary withheld.
    pub fn withheld_count(&self, kind: MessageKind) -> u64 {
        self.withheld.get(&kind).copied().unwrap_or(0)
    }

    /// Total messages withheld across kinds.
    pub fn withheld_messages(&self) -> u64 {
        self.withheld.values().sum()
    }

    /// Number of messages of `kind` recorded.
    pub fn count(&self, kind: MessageKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Bytes of `kind` recorded.
    pub fn bytes(&self, kind: MessageKind) -> u64 {
        self.bytes.get(&kind).copied().unwrap_or(0)
    }

    /// Total messages across kinds.
    pub fn total_messages(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Total bytes across kinds.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.values().sum()
    }

    /// Messages spent on latency probing (PING + PONG) — the BCBPT overhead
    /// the paper flags.
    pub fn probe_messages(&self) -> u64 {
        self.count(MessageKind::Ping) + self.count(MessageKind::Pong)
    }

    /// Messages spent on cluster control (JOIN + CLUSTERLIST).
    pub fn cluster_control_messages(&self) -> u64 {
        self.count(MessageKind::Join) + self.count(MessageKind::ClusterList)
    }

    /// Messages spent relaying transactions (INV + GETDATA + TX).
    pub fn relay_messages(&self) -> u64 {
        self.count(MessageKind::Inv)
            + self.count(MessageKind::GetData)
            + self.count(MessageKind::Tx)
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &MessageStats) {
        for (k, v) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.bytes {
            *self.bytes.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.withheld {
            *self.withheld.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.redundant_counts {
            *self.redundant_counts.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.redundant_bytes {
            *self.redundant_bytes.entry(*k).or_insert(0) += v;
        }
    }

    /// Difference `self - baseline`, saturating at zero — used to isolate
    /// the traffic of one phase.
    #[must_use]
    pub fn since(&self, baseline: &MessageStats) -> MessageStats {
        let mut out = MessageStats::new();
        for kind in MessageKind::ALL {
            let c = self.count(kind).saturating_sub(baseline.count(kind));
            let b = self.bytes(kind).saturating_sub(baseline.bytes(kind));
            let w = self
                .withheld_count(kind)
                .saturating_sub(baseline.withheld_count(kind));
            if c > 0 {
                out.counts.insert(kind, c);
            }
            if b > 0 {
                out.bytes.insert(kind, b);
            }
            if w > 0 {
                out.withheld.insert(kind, w);
            }
            let rc = self
                .redundant_count(kind)
                .saturating_sub(baseline.redundant_count(kind));
            let rb = self
                .redundant_bytes(kind)
                .saturating_sub(baseline.redundant_bytes(kind));
            if rc > 0 {
                out.redundant_counts.insert(kind, rc);
            }
            if rb > 0 {
                out.redundant_bytes.insert(kind, rb);
            }
        }
        out
    }
}

impl fmt::Display for MessageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} msgs / {} bytes",
            self.total_messages(),
            self.total_bytes()
        )?;
        for kind in MessageKind::ALL {
            let c = self.count(kind);
            if c > 0 {
                write!(f, " {kind}={c}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TxId;
    use crate::tx::Transaction;

    #[test]
    fn empty_stats_are_zero() {
        let s = MessageStats::new();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.count(MessageKind::Inv), 0);
        assert_eq!(s.bytes(MessageKind::Tx), 0);
    }

    #[test]
    fn record_accumulates_counts_and_bytes() {
        let mut s = MessageStats::new();
        let inv = Message::Inv {
            txids: vec![TxId::from_raw(1)],
        };
        s.record(&inv);
        s.record(&inv);
        assert_eq!(s.count(MessageKind::Inv), 2);
        assert_eq!(s.bytes(MessageKind::Inv), 2 * inv.wire_size_bytes() as u64);
    }

    #[test]
    fn category_counters() {
        let mut s = MessageStats::new();
        s.record(&Message::Ping { nonce: 0 });
        s.record(&Message::Pong { nonce: 0 });
        s.record(&Message::Join);
        s.record(&Message::ClusterList { members: vec![] });
        s.record(&Message::Inv { txids: vec![] });
        s.record(&Message::GetData { txids: vec![] });
        s.record(&Message::TxData {
            tx: Transaction::new(TxId::from_raw(1), 100),
        });
        assert_eq!(s.probe_messages(), 2);
        assert_eq!(s.cluster_control_messages(), 2);
        assert_eq!(s.relay_messages(), 3);
        assert_eq!(s.total_messages(), 7);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = MessageStats::new();
        let mut b = MessageStats::new();
        a.record(&Message::Version);
        b.record(&Message::Version);
        b.record(&Message::Verack);
        a.merge(&b);
        assert_eq!(a.count(MessageKind::Version), 2);
        assert_eq!(a.count(MessageKind::Verack), 1);
    }

    #[test]
    fn since_isolates_a_phase() {
        let mut s = MessageStats::new();
        s.record(&Message::Ping { nonce: 0 });
        let baseline = s.clone();
        s.record(&Message::Ping { nonce: 1 });
        s.record(&Message::Join);
        let phase = s.since(&baseline);
        assert_eq!(phase.count(MessageKind::Ping), 1);
        assert_eq!(phase.count(MessageKind::Join), 1);
        assert_eq!(phase.total_messages(), 2);
    }

    #[test]
    fn withheld_counters_track_merge_and_since() {
        let mut s = MessageStats::new();
        let inv = Message::Inv {
            txids: vec![TxId::from_raw(1)],
        };
        s.record_withheld(&inv);
        assert_eq!(s.withheld_count(MessageKind::Inv), 1);
        assert_eq!(s.withheld_messages(), 1);
        assert_eq!(s.count(MessageKind::Inv), 0, "withheld is not sent");
        let baseline = s.clone();
        s.record_withheld(&inv);
        s.record_withheld(&Message::TxData {
            tx: Transaction::new(TxId::from_raw(2), 100),
        });
        let phase = s.since(&baseline);
        assert_eq!(phase.withheld_messages(), 2);
        let mut merged = MessageStats::new();
        merged.merge(&s);
        merged.merge(&phase);
        assert_eq!(merged.withheld_messages(), 5);
    }

    #[test]
    fn redundant_counters_track_merge_and_since() {
        let mut s = MessageStats::new();
        let inv = Message::InvOne {
            txid: TxId::from_raw(1),
        };
        s.record(&inv);
        s.record(&inv);
        s.record_redundant(MessageKind::Inv, inv.wire_size_bytes() as u64);
        assert_eq!(s.redundant_count(MessageKind::Inv), 1);
        assert_eq!(s.redundant_messages(), 1);
        assert_eq!(s.total_redundant_bytes(), inv.wire_size_bytes() as u64);
        let baseline = s.clone();
        s.record_redundant(MessageKind::Inv, inv.wire_size_bytes() as u64);
        s.record_redundant(MessageKind::Block, 500);
        let phase = s.since(&baseline);
        assert_eq!(phase.redundant_messages(), 2);
        assert_eq!(
            phase.total_redundant_bytes(),
            inv.wire_size_bytes() as u64 + 500
        );
        let mut merged = MessageStats::new();
        merged.merge(&baseline);
        merged.merge(&phase);
        assert_eq!(merged, s, "merge(baseline, since) reconstructs the whole");
    }

    #[test]
    fn bandwidth_report_ratios() {
        let mut s = MessageStats::new();
        assert_eq!(s.bandwidth_report().waste_ratio, 0.0, "empty stats");
        s.record(&Message::TxData {
            tx: Transaction::new(TxId::from_raw(1), 976),
        });
        s.record_redundant(MessageKind::Tx, 250);
        let report = s.bandwidth_report();
        assert_eq!(report.bytes_on_wire, 1000);
        assert_eq!(report.redundant_bytes, 250);
        assert!((report.waste_ratio - 0.25).abs() < 1e-12);
    }

    #[test]
    fn serde_omits_empty_redundancy_maps() {
        let mut s = MessageStats::new();
        s.record(&Message::Version);
        let json = serde_json::to_string(&s).expect("serializes");
        assert!(
            !json.contains("redundant"),
            "legacy stats must not mention redundancy: {json}"
        );
        let back: MessageStats = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, s);

        s.record_redundant(MessageKind::Version, 24);
        let json = serde_json::to_string(&s).expect("serializes");
        assert!(json.contains("redundant_counts"));
        assert!(json.contains("redundant_bytes"));
        let back: MessageStats = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn display_lists_active_kinds() {
        let mut s = MessageStats::new();
        s.record(&Message::GetAddr);
        let text = s.to_string();
        assert!(text.contains("getaddr=1"));
        assert!(text.contains("1 msgs"));
    }
}
