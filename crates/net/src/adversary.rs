//! In-loop adversarial behaviour: the fabric's attack extension point.
//!
//! The structural attack analyses (eclipse exposure, partition cuts) freeze
//! the topology and inspect it; an [`Adversary`] instead *acts* inside the
//! event loop. The fabric consults the installed adversary at two points:
//!
//! * **the send path** — every message a node puts on the wire passes
//!   through [`Adversary::on_send`], which can let it through, hold it back
//!   by an extra sender-side delay, or withhold (blackhole) it entirely;
//! * **the RTT measurement path** — every averaged PING/PONG measurement a
//!   policy takes through [`NetView::measure_rtt_ms`] passes through
//!   [`Adversary::rewrite_rtt_ms`], which can forge the value an attacker
//!   endpoint reports (the proximity-forgery attack against ping-time
//!   clustering).
//!
//! Determinism is part of the contract: strategies draw randomness only
//! from the dedicated `"adversary"` stream handed to `on_send`, and only
//! when an attacker-controlled node is involved. An installed adversary
//! that controls **zero** nodes therefore leaves every byte of the
//! simulation unchanged — the property the campaign-level determinism tests
//! pin down.
//!
//! Concrete strategies (ping spoofing, relay delaying, withholding) live in
//! the `bcbpt-adversary` crate; this module only defines the hook the
//! [`Network`](crate::Network) drives.
//!
//! [`NetView::measure_rtt_ms`]: crate::NetView::measure_rtt_ms

use crate::ids::NodeId;
use crate::msg::Message;
use rand_chacha::ChaCha12Rng;

/// The adversary's decision about one outbound message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TapVerdict {
    /// Put the message on the wire normally.
    Deliver,
    /// Put the message on the wire after an extra sender-side delay (ms).
    Delay(f64),
    /// Never send it; the fabric accounts it as withheld traffic.
    Withhold,
}

/// A behavioural adversary driven by the sim event loop.
///
/// Implementations mark a subset of nodes as attacker-controlled
/// ([`is_attacker`](Self::is_attacker)) and manipulate protocol behaviour
/// on their behalf. Like [`NeighborPolicy`](crate::NeighborPolicy),
/// adversaries are `Send + Sync` and cloneable so the parallel campaign
/// runner can snapshot a warmed-up network (adversary state included) per
/// measuring run.
pub trait Adversary: core::fmt::Debug + Send + Sync {
    /// Clones the adversary (with its full state) into a fresh box.
    fn clone_box(&self) -> Box<dyn Adversary>;

    /// Whether `node` is attacker-controlled.
    fn is_attacker(&self, node: NodeId) -> bool;

    /// Verdict for a message `from` is about to put on the wire to `to`.
    ///
    /// `rng` is the fabric's dedicated adversary stream; draw from it only
    /// when the decision actually needs randomness (i.e. an attacker is
    /// acting), so that an idle adversary perturbs nothing.
    fn on_send(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: &Message,
        rng: &mut ChaCha12Rng,
    ) -> TapVerdict;

    /// Rewrites one averaged RTT measurement `observer` took towards
    /// `target` (ms). Honest pairs must come back unchanged.
    fn rewrite_rtt_ms(&mut self, observer: NodeId, target: NodeId, measured_ms: f64) -> f64;
}

impl Clone for Box<dyn Adversary> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial adversary that withholds everything one node sends.
    #[derive(Debug, Clone)]
    struct Mute(NodeId);

    impl Adversary for Mute {
        fn clone_box(&self) -> Box<dyn Adversary> {
            Box::new(self.clone())
        }
        fn is_attacker(&self, node: NodeId) -> bool {
            node == self.0
        }
        fn on_send(
            &mut self,
            from: NodeId,
            _to: NodeId,
            _msg: &Message,
            _rng: &mut ChaCha12Rng,
        ) -> TapVerdict {
            if from == self.0 {
                TapVerdict::Withhold
            } else {
                TapVerdict::Deliver
            }
        }
        fn rewrite_rtt_ms(&mut self, _o: NodeId, _t: NodeId, measured_ms: f64) -> f64 {
            measured_ms
        }
    }

    #[test]
    fn boxed_adversary_clones() {
        let adv: Box<dyn Adversary> = Box::new(Mute(NodeId::from_index(3)));
        let copy = adv.clone();
        assert!(copy.is_attacker(NodeId::from_index(3)));
        assert!(!copy.is_attacker(NodeId::from_index(4)));
    }

    #[test]
    fn verdicts_compare() {
        assert_eq!(TapVerdict::Deliver, TapVerdict::Deliver);
        assert_ne!(TapVerdict::Deliver, TapVerdict::Withhold);
        assert_eq!(TapVerdict::Delay(5.0), TapVerdict::Delay(5.0));
    }
}
