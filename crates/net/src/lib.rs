//! # bcbpt-net — simulated Bitcoin P2P substrate
//!
//! The network layer of the BCBPT reproduction (ICDCS 2017, *Proximity
//! Awareness Approach to Enhance Propagation Delay on the Bitcoin
//! Peer-to-Peer Network*): a from-scratch rebuild of the event-based
//! Bitcoin simulator the paper evaluates on (its ref \[5\]).
//!
//! * [`Message`] — the wire subset that drives propagation (Fig. 1):
//!   INV/GETDATA/TX relay, PING/PONG probing, ADDR discovery, JOIN/
//!   CLUSTERLIST cluster control.
//! * [`Network`] — the fabric: geography-derived latencies, the relay state
//!   machine with per-hop verification, discovery ticks, churn, and the
//!   measuring-node instrumentation ([`TxWatch`], Fig. 2 / Eq. 5).
//! * [`NeighborPolicy`]/[`NetView`] — the extension point the paper's
//!   protocols plug into; [`RandomPolicy`] (vanilla Bitcoin) ships here,
//!   LBC and BCBPT live in `bcbpt-cluster`.
//! * [`MessageStats`] — per-kind traffic accounting feeding the overhead
//!   experiment.
//! * [`Adversary`] — the in-loop attack hook: a tap on the send path
//!   (delay/withhold) plus RTT forgery on the measurement path. Concrete
//!   strategies live in `bcbpt-adversary`.
//!
//! # Examples
//!
//! Measure how fast one transaction floods a small random-topology network:
//!
//! ```
//! use bcbpt_net::{NetConfig, Network, RandomPolicy};
//!
//! let mut config = NetConfig::test_scale();
//! config.num_nodes = 25;
//! let mut net = Network::build(config, Box::new(RandomPolicy::new()), 7)?;
//! let origin = net.pick_online_node().expect("nodes online");
//! net.inject_watched_tx(origin, None)?;
//! net.run_for_ms(30_000.0);
//! let watch = net.watch().expect("watch active");
//! assert_eq!(watch.reached_count(), 24);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod block;
mod config;
mod dns;
mod ids;
mod links;
mod msg;
mod network;
mod node;
mod online;
mod policy;
mod relay;
mod routes;
mod stats;
mod tx;
mod watch;

pub use adversary::{Adversary, TapVerdict};
pub use block::{Block, BlockId, BlockLedger, ChainState};
pub use config::NetConfig;
pub use dns::{geo_ranked_candidates, random_candidates};
pub use ids::{NodeId, TxId};
pub use links::Links;
pub use msg::{Message, MessageKind};
pub use network::{InjectError, NetEvent, Network, RandomPolicy};
pub use node::{NodeMeta, ProtoState};
pub use online::OnlineSet;
pub use policy::{NeighborPolicy, NetView, TopologyActions};
pub use relay::{
    FullRelay, RelayFactory, RelayNet, RelayRegistry, RelaySpec, RelayStrategy,
    DEFAULT_KNOWN_TX_FRACTION,
};
pub use routes::RouteTable;
pub use stats::{BandwidthReport, MessageStats};
pub use tx::{Transaction, TxFactory, VerifyCost};
pub use watch::TxWatch;
