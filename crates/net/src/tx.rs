//! Transactions and the verification-cost model.

use crate::ids::TxId;
use serde::{Deserialize, Serialize};

/// A simulated Bitcoin transaction.
///
/// Only the attributes that influence propagation matter to the model: the
/// identity (for INV dedup) and the wire size (transmission + verification
/// cost). Scripts, signatures and UTXOs are out of scope — the paper's
/// simulator treats verification as a per-transaction time cost too.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique id (stands in for the transaction hash).
    pub id: TxId,
    /// Serialized size in bytes.
    pub size_bytes: u32,
}

impl Transaction {
    /// Creates a transaction.
    pub fn new(id: TxId, size_bytes: u32) -> Self {
        Transaction { id, size_bytes }
    }
}

/// Deterministic transaction factory.
///
/// # Examples
///
/// ```
/// use bcbpt_net::TxFactory;
///
/// let mut factory = TxFactory::new(500);
/// let a = factory.create();
/// let b = factory.create();
/// assert_ne!(a.id, b.id);
/// assert_eq!(a.size_bytes, 500);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxFactory {
    next: u64,
    size_bytes: u32,
}

impl TxFactory {
    /// Creates a factory emitting transactions of `size_bytes` each.
    pub fn new(size_bytes: u32) -> Self {
        TxFactory {
            next: 1,
            size_bytes,
        }
    }

    /// Mints the next transaction.
    pub fn create(&mut self) -> Transaction {
        let id = TxId::from_raw(self.next);
        self.next += 1;
        Transaction::new(id, self.size_bytes)
    }

    /// Mints a transaction with an explicit size.
    pub fn create_with_size(&mut self, size_bytes: u32) -> Transaction {
        let id = TxId::from_raw(self.next);
        self.next += 1;
        Transaction::new(id, size_bytes)
    }

    /// Number of transactions minted so far.
    pub fn minted(&self) -> u64 {
        self.next - 1
    }
}

/// Verification-cost model: a base cost plus a per-kilobyte cost.
///
/// Decker & Wattenhofer attribute much of Bitcoin's propagation delay to
/// per-hop verification; the paper's simulator inherits that structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerifyCost {
    /// Fixed per-transaction verification time (ms).
    pub base_ms: f64,
    /// Additional time per kilobyte of transaction (ms).
    pub per_kb_ms: f64,
}

impl VerifyCost {
    /// Defaults in line with published measurements: ~2 ms base + 1 ms/KB.
    pub fn realistic() -> Self {
        VerifyCost {
            base_ms: 2.0,
            per_kb_ms: 1.0,
        }
    }

    /// Zero-cost verification, for isolating pure network delay in tests.
    pub fn free() -> Self {
        VerifyCost {
            base_ms: 0.0,
            per_kb_ms: 0.0,
        }
    }

    /// Verification time for a transaction, in milliseconds.
    pub fn verify_ms(&self, tx: &Transaction) -> f64 {
        self.base_ms + self.per_kb_ms * f64::from(tx.size_bytes) / 1024.0
    }
}

impl Default for VerifyCost {
    fn default() -> Self {
        Self::realistic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_ids_are_unique_and_sequential() {
        let mut f = TxFactory::new(250);
        let ids: Vec<u64> = (0..100).map(|_| f.create().id.as_u64()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert_eq!(f.minted(), 100);
    }

    #[test]
    fn explicit_size_override() {
        let mut f = TxFactory::new(250);
        let tx = f.create_with_size(1000);
        assert_eq!(tx.size_bytes, 1000);
        assert_eq!(f.create().size_bytes, 250);
    }

    #[test]
    fn verify_cost_scales_with_size() {
        let cost = VerifyCost::realistic();
        let small = Transaction::new(TxId::from_raw(1), 256);
        let big = Transaction::new(TxId::from_raw(2), 2048);
        assert!(cost.verify_ms(&big) > cost.verify_ms(&small));
        assert_eq!(cost.verify_ms(&small), 2.0 + 256.0 / 1024.0);
    }

    #[test]
    fn free_verification_is_zero() {
        let tx = Transaction::new(TxId::from_raw(1), 4096);
        assert_eq!(VerifyCost::free().verify_ms(&tx), 0.0);
    }

    #[test]
    fn default_is_realistic() {
        assert_eq!(VerifyCost::default(), VerifyCost::realistic());
    }
}
