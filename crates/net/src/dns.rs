//! DNS seed helpers.
//!
//! On first join, a Bitcoin node learns candidate peers from DNS seeds. The
//! paper refines this (§IV.B): seeds should *rank* candidates by geographic
//! proximity, "as the geographic distance in the internet is many times a
//! good indication of topologic distance", and the joining node then orders
//! them by measured ping distance. These helpers implement both the vanilla
//! (random) and proximity-ranked seed behaviour on top of a [`NetView`].

use crate::ids::NodeId;
use crate::msg::Message;
use crate::policy::NetView;

/// Random seed candidates — vanilla Bitcoin DNS behaviour. Accounts one
/// GETADDR/ADDR exchange.
pub fn random_candidates(view: &mut NetView<'_>, node: NodeId, k: usize) -> Vec<NodeId> {
    let candidates = view.sample_online(k, node);
    account_exchange(view, &candidates);
    candidates
}

/// Geographically ranked seed candidates (paper §IV.B): sample a wider pool
/// and return the `k` geographically closest, nearest first. Accounts one
/// GETADDR/ADDR exchange.
pub fn geo_ranked_candidates(view: &mut NetView<'_>, node: NodeId, k: usize) -> Vec<NodeId> {
    // Seeds see a larger slice of the address space than they return.
    let pool = view.sample_online(k.saturating_mul(4).max(16), node);
    let mut ranked: Vec<(f64, NodeId)> = pool
        .into_iter()
        .map(|c| (view.geo_distance_km(node, c), c))
        .collect();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
    let out: Vec<NodeId> = ranked.into_iter().map(|(_, c)| c).take(k).collect();
    account_exchange(view, &out);
    out
}

fn account_exchange(view: &mut NetView<'_>, returned: &[NodeId]) {
    view.count_control(&Message::GetAddr);
    view.count_control(&Message::Addr {
        nodes: returned.to_vec(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::links::Links;
    use crate::msg::MessageKind;
    use crate::node::NodeMeta;
    use crate::online::OnlineSet;
    use crate::stats::MessageStats;
    use bcbpt_geo::{AccessProfile, GeoPoint, LatencyConfig, LinkLatencyModel, Placement};
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn line_meta(n: usize) -> Vec<NodeMeta> {
        // Nodes along a meridian: node i sits i degrees north.
        (0..n)
            .map(|i| NodeMeta {
                placement: Placement {
                    point: GeoPoint::new(i as f64, 0.0).unwrap(),
                    region_index: 0,
                    country: "XX".to_string(),
                },
                access: AccessProfile {
                    access_delay_ms: 0.0,
                },
                verify_factor: 1.0,
                online: true,
            })
            .collect()
    }

    fn with_view<F: FnOnce(&mut NetView<'_>)>(n: usize, f: F) {
        let meta = line_meta(n);
        let links = Links::new(n);
        let online = OnlineSet::all_online(n);
        let latency = LinkLatencyModel::new(LatencyConfig::noiseless());
        let routes = crate::routes::RouteTable::new(0, 0.0);
        let mut stats = MessageStats::new();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let config = NetConfig::test_scale();
        let mut view = NetView {
            meta: &meta,
            links: &links,
            online: &online,
            latency: &latency,
            routes: &routes,
            stats: &mut stats,
            rng: &mut rng,
            config: &config,
            adversary: None,
        };
        f(&mut view);
    }

    #[test]
    fn random_candidates_exclude_self() {
        with_view(30, |view| {
            let node = NodeId::from_index(0);
            let got = random_candidates(view, node, 8);
            assert_eq!(got.len(), 8);
            assert!(!got.contains(&node));
            assert_eq!(view.stats.count(MessageKind::GetAddr), 1);
            assert_eq!(view.stats.count(MessageKind::Addr), 1);
        });
    }

    #[test]
    fn geo_ranked_returns_nearest_first() {
        with_view(60, |view| {
            let node = NodeId::from_index(0);
            let got = geo_ranked_candidates(view, node, 8);
            assert_eq!(got.len(), 8);
            // Distances must be non-decreasing.
            let d: Vec<f64> = got.iter().map(|&c| view.geo_distance_km(node, c)).collect();
            for w in d.windows(2) {
                assert!(w[0] <= w[1] + 1e-9, "not sorted: {d:?}");
            }
            // The pool is 4k=32 of 59 others; nearest returned should be
            // reasonably close to node 0 on the line.
            assert!(d[0] < 2_000.0, "nearest at {} km", d[0]);
        });
    }

    #[test]
    fn geo_ranked_counts_exchange() {
        with_view(30, |view| {
            let node = NodeId::from_index(3);
            let _ = geo_ranked_candidates(view, node, 5);
            assert_eq!(view.stats.count(MessageKind::GetAddr), 1);
            assert_eq!(view.stats.count(MessageKind::Addr), 1);
        });
    }

    #[test]
    fn small_networks_return_fewer() {
        with_view(4, |view| {
            let node = NodeId::from_index(0);
            let got = geo_ranked_candidates(view, node, 8);
            assert_eq!(got.len(), 3);
        });
    }
}
