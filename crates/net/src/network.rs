//! The network fabric: nodes, links, relay protocol and churn wired onto
//! the discrete-event engine.
//!
//! This is the reproduction of the event-based Bitcoin simulator the paper
//! builds on (its ref [5]): geography-derived link latencies, the
//! INV/GETDATA/TX relay exchange with per-hop verification (Fig. 1), join/
//! leave churn from session-length models, periodic discovery ticks
//! (§V.B: every 100 ms), and the measuring-node instrumentation (Fig. 2).

use crate::adversary::{Adversary, TapVerdict};
use crate::block::{Block, BlockId, BlockLedger, ChainState};
use crate::config::NetConfig;
use crate::ids::{NodeId, TxId};
use crate::links::Links;
use crate::msg::{Message, MessageKind, INV_ENTRY_BYTES};
use crate::node::{NodeMeta, ProtoState};
use crate::online::OnlineSet;
use crate::policy::{NeighborPolicy, NetView, TopologyActions};
use crate::relay::{FullRelay, RelayNet, RelayStrategy};
use crate::routes::RouteTable;
use crate::stats::MessageStats;
use crate::tx::{Transaction, TxFactory};
use crate::watch::TxWatch;
use bcbpt_geo::{LinkLatencyModel, NodePlacer};
use bcbpt_sim::{Engine, RngHub, SimDuration, SimTime};
use core::fmt;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeMap;

/// Events flowing through the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// A message arriving at `to`.
    Deliver {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Payload.
        msg: Message,
    },
    /// A node's periodic discovery tick.
    DiscoveryTick {
        /// The discovering node.
        node: NodeId,
    },
    /// Verification of a received transaction finished.
    ///
    /// Carries only the transaction id: payload bodies are interned in the
    /// network's transaction registry, so events stay two words instead of
    /// cloning the payload through the queue.
    VerifyDone {
        /// The verifying node.
        node: NodeId,
        /// Id of the verified transaction.
        tx: TxId,
        /// Who delivered the payload (excluded from the re-announcement).
        relayer: NodeId,
    },
    /// An outstanding GETDATA went unanswered.
    GetDataTimeout {
        /// The requesting node.
        node: NodeId,
        /// The requested transaction.
        tx: TxId,
    },
    /// A node's session ended.
    ChurnLeave {
        /// The departing node.
        node: NodeId,
    },
    /// A departed node rejoins.
    ChurnRejoin {
        /// The rejoining node.
        node: NodeId,
    },
    /// The global proof-of-work process finds a block.
    MineBlock,
    /// Verification of a received block finished.
    ///
    /// Carries only the block id; the body is interned in the global
    /// ledger.
    BlockVerifyDone {
        /// The verifying node.
        node: NodeId,
        /// Id of the verified block.
        block: BlockId,
        /// Who delivered the payload.
        relayer: NodeId,
    },
    /// An outstanding GETBLOCKS went unanswered.
    GetBlockTimeout {
        /// The requesting node.
        node: NodeId,
        /// The requested block.
        block: BlockId,
    },
}

/// Error injecting a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectError {
    /// The origin node is offline.
    OriginOffline(NodeId),
    /// The origin node has no connections to relay through.
    NoPeers(NodeId),
    /// The requested first hop is not a peer of the origin.
    NotAPeer {
        /// The origin node.
        origin: NodeId,
        /// The invalid first hop.
        first_hop: NodeId,
    },
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::OriginOffline(n) => write!(f, "origin {n} is offline"),
            InjectError::NoPeers(n) => write!(f, "origin {n} has no peers"),
            InjectError::NotAPeer { origin, first_hop } => {
                write!(f, "{first_hop} is not a peer of {origin}")
            }
        }
    }
}

impl std::error::Error for InjectError {}

/// The simulated Bitcoin network.
///
/// # Examples
///
/// ```
/// use bcbpt_net::{Network, NetConfig, RandomPolicy};
///
/// let mut config = NetConfig::test_scale();
/// config.num_nodes = 30;
/// let mut net = Network::build(config, Box::new(RandomPolicy::new()), 42)?;
/// net.warmup_ms(500.0);
/// let origin = net.pick_online_node().unwrap();
/// net.inject_watched_tx(origin, None)?;
/// net.run_for_ms(10_000.0);
/// let watch = net.watch().unwrap();
/// assert!(watch.reached_count() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct Network {
    config: NetConfig,
    meta: Vec<NodeMeta>,
    links: Links,
    online: OnlineSet,
    proto: Vec<ProtoState>,
    latency: LinkLatencyModel,
    routes: RouteTable,
    engine: Engine<NetEvent>,
    stats: MessageStats,
    policy: Box<dyn NeighborPolicy>,
    policy_rng: ChaCha12Rng,
    latency_rng: ChaCha12Rng,
    churn_rng: ChaCha12Rng,
    inject_rng: ChaCha12Rng,
    tx_factory: TxFactory,
    tx_registry: BTreeMap<TxId, Transaction>,
    watch: Option<TxWatch>,
    discovery_enabled: bool,
    chain: Vec<ChainState>,
    ledger: BlockLedger,
    mining_rng: ChaCha12Rng,
    /// Mean block inter-arrival in ms; 0 = mining disabled.
    mining_interval_ms: f64,
    /// In-loop behavioural adversary, if one is installed.
    adversary: Option<Box<dyn Adversary>>,
    adversary_rng: ChaCha12Rng,
    /// How block bodies travel once announced. Always installed (the
    /// default [`FullRelay`] replicates the legacy hard-wired path);
    /// `Option` only so the dispatch can lend `self` to the strategy.
    relay: Option<Box<dyn RelayStrategy>>,
    relay_rng: ChaCha12Rng,
    /// Whether redundant-delivery accounting (and block-arrival telemetry)
    /// is armed. Off by default — enabled by [`Network::install_relay`] —
    /// so runs without an explicit relay stay byte-identical to the
    /// pre-relay-subsystem output.
    waste_accounting: bool,
    /// Mint times of blocks (ms), kept only under waste accounting to
    /// measure block propagation delay.
    block_mint_ms: BTreeMap<BlockId, f64>,
    block_delay_sum_ms: f64,
    block_delay_count: u64,
    /// Reused fan-out buffer: every relay hop collects the peers to
    /// announce to, and this scratch space keeps that collection
    /// allocation-free on the hot path.
    scratch_nodes: Vec<NodeId>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.meta.len())
            .field("online", &self.online.len())
            .field("edges", &self.links.edge_count())
            .field("policy", &self.policy.name())
            .field("relay", &self.relay_name())
            .field("now", &self.engine.now())
            .finish()
    }
}

impl Network {
    /// Builds a network: places nodes, bootstraps the topology through the
    /// policy, and schedules discovery ticks and churn.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid configuration field.
    pub fn build(
        config: NetConfig,
        policy: Box<dyn NeighborPolicy>,
        seed: u64,
    ) -> Result<Self, String> {
        config.validate()?;
        let hub = RngHub::new(seed);
        let mut placement_rng = hub.stream("placement");
        let latency_model = LinkLatencyModel::new(config.latency);
        let placer = NodePlacer::world();
        let n = config.num_nodes;
        let verify_sigma = config.verify_heterogeneity_sigma;
        let meta: Vec<NodeMeta> = (0..n)
            .map(|_| {
                let verify_factor = if verify_sigma > 0.0 {
                    (verify_sigma * bcbpt_geo::sample_standard_normal(&mut placement_rng)).exp()
                } else {
                    1.0
                };
                NodeMeta {
                    placement: placer.place(&mut placement_rng),
                    access: latency_model.sample_access(&mut placement_rng),
                    verify_factor,
                    online: true,
                }
            })
            .collect();

        let mut net = Network {
            meta,
            links: Links::new(n),
            online: OnlineSet::all_online(n),
            proto: vec![ProtoState::new(); n],
            latency: latency_model,
            routes: RouteTable::new(hub.draw_u64("routes"), config.route_sigma),
            engine: Engine::with_capacity(n * 4),
            stats: MessageStats::new(),
            policy,
            policy_rng: hub.stream("policy"),
            latency_rng: hub.stream("latency"),
            churn_rng: hub.stream("churn"),
            inject_rng: hub.stream("inject"),
            tx_factory: TxFactory::new(config.tx_size_bytes),
            tx_registry: BTreeMap::new(),
            watch: None,
            discovery_enabled: true,
            chain: vec![ChainState::new(); n],
            ledger: BlockLedger::new(),
            mining_rng: hub.stream("mining"),
            mining_interval_ms: 0.0,
            adversary: None,
            adversary_rng: hub.stream("adversary"),
            relay: Some(Box::new(FullRelay::default())),
            relay_rng: hub.stream("relay"),
            waste_accounting: false,
            block_mint_ms: BTreeMap::new(),
            block_delay_sum_ms: 0.0,
            block_delay_count: 0,
            scratch_nodes: Vec::new(),
            config,
        };

        // Bootstrap every node's outbound connections through the policy.
        for i in 0..n {
            let node = NodeId::from_index(i as u32);
            let targets = net.policy_bootstrap(node);
            for t in targets {
                net.try_connect(node, t);
            }
        }

        // Stagger discovery ticks so they do not all fire at one instant.
        let interval = net.config.discovery_interval_ms;
        for i in 0..n {
            let node = NodeId::from_index(i as u32);
            let phase = interval * (i as f64 / n as f64);
            net.engine.schedule_in(
                SimDuration::from_millis_f64(phase),
                NetEvent::DiscoveryTick { node },
            );
        }

        // Schedule first departures when churn is enabled.
        if !net.config.churn.is_disabled() {
            for i in 0..n {
                let node = NodeId::from_index(i as u32);
                let session = net.config.churn.sample_session_ms(&mut net.churn_rng);
                if session.is_finite() {
                    net.engine.schedule_in(
                        SimDuration::from_millis_f64(session),
                        NetEvent::ChurnLeave { node },
                    );
                }
            }
        }

        Ok(net)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The configuration the network was built with.
    pub fn config(&self) -> &NetConfig {
        &self.config
    }

    /// The neighbour-selection policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Cluster id of `node` according to the policy, if it clusters.
    pub fn cluster_of(&self, node: NodeId) -> Option<usize> {
        self.policy.cluster_of(node)
    }

    /// The connection table.
    pub fn links(&self) -> &Links {
        &self.links
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Number of nodes currently online.
    pub fn online_count(&self) -> usize {
        self.online.len()
    }

    /// Number of nodes (online or not).
    pub fn num_nodes(&self) -> usize {
        self.meta.len()
    }

    /// Whether `node` is online.
    pub fn is_online(&self, node: NodeId) -> bool {
        self.meta[node.index()].online
    }

    /// Node metadata (placement, access profile, liveness).
    pub fn meta(&self, node: NodeId) -> &NodeMeta {
        &self.meta[node.index()]
    }

    /// Noise-free ground-truth RTT between two nodes (ms), including the
    /// pair's route stretch.
    pub fn base_rtt_ms(&self, a: NodeId, b: NodeId) -> f64 {
        let ma = &self.meta[a.index()];
        let mb = &self.meta[b.index()];
        2.0 * self.latency.base_one_way_ms_with_route(
            &ma.placement.point,
            &mb.placement.point,
            &ma.access,
            &mb.access,
            self.routes.stretch(a, b),
        )
    }

    /// The current transaction watch, if any.
    pub fn watch(&self) -> Option<&TxWatch> {
        self.watch.as_ref()
    }

    /// Removes and returns the current watch.
    pub fn take_watch(&mut self) -> Option<TxWatch> {
        self.watch.take()
    }

    /// Enables or disables discovery ticks (cluster maintenance). The
    /// measurement phase can freeze the topology to isolate relay delay.
    pub fn set_discovery_enabled(&mut self, enabled: bool) {
        self.discovery_enabled = enabled;
    }

    /// Re-derives every random stream from `hub`, leaving topology, clocks
    /// and pending events untouched.
    ///
    /// The parallel campaign runner snapshots one warmed-up network and
    /// clones it per measuring run; reseeding each clone from
    /// `RngHub::new(campaign_seed).subhub("run", run_index)` makes run `k`
    /// independent of which thread executes it — parallel output is
    /// byte-identical to the serial schedule.
    pub fn reseed_streams(&mut self, hub: &bcbpt_sim::RngHub) {
        self.policy_rng = hub.stream("policy");
        self.latency_rng = hub.stream("latency");
        self.churn_rng = hub.stream("churn");
        self.inject_rng = hub.stream("inject");
        self.mining_rng = hub.stream("mining");
        self.adversary_rng = hub.stream("adversary");
        self.relay_rng = hub.stream("relay");
    }

    /// Installs a block-relay strategy (replacing the default
    /// [`FullRelay`]) and arms bandwidth-waste accounting: from here on,
    /// redundant deliveries are recorded per [`MessageKind`] and block
    /// arrival delays are measured.
    ///
    /// Installing `FullRelay` itself is meaningful: the relay behaviour is
    /// identical to the default, but waste accounting turns on — the
    /// baseline the compact/coded strategies are compared against.
    pub fn install_relay(&mut self, relay: Box<dyn RelayStrategy>) {
        self.relay = Some(relay);
        self.waste_accounting = true;
    }

    /// The installed relay strategy's name.
    pub fn relay_name(&self) -> &'static str {
        self.relay.as_deref().map_or("full", RelayStrategy::name)
    }

    /// Whether redundant-delivery accounting is armed.
    pub fn waste_accounting(&self) -> bool {
        self.waste_accounting
    }

    /// Mean delay (ms) from a block's mint to its adoption by another
    /// node, over every adoption observed since waste accounting was
    /// armed; 0 when no block has propagated.
    pub fn block_delay_mean_ms(&self) -> f64 {
        if self.block_delay_count == 0 {
            0.0
        } else {
            self.block_delay_sum_ms / self.block_delay_count as f64
        }
    }

    /// Installs a behavioural adversary (replacing any previous one). Its
    /// strategies act from this moment on — install before
    /// [`warmup_ms`](Self::warmup_ms) to let an attacker game topology
    /// formation.
    pub fn set_adversary(&mut self, adversary: Box<dyn Adversary>) {
        self.adversary = Some(adversary);
    }

    /// Removes and returns the installed adversary, if any.
    pub fn take_adversary(&mut self) -> Option<Box<dyn Adversary>> {
        self.adversary.take()
    }

    /// The installed adversary, if any.
    pub fn adversary(&self) -> Option<&dyn Adversary> {
        self.adversary.as_deref()
    }

    /// Whether `node` is controlled by the installed adversary.
    pub fn is_attacker(&self, node: NodeId) -> bool {
        self.adversary.as_ref().is_some_and(|a| a.is_attacker(node))
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }

    /// Picks a deterministic pseudo-random online node, if any is online.
    pub fn pick_online_node(&mut self) -> Option<NodeId> {
        let sample = self
            .online
            .sample(1, NodeId::from_index(u32::MAX - 1), &mut self.inject_rng);
        sample.first().copied()
    }

    /// Fraction of online nodes reachable from `from` over established
    /// links (BFS) — a connectivity diagnostic for experiments.
    pub fn reachable_fraction(&self, from: NodeId) -> f64 {
        if !self.is_online(from) || self.online.is_empty() {
            return 0.0;
        }
        let mut seen = vec![false; self.meta.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[from.index()] = true;
        queue.push_back(from);
        let mut count = 1usize;
        while let Some(node) = queue.pop_front() {
            for &peer in self.links.peers(node) {
                if !seen[peer.index()] && self.meta[peer.index()].online {
                    seen[peer.index()] = true;
                    count += 1;
                    queue.push_back(peer);
                }
            }
        }
        count as f64 / self.online.len() as f64
    }

    /// Enables the proof-of-work process: blocks are found globally as a
    /// Poisson process with the given mean inter-arrival, each won by a
    /// uniformly random online node mining on its own current tip.
    ///
    /// Slow relay protocols let miners build on stale tips, producing the
    /// forks the paper's motivation describes (§I, §III); inspect the
    /// outcome via [`ledger`](Self::ledger).
    ///
    /// # Panics
    ///
    /// Panics when `mean_interval_ms` is not positive and finite.
    pub fn enable_mining(&mut self, mean_interval_ms: f64) {
        assert!(
            mean_interval_ms > 0.0 && mean_interval_ms.is_finite(),
            "mining interval must be positive"
        );
        let first = self.sample_exponential_ms(mean_interval_ms);
        self.mining_interval_ms = mean_interval_ms;
        self.engine
            .schedule_in(SimDuration::from_millis_f64(first), NetEvent::MineBlock);
    }

    /// The global block ledger (ground truth for fork accounting).
    pub fn ledger(&self) -> &BlockLedger {
        &self.ledger
    }

    /// A node's chain view.
    pub fn chain(&self, node: NodeId) -> &ChainState {
        &self.chain[node.index()]
    }

    /// Fraction of online nodes whose tip equals the global best tip — a
    /// ledger-consistency metric (the paper's "replicas of the ledger ...
    /// are inconsistent" concern, §I).
    pub fn tip_agreement(&self) -> f64 {
        let Some(best) = self.ledger.best_tip() else {
            return 1.0;
        };
        let mut agree = 0usize;
        let mut online = 0usize;
        for i in 0..self.meta.len() as u32 {
            let node = NodeId::from_index(i);
            if self.meta[node.index()].online {
                online += 1;
                if self.chain[node.index()].tip == Some(best) {
                    agree += 1;
                }
            }
        }
        if online == 0 {
            0.0
        } else {
            agree as f64 / online as f64
        }
    }

    fn sample_exponential_ms(&mut self, mean: f64) -> f64 {
        let u: f64 = self.mining_rng.gen::<f64>();
        -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }

    /// Forcibly tears down the connection between `a` and `b` (no protocol
    /// exchange) — the primitive attack experiments use to cut links.
    /// Returns `false` when no such connection existed.
    pub fn force_disconnect(&mut self, a: NodeId, b: NodeId) -> bool {
        self.links.disconnect(a, b)
    }

    /// Runs `f` with a [`NetView`] over the current network state — the
    /// same window policies get. Useful for custom experiments and for
    /// testing policy components in isolation.
    pub fn with_view<R, F: FnOnce(&mut NetView<'_>) -> R>(&mut self, f: F) -> R {
        let mut view = NetView {
            meta: &self.meta,
            links: &self.links,
            online: &self.online,
            latency: &self.latency,
            routes: &self.routes,
            stats: &mut self.stats,
            rng: &mut self.policy_rng,
            config: &self.config,
            adversary: self.adversary.as_deref_mut(),
        };
        f(&mut view)
    }

    /// Test-only alias of [`with_view`](Self::with_view), compiled only for
    /// this crate's own tests or under the `testing` feature so it stays
    /// out of the release API.
    #[cfg(any(test, feature = "testing"))]
    pub fn with_view_for_tests<R, F: FnOnce(&mut NetView<'_>) -> R>(&mut self, f: F) -> R {
        self.with_view(f)
    }

    // ------------------------------------------------------------------
    // Topology plumbing
    // ------------------------------------------------------------------

    fn policy_bootstrap(&mut self, node: NodeId) -> Vec<NodeId> {
        let mut view = NetView {
            meta: &self.meta,
            links: &self.links,
            online: &self.online,
            latency: &self.latency,
            routes: &self.routes,
            stats: &mut self.stats,
            rng: &mut self.policy_rng,
            config: &self.config,
            adversary: self.adversary.as_deref_mut(),
        };
        self.policy.bootstrap(node, &mut view)
    }

    fn policy_discovery(&mut self, node: NodeId, discovered: &[NodeId]) -> TopologyActions {
        let mut view = NetView {
            meta: &self.meta,
            links: &self.links,
            online: &self.online,
            latency: &self.latency,
            routes: &self.routes,
            stats: &mut self.stats,
            rng: &mut self.policy_rng,
            config: &self.config,
            adversary: self.adversary.as_deref_mut(),
        };
        self.policy.on_discovery(node, discovered, &mut view)
    }

    fn policy_leave(&mut self, node: NodeId) {
        let mut view = NetView {
            meta: &self.meta,
            links: &self.links,
            online: &self.online,
            latency: &self.latency,
            routes: &self.routes,
            stats: &mut self.stats,
            rng: &mut self.policy_rng,
            config: &self.config,
            adversary: self.adversary.as_deref_mut(),
        };
        self.policy.on_leave(node, &mut view);
    }

    /// Attempts to establish `from → to` under the connection caps.
    /// Accounts the VERSION/VERACK handshake on success.
    pub(crate) fn try_connect(&mut self, from: NodeId, to: NodeId) -> bool {
        if from == to
            || !self.meta[from.index()].online
            || !self.meta[to.index()].online
            || self.links.connected(from, to)
            || self.links.outbound_count(from) >= self.config.target_outbound
            || self.links.inbound_count(to) >= self.config.max_inbound
        {
            return false;
        }
        let connected = self.links.connect(from, to);
        if connected {
            self.stats.record(&Message::Version);
            self.stats.record(&Message::Verack);
        }
        connected
    }

    fn apply_actions(&mut self, node: NodeId, actions: TopologyActions) {
        for peer in actions.disconnect {
            self.links.disconnect(node, peer);
        }
        for peer in actions.connect {
            self.try_connect(node, peer);
        }
    }

    // ------------------------------------------------------------------
    // Messaging
    // ------------------------------------------------------------------

    /// Takes the reusable fan-out buffer, filled with `node`'s peers minus
    /// `exclude` — the relay hot path's allocation-free peer collection.
    /// Callers iterate it and hand it back by assigning to
    /// `self.scratch_nodes` (forgetting to restore only costs the reuse,
    /// never correctness).
    pub(crate) fn take_peer_scratch(
        &mut self,
        node: NodeId,
        exclude: Option<NodeId>,
    ) -> Vec<NodeId> {
        let mut peers = std::mem::take(&mut self.scratch_nodes);
        peers.clear();
        peers.extend(
            self.links
                .peers(node)
                .iter()
                .copied()
                .filter(|&p| Some(p) != exclude),
        );
        peers
    }

    /// Returns the fan-out buffer taken by
    /// [`take_peer_scratch`](Self::take_peer_scratch).
    pub(crate) fn restore_peer_scratch(&mut self, peers: Vec<NodeId>) {
        self.scratch_nodes = peers;
    }

    /// Schedules delivery of `msg` from `from` to `to` with sampled link
    /// latency plus serialization delay.
    pub(crate) fn send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        self.send_with_extra_delay(from, to, msg, 0.0);
    }

    /// Mutable access to `node`'s chain view (relay strategies).
    pub(crate) fn chain_state_mut(&mut self, node: NodeId) -> &mut ChainState {
        &mut self.chain[node.index()]
    }

    /// The dedicated relay RNG stream.
    pub(crate) fn relay_rng_mut(&mut self) -> &mut ChaCha12Rng {
        &mut self.relay_rng
    }

    /// Records a redundant delivery when waste accounting is armed; a
    /// no-op otherwise so legacy runs never grow new serialized state.
    pub(crate) fn record_redundant_gated(&mut self, kind: MessageKind, bytes: u64) {
        if self.waste_accounting {
            self.stats.record_redundant(kind, bytes);
        }
    }

    /// Schedules the give-up timer for an outstanding block pull.
    pub(crate) fn schedule_block_timeout(&mut self, node: NodeId, block: BlockId) {
        let timeout = SimDuration::from_millis_f64(self.config.getdata_timeout_ms);
        self.engine
            .schedule_in(timeout, NetEvent::GetBlockTimeout { node, block });
    }

    /// Schedules block verification at `to` with the size-proportional
    /// cost the legacy BLOCK arm used, scaled by the node's verify factor.
    pub(crate) fn schedule_block_verify(&mut self, to: NodeId, block: &Block, relayer: NodeId) {
        let tx_stand_in = Transaction::new(TxId::from_raw(0), block.size_bytes);
        let verify = SimDuration::from_millis_f64(
            self.config.block_verify.verify_ms(&tx_stand_in) * self.meta[to.index()].verify_factor,
        );
        self.engine.schedule_in(
            verify,
            NetEvent::BlockVerifyDone {
                node: to,
                block: block.id,
                relayer,
            },
        );
    }

    /// Routes a block-plane message through the installed relay strategy.
    fn relay_dispatch(&mut self, from: NodeId, to: NodeId, msg: Message) {
        let mut relay = self.relay.take().expect("relay strategy installed");
        relay.on_message(from, to, msg, &mut RelayNet::new(self));
        self.relay = Some(relay);
    }

    /// Announces a newly adopted block through the installed relay
    /// strategy.
    fn relay_announce(&mut self, node: NodeId, block: &Block, exclude: Option<NodeId>) {
        let mut relay = self.relay.take().expect("relay strategy installed");
        relay.announce(node, block, exclude, &mut RelayNet::new(self));
        self.relay = Some(relay);
    }

    /// [`send`](Self::send) with an additional sender-side delay (used for
    /// INV trickling).
    fn send_with_extra_delay(&mut self, from: NodeId, to: NodeId, msg: Message, mut extra_ms: f64) {
        // Adversary tap: an attacker-controlled sender may hold the message
        // back or withhold it entirely. Withheld messages never reach the
        // wire; they are accounted separately in the traffic statistics.
        if let Some(adversary) = &mut self.adversary {
            match adversary.on_send(from, to, &msg, &mut self.adversary_rng) {
                TapVerdict::Deliver => {}
                TapVerdict::Delay(lag_ms) => extra_ms += lag_ms,
                TapVerdict::Withhold => {
                    self.stats.record_withheld(&msg);
                    return;
                }
            }
        }
        self.stats.record(&msg);
        let ma = &self.meta[from.index()];
        let mb = &self.meta[to.index()];
        let base = self.latency.base_one_way_ms_with_route(
            &ma.placement.point,
            &mb.placement.point,
            &ma.access,
            &mb.access,
            self.routes.stretch(from, to),
        );
        let mut delay_ms = self.latency.sample_one_way_ms(base, &mut self.latency_rng);
        delay_ms += msg.wire_size_bytes() as f64 / self.config.bandwidth_bytes_per_ms;
        delay_ms += extra_ms;
        self.engine.schedule_in(
            SimDuration::from_millis_f64(delay_ms),
            NetEvent::Deliver { from, to, msg },
        );
    }

    /// Samples the sender-side trickle delay for one INV announcement
    /// (exponential; 0 when trickling is disabled).
    fn sample_trickle_ms(&mut self) -> f64 {
        let mean = self.config.inv_trickle_mean_ms;
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.latency_rng.gen::<f64>();
        -mean * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }

    // ------------------------------------------------------------------
    // Injection (measuring-node methodology, Fig. 2)
    // ------------------------------------------------------------------

    /// Creates a transaction at `origin` and relays it to exactly one peer
    /// (`first_hop`, or a random peer when `None`), starting a watch that
    /// records per-peer announcement times and network-wide arrivals.
    ///
    /// Replaces any previous watch.
    ///
    /// # Errors
    ///
    /// * [`InjectError::OriginOffline`] when the origin is offline.
    /// * [`InjectError::NoPeers`] when the origin has no connections.
    /// * [`InjectError::NotAPeer`] when `first_hop` is not connected.
    pub fn inject_watched_tx(
        &mut self,
        origin: NodeId,
        first_hop: Option<NodeId>,
    ) -> Result<TxId, InjectError> {
        if !self.meta[origin.index()].online {
            return Err(InjectError::OriginOffline(origin));
        }
        let peers = self.links.peers(origin);
        if peers.is_empty() {
            return Err(InjectError::NoPeers(origin));
        }
        let target = match first_hop {
            Some(t) if peers.contains(&t) => t,
            Some(t) => {
                return Err(InjectError::NotAPeer {
                    origin,
                    first_hop: t,
                })
            }
            None => {
                let k = self.inject_rng.gen_range(0..peers.len());
                *peers.iter().nth(k).expect("index sampled below len")
            }
        };
        let tx = self.tx_factory.create();
        self.tx_registry.insert(tx.id, tx);
        self.proto[origin.index()].mempool.insert(tx.id);
        let mut watch = TxWatch::new(tx.id, origin, self.now());
        watch.record_arrival(origin, self.now());
        self.watch = Some(watch);
        self.send(origin, target, Message::TxData { tx });
        Ok(tx.id)
    }

    /// Creates a transaction at `origin` and announces it to *all* peers —
    /// normal client behaviour, used by validation and example workloads.
    ///
    /// # Errors
    ///
    /// Same conditions as [`inject_watched_tx`](Self::inject_watched_tx)
    /// minus the first-hop check.
    pub fn inject_broadcast_tx(&mut self, origin: NodeId) -> Result<TxId, InjectError> {
        if !self.meta[origin.index()].online {
            return Err(InjectError::OriginOffline(origin));
        }
        if self.links.peers(origin).is_empty() {
            return Err(InjectError::NoPeers(origin));
        }
        let tx = self.tx_factory.create();
        self.tx_registry.insert(tx.id, tx);
        self.proto[origin.index()].mempool.insert(tx.id);
        let mut watch = TxWatch::new(tx.id, origin, self.now());
        watch.record_arrival(origin, self.now());
        self.watch = Some(watch);
        let peers = self.take_peer_scratch(origin, None);
        for &p in &peers {
            let trickle = self.sample_trickle_ms();
            self.send_with_extra_delay(origin, p, Message::InvOne { txid: tx.id }, trickle);
        }
        self.scratch_nodes = peers;
        Ok(tx.id)
    }

    // ------------------------------------------------------------------
    // Run loop
    // ------------------------------------------------------------------

    /// Runs until the simulated clock reaches `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        loop {
            match self.engine.peek_time() {
                None => break,
                Some(t) if t >= horizon => break,
                Some(_) => {}
            }
            let firing = self.engine.step().expect("peeked non-empty");
            self.handle(firing.payload);
        }
        // This loop drives the engine through `step()` (bypassing the
        // engine's own run loop), so publish its event/queue counts here.
        self.engine.flush_obs();
    }

    /// Runs for `duration_ms` simulated milliseconds.
    pub fn run_for_ms(&mut self, duration_ms: f64) {
        let horizon = self.now() + SimDuration::from_millis_f64(duration_ms);
        self.run_until(horizon);
    }

    /// Alias of [`run_for_ms`](Self::run_for_ms) that reads better for the
    /// topology-formation phase.
    pub fn warmup_ms(&mut self, duration_ms: f64) {
        self.run_for_ms(duration_ms);
    }

    fn handle(&mut self, ev: NetEvent) {
        match ev {
            NetEvent::Deliver { from, to, msg } => self.handle_deliver(from, to, msg),
            NetEvent::DiscoveryTick { node } => self.handle_discovery(node),
            NetEvent::VerifyDone { node, tx, relayer } => self.handle_verified(node, tx, relayer),
            NetEvent::GetDataTimeout { node, tx } => {
                // Forget the stalled request so a later INV can retry it.
                let proto = &mut self.proto[node.index()];
                if !proto.mempool.contains(&tx) && !proto.verifying.contains(&tx) {
                    proto.inflight.remove(&tx);
                }
            }
            NetEvent::ChurnLeave { node } => self.handle_leave(node),
            NetEvent::ChurnRejoin { node } => self.handle_rejoin(node),
            NetEvent::MineBlock => self.handle_mine(),
            NetEvent::BlockVerifyDone {
                node,
                block,
                relayer,
            } => self.handle_block_verified(node, block, relayer),
            NetEvent::GetBlockTimeout { node, block } => {
                let chain = &mut self.chain[node.index()];
                if !chain.known.contains(&block) && !chain.verifying.contains(&block) {
                    chain.inflight.remove(&block);
                }
            }
        }
    }

    fn handle_deliver(&mut self, from: NodeId, to: NodeId, msg: Message) {
        if !self.meta[to.index()].online {
            return; // Messages to departed nodes are lost.
        }
        // Measuring-node hook: record the first announcement per peer.
        if let Some(watch) = &mut self.watch {
            if to == watch.origin {
                let announces = match &msg {
                    Message::Inv { txids } => txids.contains(&watch.tx),
                    Message::InvOne { txid } => *txid == watch.tx,
                    _ => false,
                };
                if announces {
                    watch.record_announcement(from, self.engine.now());
                }
            }
        }
        match msg {
            Message::Ping { nonce } => self.send(to, from, Message::Pong { nonce }),
            Message::Pong { .. } => {}
            Message::GetAddr => {
                let nodes =
                    self.online
                        .sample(self.config.discovery_sample, to, &mut self.policy_rng);
                self.send(to, from, Message::Addr { nodes });
            }
            Message::Addr { .. } => {}
            Message::Inv { txids } => {
                let proto = &mut self.proto[to.index()];
                let mut wanted = Vec::new();
                let mut known = 0u64;
                for txid in txids {
                    if !proto.knows(txid) {
                        proto.inflight.insert(txid);
                        wanted.push(txid);
                    } else {
                        known += 1;
                    }
                }
                if known > 0 {
                    self.record_redundant_gated(MessageKind::Inv, known * INV_ENTRY_BYTES as u64);
                }
                if !wanted.is_empty() {
                    let timeout = SimDuration::from_millis_f64(self.config.getdata_timeout_ms);
                    for &txid in &wanted {
                        self.engine
                            .schedule_in(timeout, NetEvent::GetDataTimeout { node: to, tx: txid });
                    }
                    self.send(to, from, Message::GetData { txids: wanted });
                }
            }
            Message::InvOne { txid } => {
                // Hot-path twin of `Inv`: one id, no vectors end to end.
                let proto = &mut self.proto[to.index()];
                if !proto.knows(txid) {
                    proto.inflight.insert(txid);
                    let timeout = SimDuration::from_millis_f64(self.config.getdata_timeout_ms);
                    self.engine
                        .schedule_in(timeout, NetEvent::GetDataTimeout { node: to, tx: txid });
                    self.send(to, from, Message::GetDataOne { txid });
                } else {
                    let wire = Message::InvOne { txid }.wire_size_bytes() as u64;
                    self.record_redundant_gated(MessageKind::Inv, wire);
                }
            }
            Message::GetData { txids } => {
                for txid in txids {
                    if self.proto[to.index()].mempool.contains(&txid) {
                        if let Some(&tx) = self.tx_registry.get(&txid) {
                            self.send(to, from, Message::TxData { tx });
                        }
                    }
                }
            }
            Message::GetDataOne { txid } => {
                if self.proto[to.index()].mempool.contains(&txid) {
                    if let Some(&tx) = self.tx_registry.get(&txid) {
                        self.send(to, from, Message::TxData { tx });
                    }
                }
            }
            Message::TxData { tx } => {
                let proto = &mut self.proto[to.index()];
                if proto.mempool.contains(&tx.id) || proto.verifying.contains(&tx.id) {
                    let wire = Message::TxData { tx }.wire_size_bytes() as u64;
                    self.record_redundant_gated(MessageKind::Tx, wire);
                    return;
                }
                proto.inflight.remove(&tx.id);
                proto.verifying.insert(tx.id);
                let verify = SimDuration::from_millis_f64(
                    self.config.verify.verify_ms(&tx) * self.meta[to.index()].verify_factor,
                );
                self.engine.schedule_in(
                    verify,
                    NetEvent::VerifyDone {
                        node: to,
                        tx: tx.id,
                        relayer: from,
                    },
                );
            }
            // The block plane belongs to the installed relay strategy.
            Message::BlockInv { .. }
            | Message::BlockInvOne { .. }
            | Message::GetBlocks { .. }
            | Message::GetBlocksOne { .. }
            | Message::BlockData { .. }
            | Message::CmpctBlock { .. }
            | Message::GetBlockTxn { .. }
            | Message::BlockTxn { .. }
            | Message::CodedPiece { .. }
            | Message::GetPiece { .. } => self.relay_dispatch(from, to, msg),
            // Handshake and cluster control are applied synchronously at
            // the topology layer; their traffic is accounted there.
            Message::Version | Message::Verack | Message::Join | Message::ClusterList { .. } => {}
        }
    }

    fn handle_verified(&mut self, node: NodeId, txid: TxId, relayer: NodeId) {
        if !self.meta[node.index()].online {
            return; // Departed while verifying.
        }
        let proto = &mut self.proto[node.index()];
        proto.verifying.remove(&txid);
        if !proto.mempool.insert(txid) {
            return;
        }
        if let Some(watch) = &mut self.watch {
            if txid == watch.tx {
                watch.record_arrival(node, self.engine.now());
            }
        }
        let peers = self.take_peer_scratch(node, Some(relayer));
        for &p in &peers {
            let trickle = self.sample_trickle_ms();
            self.send_with_extra_delay(node, p, Message::InvOne { txid }, trickle);
        }
        self.scratch_nodes = peers;
    }

    fn handle_discovery(&mut self, node: NodeId) {
        // Always reschedule so the tick train survives offline periods.
        self.engine.schedule_in(
            SimDuration::from_millis_f64(self.config.discovery_interval_ms),
            NetEvent::DiscoveryTick { node },
        );
        if !self.discovery_enabled || !self.meta[node.index()].online {
            return;
        }
        // "The normal Bitcoin network nodes discovery mechanism": learn a
        // few addresses (accounted as a GETADDR/ADDR exchange with a peer).
        let discovered =
            self.online
                .sample(self.config.discovery_sample, node, &mut self.policy_rng);
        if !discovered.is_empty() {
            self.stats.record(&Message::GetAddr);
            self.stats.record(&Message::Addr {
                nodes: discovered.clone(),
            });
        }
        let actions = self.policy_discovery(node, &discovered);
        self.apply_actions(node, actions);
    }

    fn handle_leave(&mut self, node: NodeId) {
        if self.meta[node.index()].online {
            self.meta[node.index()].online = false;
            self.online.remove(node);
            self.links.drop_all(node);
            self.proto[node.index()].clear();
            if let Some(relay) = &mut self.relay {
                relay.on_leave(node);
            }
            self.policy_leave(node);
        }
        let offline = self.config.churn.sample_offline_ms(&mut self.churn_rng);
        if offline.is_finite() {
            self.engine.schedule_in(
                SimDuration::from_millis_f64(offline),
                NetEvent::ChurnRejoin { node },
            );
        }
    }

    fn handle_rejoin(&mut self, node: NodeId) {
        if !self.meta[node.index()].online {
            self.meta[node.index()].online = true;
            self.online.insert(node);
            let targets = self.policy_bootstrap(node);
            for t in targets {
                self.try_connect(node, t);
            }
        }
        let session = self.config.churn.sample_session_ms(&mut self.churn_rng);
        if session.is_finite() {
            self.engine.schedule_in(
                SimDuration::from_millis_f64(session),
                NetEvent::ChurnLeave { node },
            );
        }
    }
}

impl Network {
    fn handle_mine(&mut self) {
        // Reschedule the global Poisson process first.
        if self.mining_interval_ms > 0.0 {
            let gap = self.sample_exponential_ms(self.mining_interval_ms);
            self.engine
                .schedule_in(SimDuration::from_millis_f64(gap), NetEvent::MineBlock);
        }
        // A uniformly random online node wins the round.
        let sentinel = NodeId::from_index(u32::MAX - 1);
        let Some(miner) = self
            .online
            .sample(1, sentinel, &mut self.mining_rng)
            .first()
            .copied()
        else {
            return;
        };
        let parent = self.chain[miner.index()].tip;
        let block = self
            .ledger
            .mint(parent, miner, self.config.block_size_bytes);
        self.chain[miner.index()].adopt(&block);
        if self.waste_accounting {
            self.block_mint_ms
                .insert(block.id, self.now().as_millis_f64());
        }
        self.relay_announce(miner, &block, None);
    }

    fn handle_block_verified(&mut self, node: NodeId, id: BlockId, relayer: NodeId) {
        if !self.meta[node.index()].online {
            return;
        }
        let chain = &mut self.chain[node.index()];
        if chain.known.contains(&id) {
            return;
        }
        let Some(&block) = self.ledger.get(id) else {
            return; // Unmintable: ids only come from the ledger.
        };
        self.chain[node.index()].adopt(&block);
        if self.waste_accounting {
            if let Some(&minted) = self.block_mint_ms.get(&id) {
                self.block_delay_sum_ms += self.now().as_millis_f64() - minted;
                self.block_delay_count += 1;
            }
        }
        self.relay_announce(node, &block, Some(relayer));
    }
}

// ----------------------------------------------------------------------
// A trivial built-in policy so this crate is testable standalone. The real
// protocols (random with proper maintenance, LBC, BCBPT) live in
// `bcbpt-cluster`.
// ----------------------------------------------------------------------

/// Vanilla Bitcoin neighbour selection: connect to uniformly random nodes,
/// top up lost connections on discovery ticks.
///
/// This is the baseline protocol in the paper's Fig. 3 comparison.
#[derive(Debug, Default, Clone)]
pub struct RandomPolicy {
    _private: (),
}

impl RandomPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        RandomPolicy { _private: () }
    }
}

impl NeighborPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "bitcoin"
    }

    fn clone_box(&self) -> Box<dyn NeighborPolicy> {
        Box::new(self.clone())
    }

    fn bootstrap(&mut self, node: NodeId, view: &mut NetView<'_>) -> Vec<NodeId> {
        let want = view.config().target_outbound;
        view.sample_online(want, node)
    }

    fn on_discovery(
        &mut self,
        node: NodeId,
        discovered: &[NodeId],
        view: &mut NetView<'_>,
    ) -> TopologyActions {
        let free = view.free_outbound_slots(node);
        if free == 0 {
            return TopologyActions::none();
        }
        let connect: Vec<NodeId> = discovered
            .iter()
            .copied()
            .filter(|&c| c != node && view.is_online(c) && !view.connected(node, c))
            .take(free)
            .collect();
        TopologyActions::connect_to(connect)
    }

    fn on_leave(&mut self, _node: NodeId, _view: &mut NetView<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_geo::{ChurnModel, LatencyConfig};

    fn small_config(n: usize) -> NetConfig {
        NetConfig {
            num_nodes: n,
            latency: LatencyConfig::noiseless(),
            ..NetConfig::default()
        }
    }

    fn build(n: usize, seed: u64) -> Network {
        Network::build(small_config(n), Box::new(RandomPolicy::new()), seed).unwrap()
    }

    #[test]
    fn build_creates_connected_topology() {
        let net = build(50, 1);
        assert_eq!(net.num_nodes(), 50);
        assert_eq!(net.online_count(), 50);
        // Bootstrap may fall short when a sampled candidate already dialled
        // us; discovery ticks top the remainder up.
        let mut net = net;
        net.warmup_ms(3_000.0);
        for i in 0..50u32 {
            let node = NodeId::from_index(i);
            assert_eq!(
                net.links().outbound_count(node),
                8,
                "node {node} after top-up"
            );
        }
        assert!(net.reachable_fraction(NodeId::from_index(0)) > 0.99);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut c = small_config(10);
        c.target_outbound = 10;
        assert!(Network::build(c, Box::new(RandomPolicy::new()), 1).is_err());
    }

    #[test]
    fn watched_tx_reaches_whole_network() {
        let mut net = build(40, 2);
        let origin = NodeId::from_index(0);
        net.inject_watched_tx(origin, None).unwrap();
        net.run_for_ms(60_000.0);
        let watch = net.watch().unwrap();
        assert_eq!(
            watch.reached_count(),
            39,
            "all other nodes should receive the tx"
        );
        // Every peer of the origin eventually announces it back.
        // Every peer except the first hop announces back (a node never
        // re-announces to whoever gave it the payload).
        assert_eq!(
            watch.announced_count(),
            net.links().degree(origin) - 1,
            "all peers except the first hop announce"
        );
        for d in watch.deltas_ms() {
            assert!(d > 0.0, "announcement deltas are positive");
        }
    }

    #[test]
    fn inject_validates_origin() {
        let mut net = build(10, 3);
        let err = net
            .inject_watched_tx(NodeId::from_index(0), Some(NodeId::from_index(0)))
            .unwrap_err();
        assert!(matches!(err, InjectError::NotAPeer { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn relay_follows_inv_getdata_tx_sequence() {
        // Two nodes, one edge: the origin sends TXDATA to its peer, which
        // verifies and has nobody left to announce to (it never announces
        // back to its relayer). Counts: 1 TX, 0 INV, 0 GETDATA.
        let mut config = small_config(2);
        config.verify = crate::tx::VerifyCost::free();
        config.target_outbound = 1;
        let mut net = Network::build(config, Box::new(RandomPolicy::new()), 4).unwrap();
        net.set_discovery_enabled(false);
        let a = NodeId::from_index(0);
        let b = NodeId::from_index(1);
        assert!(net.links().connected(a, b));
        net.inject_watched_tx(a, Some(b)).unwrap();
        net.run_for_ms(5_000.0);
        assert_eq!(net.stats().count(crate::msg::MessageKind::Tx), 1);
        assert_eq!(net.stats().count(crate::msg::MessageKind::Inv), 0);
        assert_eq!(net.stats().count(crate::msg::MessageKind::GetData), 0);
        let watch = net.watch().unwrap();
        assert_eq!(watch.announced_count(), 0);
        assert_eq!(watch.reached_count(), 1, "peer still received the tx");
    }

    #[test]
    fn third_node_pays_one_and_a_half_rtt() {
        // Chain a - b - c with zero verification: c receives the payload
        // INV+GETDATA+TX = 3 one-way hops after b has it.
        let mut config = small_config(3);
        config.verify = crate::tx::VerifyCost::free();
        config.target_outbound = 1;
        let mut net = Network::build(config, Box::new(RandomPolicy::new()), 5).unwrap();
        net.set_discovery_enabled(false);
        // Rebuild a deterministic chain topology manually.
        let (a, b, c) = (
            NodeId::from_index(0),
            NodeId::from_index(1),
            NodeId::from_index(2),
        );
        for i in 0..3u32 {
            net.links.drop_all(NodeId::from_index(i));
        }
        net.links.connect(a, b);
        net.links.connect(b, c);
        net.inject_watched_tx(a, Some(b)).unwrap();
        net.run_for_ms(30_000.0);
        let watch = net.take_watch().unwrap();
        let arrivals = watch.arrival_delays_ms();
        assert_eq!(arrivals.len(), 2);
        let t_b = arrivals[0];
        let t_c = arrivals[1];
        let one_way_bc = net.base_rtt_ms(b, c) / 2.0;
        // c hears INV, sends GETDATA, receives TX: 3 extra one-way trips
        // (plus serialization). Allow tolerance for serialization delay.
        let expect = t_b + 3.0 * one_way_bc;
        assert!(
            (t_c - expect).abs() < 2.0,
            "t_c {t_c} vs expected {expect} (t_b {t_b}, one-way {one_way_bc})"
        );
    }

    #[test]
    fn churn_takes_nodes_down_and_back() {
        let mut config = small_config(30);
        config.churn = ChurnModel {
            median_session_ms: 3_000.0,
            session_sigma: 0.5,
            mean_offline_ms: 1_000.0,
        };
        let mut net = Network::build(config, Box::new(RandomPolicy::new()), 6).unwrap();
        let mut saw_offline = false;
        for _ in 0..40 {
            net.run_for_ms(500.0);
            if net.online_count() < 30 {
                saw_offline = true;
            }
        }
        assert!(saw_offline, "churn should take nodes offline");
        assert!(net.online_count() > 0, "network never fully dies");
    }

    #[test]
    fn discovery_tops_up_connections_after_churn() {
        let mut config = small_config(30);
        config.churn = ChurnModel {
            median_session_ms: 2_000.0,
            session_sigma: 1.0,
            mean_offline_ms: 800.0,
        };
        let mut net = Network::build(config, Box::new(RandomPolicy::new()), 7).unwrap();
        net.run_for_ms(20_000.0);
        // After sustained churn with discovery running, online nodes should
        // still hold connections.
        let mut total_degree = 0usize;
        let mut online = 0usize;
        for i in 0..30u32 {
            let node = NodeId::from_index(i);
            if net.is_online(node) {
                online += 1;
                total_degree += net.links().degree(node);
            }
        }
        assert!(online > 0);
        assert!(
            total_degree as f64 / online as f64 >= 4.0,
            "average degree collapsed: {total_degree}/{online}"
        );
    }

    #[test]
    fn runs_are_deterministic_for_same_seed() {
        let run = |seed: u64| {
            let mut net = build(30, seed);
            net.inject_watched_tx(NodeId::from_index(0), None).unwrap();
            net.run_for_ms(30_000.0);
            let watch = net.take_watch().unwrap();
            (watch.deltas_ms(), net.stats().total_messages())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0, "different seeds differ");
    }

    #[test]
    fn broadcast_injection_announces_to_all_peers() {
        let mut net = build(20, 8);
        let origin = NodeId::from_index(0);
        let degree = net.links().degree(origin);
        let before = net.stats().count(crate::msg::MessageKind::Inv);
        net.inject_broadcast_tx(origin).unwrap();
        let after = net.stats().count(crate::msg::MessageKind::Inv);
        assert_eq!(after - before, degree as u64);
        net.run_for_ms(30_000.0);
        assert_eq!(net.watch().unwrap().reached_count(), 19);
    }

    #[test]
    fn offline_origin_rejected() {
        let mut net = build(10, 9);
        // Force node 0 offline through the churn path.
        net.handle(NetEvent::ChurnLeave {
            node: NodeId::from_index(0),
        });
        let err = net
            .inject_watched_tx(NodeId::from_index(0), None)
            .unwrap_err();
        assert!(matches!(err, InjectError::OriginOffline(_)));
    }

    #[test]
    fn mining_produces_a_growing_chain() {
        let mut net = build(30, 21);
        net.enable_mining(2_000.0);
        net.run_for_ms(60_000.0);
        let mined = net.ledger().mined_count();
        assert!(mined >= 10, "expected ~30 blocks, got {mined}");
        let main = net.ledger().main_chain().len();
        assert!(main > 0);
        assert!(main <= mined);
        // With 2 s blocks and sub-second propagation most blocks chain.
        assert!(
            net.ledger().stale_rate() < 0.5,
            "stale rate {}",
            net.ledger().stale_rate()
        );
        // After a quiet period every node converges on the best tip.
        net.run_for_ms(30_000.0);
        // (Mining continues; agreement is high but not necessarily total.)
        assert!(
            net.tip_agreement() > 0.5,
            "agreement {}",
            net.tip_agreement()
        );
    }

    #[test]
    fn faster_blocks_fork_more() {
        let stale_at = |interval_ms: f64| {
            let mut net = build(40, 22);
            net.enable_mining(interval_ms);
            net.run_for_ms(120_000.0);
            net.ledger().stale_rate()
        };
        let slow = stale_at(6_000.0);
        let fast = stale_at(300.0);
        assert!(
            fast > slow,
            "blocks at 300ms ({fast}) must fork more than at 6s ({slow})"
        );
    }

    #[test]
    fn mining_disabled_by_default() {
        let mut net = build(10, 23);
        net.run_for_ms(5_000.0);
        assert_eq!(net.ledger().mined_count(), 0);
        assert_eq!(net.tip_agreement(), 1.0, "vacuously consistent");
    }

    #[test]
    #[should_panic(expected = "mining interval")]
    fn mining_validates_interval() {
        let mut net = build(10, 24);
        net.enable_mining(0.0);
    }

    /// Test adversary: node 0 delays all its INV announcements, node 1
    /// withholds everything it would send.
    #[derive(Debug, Clone)]
    struct DelayAndMute;

    impl crate::adversary::Adversary for DelayAndMute {
        fn clone_box(&self) -> Box<dyn crate::adversary::Adversary> {
            Box::new(self.clone())
        }
        fn is_attacker(&self, node: NodeId) -> bool {
            node.index() < 2
        }
        fn on_send(
            &mut self,
            from: NodeId,
            _to: NodeId,
            msg: &Message,
            _rng: &mut ChaCha12Rng,
        ) -> crate::adversary::TapVerdict {
            match from.index() {
                0 if matches!(msg, Message::InvOne { .. }) => {
                    crate::adversary::TapVerdict::Delay(500.0)
                }
                1 => crate::adversary::TapVerdict::Withhold,
                _ => crate::adversary::TapVerdict::Deliver,
            }
        }
        fn rewrite_rtt_ms(&mut self, _o: NodeId, _t: NodeId, measured_ms: f64) -> f64 {
            measured_ms
        }
    }

    #[test]
    fn adversary_tap_withholds_and_accounts() {
        let run = |with_adversary: bool| {
            let mut net = build(30, 31);
            if with_adversary {
                net.set_adversary(Box::new(DelayAndMute));
            }
            let origin = NodeId::from_index(2);
            net.inject_watched_tx(origin, None).unwrap();
            net.run_for_ms(30_000.0);
            net
        };
        let clean = run(false);
        let tapped = run(true);
        assert!(tapped.is_attacker(NodeId::from_index(0)));
        assert!(!tapped.is_attacker(NodeId::from_index(5)));
        assert_eq!(clean.stats().withheld_messages(), 0);
        assert!(
            tapped.stats().withheld_messages() > 0,
            "the muted node must have withheld traffic"
        );
        // The tx still floods (the network routes around two attackers).
        assert!(tapped.watch().unwrap().reached_count() >= 27);
    }

    #[test]
    fn installed_idle_adversary_changes_nothing() {
        /// An adversary that controls nobody and touches nothing.
        #[derive(Debug, Clone)]
        struct Idle;
        impl crate::adversary::Adversary for Idle {
            fn clone_box(&self) -> Box<dyn crate::adversary::Adversary> {
                Box::new(Idle)
            }
            fn is_attacker(&self, _node: NodeId) -> bool {
                false
            }
            fn on_send(
                &mut self,
                _f: NodeId,
                _t: NodeId,
                _m: &Message,
                _rng: &mut ChaCha12Rng,
            ) -> crate::adversary::TapVerdict {
                crate::adversary::TapVerdict::Deliver
            }
            fn rewrite_rtt_ms(&mut self, _o: NodeId, _t: NodeId, measured_ms: f64) -> f64 {
                measured_ms
            }
        }
        let run = |idle: bool| {
            let mut net = build(30, 32);
            if idle {
                net.set_adversary(Box::new(Idle));
            }
            net.inject_watched_tx(NodeId::from_index(0), None).unwrap();
            net.run_for_ms(30_000.0);
            (
                net.take_watch().unwrap().deltas_ms(),
                net.stats().total_messages(),
            )
        };
        assert_eq!(run(false), run(true), "an idle adversary is a no-op");
    }

    #[test]
    fn take_adversary_uninstalls() {
        let mut net = build(10, 33);
        assert!(net.adversary().is_none());
        net.set_adversary(Box::new(DelayAndMute));
        assert!(net.adversary().is_some());
        assert!(net.take_adversary().is_some());
        assert!(net.adversary().is_none());
        assert!(!net.is_attacker(NodeId::from_index(0)));
    }

    #[test]
    fn debug_impl_mentions_policy() {
        let net = build(10, 10);
        let dbg = format!("{net:?}");
        assert!(dbg.contains("bitcoin"));
        assert!(dbg.contains("nodes"));
    }
}
