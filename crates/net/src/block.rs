//! Blocks, mining and per-node chain state.
//!
//! The paper's motivation chain is: slow propagation → inconsistent ledger
//! replicas → blockchain forks → double-spend opportunity (§I, §III). The
//! transaction experiments measure the propagation side; this module
//! supplies the *consequence* side — a minimal proof-of-work process and
//! blockchain so experiments can measure how the relay protocol changes the
//! stale-block (fork) rate.

use crate::ids::NodeId;
use core::fmt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies a block (stands in for the block-header hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BlockId(u64);

impl BlockId {
    /// Creates a block id from a raw value.
    pub const fn from_raw(raw: u64) -> Self {
        BlockId(raw)
    }

    /// The raw value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{:x}", self.0)
    }
}

/// A mined block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Unique id.
    pub id: BlockId,
    /// Parent block (`None` only for the genesis block).
    pub parent: Option<BlockId>,
    /// Height above genesis (genesis is 0).
    pub height: u64,
    /// The node that mined it.
    pub miner: NodeId,
    /// Serialized size in bytes.
    pub size_bytes: u32,
}

/// Per-node view of the blockchain: which blocks it has fully validated and
/// which tip it mines on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChainState {
    /// Validated blocks.
    pub known: std::collections::BTreeSet<BlockId>,
    /// Blocks being verified.
    pub verifying: std::collections::BTreeSet<BlockId>,
    /// Blocks requested and not yet received.
    pub inflight: std::collections::BTreeSet<BlockId>,
    /// Current best tip (what this node would mine on).
    pub tip: Option<BlockId>,
    /// Height of the best tip.
    pub tip_height: u64,
}

impl ChainState {
    /// Creates an empty chain view (genesis-only, conceptually).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the node has the block in any stage.
    pub fn knows(&self, block: BlockId) -> bool {
        self.known.contains(&block)
            || self.verifying.contains(&block)
            || self.inflight.contains(&block)
    }

    /// Adopts a validated block, switching tips on the longest-chain rule
    /// (first-seen wins ties, as in Bitcoin). Returns `true` when the tip
    /// moved.
    pub fn adopt(&mut self, block: &Block) -> bool {
        self.verifying.remove(&block.id);
        self.inflight.remove(&block.id);
        if !self.known.insert(block.id) {
            return false;
        }
        if block.height > self.tip_height || self.tip.is_none() {
            self.tip = Some(block.id);
            self.tip_height = block.height;
            true
        } else {
            false
        }
    }

    /// Resets the view (cold restart after churn).
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

/// The global ledger of mined blocks — ground truth for fork accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockLedger {
    blocks: BTreeMap<BlockId, Block>,
    next_id: u64,
}

impl BlockLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        BlockLedger {
            blocks: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Mints a new block on `parent` mined by `miner`.
    pub fn mint(&mut self, parent: Option<BlockId>, miner: NodeId, size_bytes: u32) -> Block {
        let height = match parent {
            Some(p) => self.blocks.get(&p).map_or(0, |b| b.height) + 1,
            None => 0,
        };
        let block = Block {
            id: BlockId::from_raw(self.next_id),
            parent,
            height,
            miner,
            size_bytes,
        };
        self.next_id += 1;
        self.blocks.insert(block.id, block);
        block
    }

    /// Looks up a block.
    pub fn get(&self, id: BlockId) -> Option<&Block> {
        self.blocks.get(&id)
    }

    /// Total blocks mined.
    pub fn mined_count(&self) -> usize {
        self.blocks.len()
    }

    /// The best tip: maximum height, then lowest id (earliest mined).
    pub fn best_tip(&self) -> Option<BlockId> {
        self.blocks
            .values()
            .max_by(|a, b| a.height.cmp(&b.height).then(b.id.cmp(&a.id)))
            .map(|b| b.id)
    }

    /// Ids on the main chain (ancestors of the best tip, inclusive).
    pub fn main_chain(&self) -> Vec<BlockId> {
        let mut chain = Vec::new();
        let mut cursor = self.best_tip();
        while let Some(id) = cursor {
            chain.push(id);
            cursor = self.blocks.get(&id).and_then(|b| b.parent);
        }
        chain.reverse();
        chain
    }

    /// Mined blocks that did **not** make the main chain.
    pub fn stale_count(&self) -> usize {
        self.mined_count() - self.main_chain().len()
    }

    /// Fraction of mined blocks that went stale — the fork rate the paper's
    /// motivation cares about (§I: conflicting simultaneous blocks enable
    /// double spending).
    pub fn stale_rate(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.stale_count() as f64 / self.mined_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn minting_builds_heights() {
        let mut ledger = BlockLedger::new();
        let g = ledger.mint(None, n(0), 100);
        assert_eq!(g.height, 0);
        let b1 = ledger.mint(Some(g.id), n(1), 100);
        assert_eq!(b1.height, 1);
        let b2 = ledger.mint(Some(b1.id), n(2), 100);
        assert_eq!(b2.height, 2);
        assert_eq!(ledger.mined_count(), 3);
        assert_eq!(ledger.best_tip(), Some(b2.id));
        assert_eq!(ledger.stale_count(), 0);
        assert_eq!(ledger.stale_rate(), 0.0);
    }

    #[test]
    fn forks_count_as_stale() {
        let mut ledger = BlockLedger::new();
        let g = ledger.mint(None, n(0), 100);
        let a = ledger.mint(Some(g.id), n(1), 100);
        let _fork = ledger.mint(Some(g.id), n(2), 100); // competing height 1
        let b = ledger.mint(Some(a.id), n(1), 100); // extends a, wins
        assert_eq!(ledger.mined_count(), 4);
        assert_eq!(ledger.main_chain(), vec![g.id, a.id, b.id]);
        assert_eq!(ledger.stale_count(), 1);
        assert!((ledger.stale_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tie_at_same_height_resolved_by_earliest() {
        let mut ledger = BlockLedger::new();
        let g = ledger.mint(None, n(0), 100);
        let a = ledger.mint(Some(g.id), n(1), 100);
        let _b = ledger.mint(Some(g.id), n(2), 100);
        assert_eq!(ledger.best_tip(), Some(a.id), "first-mined wins the tie");
    }

    #[test]
    fn chain_state_adopts_longest() {
        let mut ledger = BlockLedger::new();
        let g = ledger.mint(None, n(0), 100);
        let a = ledger.mint(Some(g.id), n(1), 100);
        let fork = ledger.mint(Some(g.id), n(2), 100);
        let mut chain = ChainState::new();
        assert!(chain.adopt(&g));
        assert!(chain.adopt(&a));
        assert_eq!(chain.tip, Some(a.id));
        // Same-height competitor does not displace the first-seen tip.
        assert!(!chain.adopt(&fork));
        assert_eq!(chain.tip, Some(a.id));
        assert_eq!(chain.tip_height, 1);
        // Re-adopting is a no-op.
        assert!(!chain.adopt(&a));
    }

    #[test]
    fn chain_state_knows_all_stages() {
        let mut chain = ChainState::new();
        chain.inflight.insert(BlockId::from_raw(7));
        assert!(chain.knows(BlockId::from_raw(7)));
        chain.clear();
        assert!(!chain.knows(BlockId::from_raw(7)));
    }

    #[test]
    fn empty_ledger_behaviour() {
        let ledger = BlockLedger::new();
        assert_eq!(ledger.best_tip(), None);
        assert!(ledger.main_chain().is_empty());
        assert_eq!(ledger.stale_rate(), 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(BlockId::from_raw(255).to_string(), "blkff");
    }
}
