//! Per-pair internet route stretch.
//!
//! Great-circle distance underestimates internet latency non-uniformly:
//! BGP peering agreements and routing detours make *some* geographically
//! close pairs slow and some far pairs comparatively fast. The paper's
//! central argument for BCBPT over LBC rests on this decorrelation (§V.C:
//! "dynamics of internet routing, as caused by BGP ... can also result in
//! surprising situations that closest differs between geographical and
//! topological terms").
//!
//! [`RouteTable`] produces a deterministic, symmetric, lognormal
//! multiplicative factor per node pair with mean 1 — a fixed "shape of the
//! internet" for a given seed that node placement cannot predict.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Deterministic per-pair route-stretch factors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouteTable {
    seed: u64,
    sigma: f64,
}

impl RouteTable {
    /// Creates a table with the given seed and lognormal σ.
    ///
    /// # Panics
    ///
    /// Panics when `sigma` is negative or non-finite.
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "route sigma must be a non-negative finite number"
        );
        RouteTable { seed, sigma }
    }

    /// The lognormal σ in use.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The stretch factor for the pair `(a, b)`.
    ///
    /// Symmetric (`stretch(a, b) == stretch(b, a)`), deterministic in the
    /// seed, lognormally distributed across pairs with mean 1.
    pub fn stretch(&self, a: NodeId, b: NodeId) -> f64 {
        if self.sigma == 0.0 || a == b {
            return 1.0;
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let base = splitmix(self.seed ^ (u64::from(lo.as_u32()) << 32 | u64::from(hi.as_u32())));
        // Irwin–Hall approximation of a standard normal: the sum of 12
        // uniforms minus 6. Deterministic and allocation-free.
        let mut z = -6.0f64;
        let mut h = base;
        for _ in 0..12 {
            h = splitmix(h);
            z += (h >> 11) as f64 / (1u64 << 53) as f64;
        }
        // Lognormal with mean 1: exp(σz − σ²/2).
        (self.sigma * z - self.sigma * self.sigma / 2.0).exp()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn symmetric_and_deterministic() {
        let t = RouteTable::new(7, 0.35);
        for i in 0..20u32 {
            for j in 0..20u32 {
                assert_eq!(t.stretch(n(i), n(j)), t.stretch(n(j), n(i)));
            }
        }
        let t2 = RouteTable::new(7, 0.35);
        assert_eq!(t.stretch(n(1), n(2)), t2.stretch(n(1), n(2)));
    }

    #[test]
    fn different_seeds_give_different_internets() {
        let a = RouteTable::new(1, 0.35);
        let b = RouteTable::new(2, 0.35);
        let diff = (0..100u32)
            .filter(|&i| (a.stretch(n(i), n(i + 1)) - b.stretch(n(i), n(i + 1))).abs() > 1e-12)
            .count();
        assert!(diff > 90);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let t = RouteTable::new(9, 0.0);
        assert_eq!(t.stretch(n(0), n(1)), 1.0);
    }

    #[test]
    fn self_pair_is_identity() {
        let t = RouteTable::new(9, 0.5);
        assert_eq!(t.stretch(n(3), n(3)), 1.0);
    }

    #[test]
    fn factors_positive_with_mean_near_one() {
        let t = RouteTable::new(42, 0.35);
        let mut sum = 0.0;
        let mut count = 0.0;
        for i in 0..200u32 {
            for j in (i + 1)..200u32 {
                let s = t.stretch(n(i), n(j));
                assert!(s > 0.0);
                sum += s;
                count += 1.0;
            }
        }
        let mean = sum / count;
        assert!((mean - 1.0).abs() < 0.02, "mean stretch {mean}");
    }

    #[test]
    fn spread_matches_sigma_roughly() {
        let t = RouteTable::new(42, 0.35);
        let mut slow = 0usize;
        let mut total = 0usize;
        for i in 0..100u32 {
            for j in (i + 1)..100u32 {
                total += 1;
                if t.stretch(n(i), n(j)) > 1.5 {
                    slow += 1;
                }
            }
        }
        let frac = slow as f64 / total as f64;
        // P(lognormal(−σ²/2, σ=0.35) > 1.5) ≈ 7%.
        assert!(
            (0.02..0.15).contains(&frac),
            "slow-pair fraction {frac} implausible"
        );
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn invalid_sigma_rejected() {
        RouteTable::new(0, -1.0);
    }
}
