//! End-to-end checks: mined blocks propagate to every node under each
//! relay strategy, and the waste accounting sees what it should see.

use bcbpt_geo::LatencyConfig;
use bcbpt_net::{MessageKind, NetConfig, Network, RandomPolicy, RelaySpec};
use bcbpt_relay::registry;

fn mining_net(seed: u64, relay: &str) -> Network {
    let config = NetConfig {
        num_nodes: 40,
        latency: LatencyConfig::noiseless(),
        ..NetConfig::default()
    };
    let mut net = Network::build(config, Box::new(RandomPolicy::new()), seed).unwrap();
    net.install_relay(registry().build(&RelaySpec::new(relay)).unwrap());
    net.warmup_ms(3_000.0);
    net.enable_mining(2_000.0);
    net
}

fn assert_blocks_propagate(relay: &str) {
    let mut net = mining_net(97, relay);
    net.run_for_ms(60_000.0);
    assert_eq!(net.relay_name(), RelaySpec::new(relay).family());
    let mined = net.ledger().mined_count();
    assert!(mined >= 10, "{relay}: expected steady mining, got {mined}");
    assert!(
        net.ledger().stale_rate() < 0.5,
        "{relay}: stale rate {}",
        net.ledger().stale_rate()
    );
    assert!(
        net.tip_agreement() > 0.5,
        "{relay}: agreement {}",
        net.tip_agreement()
    );
    assert!(
        net.block_delay_mean_ms() > 0.0,
        "{relay}: delay telemetry must be live under an installed relay"
    );
    let report = net.stats().bandwidth_report();
    assert!(report.bytes_on_wire > 0);
    assert!(report.waste_ratio.is_finite());
}

#[test]
fn compact_relay_propagates_blocks() {
    assert_blocks_propagate("compact");
}

#[test]
fn rlnc_relay_propagates_blocks() {
    assert_blocks_propagate("rlnc(chunks=8)");
}

#[test]
fn full_relay_via_registry_propagates_blocks() {
    assert_blocks_propagate("full");
}

#[test]
fn rlnc_counts_dependent_pieces_as_waste() {
    let mut net = mining_net(31, "rlnc(chunks=4)");
    net.run_for_ms(90_000.0);
    // With every neighbor pushing pieces of the same generation, some
    // arrivals land after the receiver already reached full rank or are
    // linearly dependent — both must show up as redundant coded bytes.
    assert!(
        net.stats().redundant_count(MessageKind::CodedPiece) > 0,
        "no dependent/late coded pieces recorded"
    );
    assert!(net.stats().redundant_bytes(MessageKind::CodedPiece) > 0);
    let report = net.stats().bandwidth_report();
    assert!(report.redundant_bytes > 0);
    assert!(report.waste_ratio > 0.0 && report.waste_ratio < 1.0);
}

#[test]
fn frugal_strategies_waste_less_than_full() {
    let waste = |relay: &str| {
        let mut net = mining_net(55, relay);
        net.run_for_ms(60_000.0);
        net.stats().bandwidth_report().waste_ratio
    };
    let full = waste("full");
    let compact = waste("compact");
    let rlnc = waste("rlnc(chunks=8)");
    assert!(
        compact < full,
        "compact ({compact}) must waste less than full ({full})"
    );
    assert!(
        rlnc < full,
        "rlnc ({rlnc}) must waste less than full ({full})"
    );
}

#[test]
fn relay_runs_are_deterministic_per_seed() {
    let fingerprint = |seed: u64| {
        let mut net = mining_net(seed, "rlnc(chunks=6)");
        net.run_for_ms(30_000.0);
        (
            net.ledger().mined_count(),
            net.stats().total_messages(),
            net.stats().total_redundant_bytes(),
        )
    };
    assert_eq!(fingerprint(3), fingerprint(3));
    assert_ne!(fingerprint(3), fingerprint(4));
}
