//! Block-relay strategies beyond the legacy full-body path.
//!
//! `bcbpt-net` owns the [`RelayStrategy`] seam and ships the `full`
//! builtin (inv → getdata → full body). This crate supplies the two
//! bandwidth-frugal alternatives the relay experiments sweep over:
//!
//! - [`CompactRelay`] (`compact`) — BIP152-style: announce the header plus
//!   short transaction ids, pull only the transactions missing from the
//!   receiver's mempool.
//! - [`RlncRelay`] (`rlnc`) — random linear network coding over GF(256):
//!   blocks are split into chunks, peers push coded pieces, and receivers
//!   pull until their decode matrix reaches full rank. Linearly dependent
//!   pieces are counted as wasted bandwidth.
//!
//! [`registry`] returns a [`RelayRegistry`] that resolves all three
//! families, which is what the scenario runner uses to honor a scenario's
//! `relay` spec:
//!
//! ```
//! let registry = bcbpt_relay::registry();
//! let relay = registry.build(&"rlnc(chunks=8)".into()).unwrap();
//! assert_eq!(relay.name(), "rlnc");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;

mod compact;
mod rlnc;

pub use bcbpt_net::{RelayRegistry, RelaySpec, RelayStrategy};
pub use compact::CompactRelay;
pub use gf256::DecodeMatrix;
pub use rlnc::RlncRelay;

/// A registry resolving every relay family this workspace ships: `full`
/// (from `bcbpt-net`), `compact` and `rlnc` (from this crate).
pub fn registry() -> RelayRegistry {
    let mut registry = RelayRegistry::builtins();
    registry.register(CompactRelay::FAMILY, |spec: &RelaySpec| {
        Ok(Box::new(CompactRelay::from_spec(spec)?))
    });
    registry.register(RlncRelay::FAMILY, |spec: &RelaySpec| {
        Ok(Box::new(RlncRelay::from_spec(spec)?))
    });
    registry
}

/// Parses a float-valued relay argument.
fn parse_f64(key: &str, v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .map_err(|_| format!("relay argument {key}={v:?} is not a number"))
}

/// Parses an integer-valued relay argument.
fn parse_usize(key: &str, v: &str) -> Result<usize, String> {
    v.parse::<usize>()
        .map_err(|_| format!("relay argument {key}={v:?} is not an integer"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_resolves_all_three_families() {
        let registry = registry();
        let mut families: Vec<_> = registry.families().collect();
        families.sort_unstable();
        assert_eq!(families, ["compact", "full", "rlnc"]);
        for spec in ["full", "compact", "rlnc(chunks=4)"] {
            let relay = registry.build(&RelaySpec::new(spec)).unwrap();
            assert_eq!(relay.name(), RelaySpec::new(spec).family());
        }
        let err = registry
            .build(&RelaySpec::new("carrier_pigeon"))
            .unwrap_err();
        assert!(err.contains("unknown relay family"), "{err}");
        assert!(err.contains("compact, full, rlnc"), "{err}");
    }
}
