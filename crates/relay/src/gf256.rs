//! GF(256) arithmetic and the incremental decode matrix RLNC rank
//! tracking runs on.
//!
//! The field is GF(2⁸) with the primitive polynomial `x⁸+x⁴+x³+x²+1`
//! (0x11d) and generator 2 — the standard Reed–Solomon/RLNC field.
//! Multiplication goes through log/exp tables built once on first use;
//! the decode matrix keeps received coefficient vectors in row-echelon
//! form so deciding whether a new coded piece is innovative is one
//! reduction pass.

use std::sync::OnceLock;

/// The reduction polynomial (without the leading x⁸ term).
const POLY: u16 = 0x11d;

struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Duplicate the exp table so mul never needs a modular reduction
        // of the summed logs.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

/// Adds (= subtracts) two field elements.
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse of a non-zero element.
///
/// # Panics
///
/// Panics on 0, which has no inverse.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "0 has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Incremental Gaussian elimination over coding-coefficient vectors: feed
/// each received piece's coefficients in, learn whether it was innovative,
/// and read the current rank. Decoding the block succeeds exactly when the
/// rank reaches the chunk count.
///
/// # Examples
///
/// ```
/// use bcbpt_relay::DecodeMatrix;
///
/// let mut m = DecodeMatrix::new(2);
/// assert!(m.absorb(&[1, 2]));
/// assert!(!m.absorb(&[2, 4]), "a scalar multiple is dependent");
/// assert!(m.absorb(&[0, 1]));
/// assert!(m.is_complete());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DecodeMatrix {
    chunks: usize,
    /// Row-echelon rows as `(pivot column, normalized coefficients)`.
    rows: Vec<(usize, Vec<u8>)>,
}

impl DecodeMatrix {
    /// An empty matrix over `chunks` coding dimensions.
    pub fn new(chunks: usize) -> Self {
        DecodeMatrix {
            chunks,
            rows: Vec::new(),
        }
    }

    /// Current rank: number of linearly independent pieces absorbed.
    pub fn rank(&self) -> usize {
        self.rows.len()
    }

    /// Whether the rank reached the chunk count — the block is decodable.
    pub fn is_complete(&self) -> bool {
        self.rank() == self.chunks
    }

    /// Absorbs one coefficient vector. Returns `true` when it was
    /// innovative (increased the rank), `false` when it was linearly
    /// dependent on what was already received — wasted bandwidth.
    ///
    /// # Panics
    ///
    /// Panics when `coeffs` does not have one entry per chunk.
    pub fn absorb(&mut self, coeffs: &[u8]) -> bool {
        assert_eq!(
            coeffs.len(),
            self.chunks,
            "coefficient vector length must equal the chunk count"
        );
        let mut v = coeffs.to_vec();
        for (pivot, row) in &self.rows {
            let factor = v[*pivot];
            if factor != 0 {
                for (vi, ri) in v.iter_mut().zip(row) {
                    *vi = add(*vi, mul(factor, *ri));
                }
            }
        }
        let Some(pivot) = v.iter().position(|&c| c != 0) else {
            return false;
        };
        let scale = inv(v[pivot]);
        for c in &mut v {
            *c = mul(*c, scale);
        }
        self.rows.push((pivot, v));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a * a^-1 == 1 for a={a}");
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
        }
        // Distributivity on a sample grid.
        for &a in &[1u8, 7, 93, 200, 255] {
            for &b in &[2u8, 19, 144, 254] {
                for &c in &[5u8, 77, 201] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
        // Commutativity and associativity samples.
        assert_eq!(mul(87, 131), mul(131, 87));
        assert_eq!(mul(mul(3, 7), 11), mul(3, mul(7, 11)));
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_has_no_inverse() {
        inv(0);
    }

    #[test]
    fn rank_grows_only_on_innovative_pieces() {
        let mut m = DecodeMatrix::new(3);
        assert_eq!(m.rank(), 0);
        assert!(m.absorb(&[1, 0, 0]));
        assert!(m.absorb(&[1, 1, 0]));
        assert_eq!(m.rank(), 2);
        // In the span of the first two.
        assert!(!m.absorb(&[0, 1, 0]));
        assert_eq!(m.rank(), 2);
        assert!(!m.is_complete());
        assert!(m.absorb(&[5, 6, 7]));
        assert!(m.is_complete());
        // Everything is dependent once complete.
        assert!(!m.absorb(&[9, 13, 200]));
        assert_eq!(m.rank(), 3);
    }

    #[test]
    fn zero_vector_is_never_innovative() {
        let mut m = DecodeMatrix::new(4);
        assert!(!m.absorb(&[0, 0, 0, 0]));
        assert_eq!(m.rank(), 0);
    }

    #[test]
    fn random_combinations_of_absorbed_rows_are_dependent() {
        let mut m = DecodeMatrix::new(4);
        let basis = [[1u8, 2, 3, 4], [5, 6, 7, 8], [9, 10, 200, 12]];
        for b in &basis {
            assert!(m.absorb(b));
        }
        // a*b0 + b*b1 + c*b2 for a few scalar choices.
        for (a, b, c) in [(1u8, 1u8, 1u8), (7, 0, 3), (255, 254, 253)] {
            let combo: Vec<u8> = (0..4)
                .map(|i| {
                    add(
                        add(mul(a, basis[0][i]), mul(b, basis[1][i])),
                        mul(c, basis[2][i]),
                    )
                })
                .collect();
            assert!(!m.absorb(&combo), "combination {combo:?} must be dependent");
        }
        assert_eq!(m.rank(), 3);
    }
}
