//! Random linear network coding relay: block bodies are split into
//! chunks, peers exchange GF(256)-coded pieces, and a receiver decodes
//! once it has gathered a full-rank set of coefficient vectors.

use std::collections::BTreeMap;

use bcbpt_net::{Block, BlockId, Message, MessageKind, NodeId, RelayNet, RelaySpec, RelayStrategy};
use rand::RngCore;

use crate::gf256::DecodeMatrix;

/// Network-coded block relay (`rlnc`).
///
/// The sender splits each block body into `chunks` equal chunks and pushes
/// one random linear combination (a *coded piece*) to every peer. A
/// receiver tracks the rank of the coefficient vectors it has absorbed per
/// block and pulls exactly `chunks - rank` more pieces when the first one
/// arrives; linearly dependent pieces and pieces for already-decoded
/// blocks are counted as wasted bandwidth.
///
/// Spec grammar: `rlnc`, `rlnc(chunks=16)`, `rlnc(chunks=16, overhead=1.05)`
/// — `chunks` is the generation size, `overhead` the per-piece coded size
/// inflation factor relative to `block_size / chunks`.
#[derive(Debug, Clone)]
pub struct RlncRelay {
    chunks: usize,
    overhead: f64,
    /// Per-(receiver, block) decode state. Entries are dropped as soon as
    /// the block decodes or the node leaves.
    decoders: BTreeMap<(NodeId, BlockId), DecodeMatrix>,
}

impl RlncRelay {
    /// The spec family this strategy answers to.
    pub const FAMILY: &'static str = "rlnc";

    /// Creates the strategy.
    ///
    /// # Errors
    ///
    /// Rejects a chunk count of zero or a coded overhead factor that is
    /// not finite or below 1.
    pub fn new(chunks: usize, overhead: f64) -> Result<Self, String> {
        if chunks == 0 {
            return Err("rlnc chunk count must be at least 1".to_string());
        }
        if chunks > 255 {
            return Err(format!(
                "rlnc chunk count must fit one GF(256) generation (<= 255), got {chunks}"
            ));
        }
        if !overhead.is_finite() || overhead < 1.0 {
            return Err(format!(
                "rlnc coded overhead factor must be finite and >= 1, got {overhead}"
            ));
        }
        Ok(RlncRelay {
            chunks,
            overhead,
            decoders: BTreeMap::new(),
        })
    }

    /// Parses an `rlnc(...)` spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid argument.
    pub fn from_spec(spec: &RelaySpec) -> Result<Self, String> {
        let mut chunks = 16usize;
        let mut overhead = 1.05f64;
        for (k, v) in spec.args()? {
            match k.as_str() {
                "chunks" => chunks = crate::parse_usize(&k, &v)?,
                "overhead" => overhead = crate::parse_f64(&k, &v)?,
                other => return Err(format!("unknown argument {other:?} in relay spec {spec}")),
            }
        }
        RlncRelay::new(chunks, overhead)
    }

    /// On-wire payload size of one coded piece of `block`.
    fn piece_bytes(&self, block: &Block) -> u32 {
        let chunk = block.size_bytes as f64 / self.chunks as f64;
        (chunk * self.overhead).ceil().max(1.0) as u32
    }

    /// Draws a fresh random coefficient vector from the relay RNG stream.
    /// The all-zero vector carries no information, so it is nudged onto
    /// the first basis vector instead.
    fn draw_coeffs(&self, net: &mut RelayNet<'_>) -> Vec<u8> {
        let mut coeffs = vec![0u8; self.chunks];
        net.rng().fill_bytes(&mut coeffs);
        if coeffs.iter().all(|&c| c == 0) {
            coeffs[0] = 1;
        }
        coeffs
    }

    /// Sends `count` freshly coded pieces of `block` from `from` to `to`.
    fn send_pieces(
        &self,
        from: NodeId,
        to: NodeId,
        block: &Block,
        count: usize,
        net: &mut RelayNet<'_>,
    ) {
        let piece_bytes = self.piece_bytes(block);
        for _ in 0..count {
            let coeffs = self.draw_coeffs(net);
            net.send(
                from,
                to,
                Message::CodedPiece {
                    block: *block,
                    coeffs,
                    piece_bytes,
                },
            );
        }
    }
}

impl RelayStrategy for RlncRelay {
    fn name(&self) -> &'static str {
        "rlnc"
    }

    fn clone_box(&self) -> Box<dyn RelayStrategy> {
        Box::new(self.clone())
    }

    fn announce(
        &mut self,
        node: NodeId,
        block: &Block,
        exclude: Option<NodeId>,
        net: &mut RelayNet<'_>,
    ) {
        // The announcer holds the full body; any partial decode state it
        // accumulated while pulling is obsolete.
        self.decoders.remove(&(node, block.id));
        let peers = net.take_peers(node, exclude);
        for &p in &peers {
            self.send_pieces(node, p, block, 1, net);
        }
        net.restore_peers(peers);
    }

    fn on_message(&mut self, from: NodeId, to: NodeId, msg: Message, net: &mut RelayNet<'_>) {
        match msg {
            Message::CodedPiece {
                block, ref coeffs, ..
            } => {
                let chain = net.chain(to);
                if chain.known.contains(&block.id) || chain.verifying.contains(&block.id) {
                    // Piece for a block this node already decoded.
                    net.record_redundant(MessageKind::CodedPiece, msg.wire_size_bytes() as u64);
                    return;
                }
                let decoder = self
                    .decoders
                    .entry((to, block.id))
                    .or_insert_with(|| DecodeMatrix::new(self.chunks));
                if coeffs.len() != self.chunks {
                    // A piece coded under a different generation size can
                    // never help this decoder.
                    net.record_redundant(MessageKind::CodedPiece, msg.wire_size_bytes() as u64);
                    return;
                }
                if !decoder.absorb(coeffs) {
                    // Linearly dependent on what was already received.
                    net.record_redundant(MessageKind::CodedPiece, msg.wire_size_bytes() as u64);
                    return;
                }
                if decoder.is_complete() {
                    self.decoders.remove(&(to, block.id));
                    let chain = net.chain_mut(to);
                    chain.inflight.remove(&block.id);
                    chain.verifying.insert(block.id);
                    net.schedule_block_verify(to, &block, from);
                } else if !net.chain(to).inflight.contains(&block.id) {
                    // First innovative piece: pull the remainder of the
                    // generation from whoever pushed it.
                    let missing = self.chunks - self.decoders[&(to, block.id)].rank();
                    net.chain_mut(to).inflight.insert(block.id);
                    net.schedule_block_timeout(to, block.id);
                    net.send(
                        to,
                        from,
                        Message::GetPiece {
                            block: block.id,
                            pieces: missing as u32,
                        },
                    );
                }
            }
            Message::GetPiece { block: id, pieces } if net.chain(to).known.contains(&id) => {
                if let Some(block) = net.block(id) {
                    self.send_pieces(to, from, &block, pieces as usize, net);
                }
            }
            Message::GetPiece { .. } => {}
            // Full-body and compact traffic is not ours.
            _ => {}
        }
    }

    fn on_leave(&mut self, node: NodeId) {
        self.decoders.retain(|&(n, _), _| n != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_and_validation() {
        let relay = RlncRelay::from_spec(&RelaySpec::new("rlnc")).unwrap();
        assert_eq!(relay.name(), "rlnc");
        assert!(RlncRelay::from_spec(&RelaySpec::new("rlnc(chunks=4, overhead=1.2)")).is_ok());

        let err = RlncRelay::from_spec(&RelaySpec::new("rlnc(chunks=0)")).unwrap_err();
        assert!(err.contains("chunk count must be at least 1"), "{err}");
        let err = RlncRelay::from_spec(&RelaySpec::new("rlnc(chunks=400)")).unwrap_err();
        assert!(err.contains("<= 255"), "{err}");
        let err = RlncRelay::from_spec(&RelaySpec::new("rlnc(overhead=0.5)")).unwrap_err();
        assert!(err.contains("finite and >= 1"), "{err}");
        let err = RlncRelay::from_spec(&RelaySpec::new("rlnc(overhead=inf)")).unwrap_err();
        assert!(
            err.contains("finite and >= 1") || err.contains("not a number"),
            "{err}"
        );
        let err = RlncRelay::from_spec(&RelaySpec::new("rlnc(pieces=2)")).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
    }

    #[test]
    fn piece_bytes_reflect_chunking_and_overhead() {
        let relay = RlncRelay::new(10, 1.05).unwrap();
        let block = Block {
            id: BlockId::from_raw(1),
            parent: None,
            height: 1,
            miner: NodeId::from_index(0),
            size_bytes: 10_000,
        };
        assert_eq!(relay.piece_bytes(&block), 1050);

        let single = RlncRelay::new(1, 1.0).unwrap();
        assert_eq!(single.piece_bytes(&block), 10_000);
    }
}
