//! BIP152-style compact block relay: announce the header plus short
//! transaction ids, pull only the transactions the receiver is missing.

use bcbpt_net::{Block, Message, MessageKind, NodeId, RelayNet, RelaySpec, RelayStrategy};

/// Bytes per short id on the wire (`Message::CmpctBlock` sizes its
/// announcement in these units).
const WIRE_SHORT_ID_BYTES: f64 = 6.0;

/// Compact block relay (`compact`, BIP152 high-bandwidth mode).
///
/// Announcements carry the block header plus one short id per transaction;
/// a receiver that already holds `known` of the body's transactions pulls
/// only the missing remainder via `GetBlockTxn`/`BlockTxn`. The only bytes
/// a compact exchange wastes are duplicate announcements and duplicate
/// transaction batches.
///
/// Spec grammar: `compact`, `compact(known=0.95)`,
/// `compact(known=0.95, shortid=6)` — `known` is the mempool-overlap
/// fraction, `shortid` the width in bytes of one short id.
#[derive(Debug, Clone)]
pub struct CompactRelay {
    known_fraction: f64,
    short_id_bytes: usize,
}

impl CompactRelay {
    /// The spec family this strategy answers to.
    pub const FAMILY: &'static str = "compact";

    /// Creates the strategy.
    ///
    /// # Errors
    ///
    /// Rejects a known fraction outside `[0, 1]` or a non-positive short
    /// id size.
    pub fn new(known_fraction: f64, short_id_bytes: usize) -> Result<Self, String> {
        if !(0.0..=1.0).contains(&known_fraction) || !known_fraction.is_finite() {
            return Err(format!(
                "compact known fraction must be within [0, 1], got {known_fraction}"
            ));
        }
        if short_id_bytes == 0 {
            return Err("compact short id size must be > 0 bytes".to_string());
        }
        Ok(CompactRelay {
            known_fraction,
            short_id_bytes,
        })
    }

    /// Parses a `compact(...)` spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid argument.
    pub fn from_spec(spec: &RelaySpec) -> Result<Self, String> {
        let mut known = bcbpt_net::DEFAULT_KNOWN_TX_FRACTION;
        let mut short_id_bytes = 6usize;
        for (k, v) in spec.args()? {
            match k.as_str() {
                "known" => known = crate::parse_f64(&k, &v)?,
                "shortid" => short_id_bytes = crate::parse_usize(&k, &v)?,
                other => return Err(format!("unknown argument {other:?} in relay spec {spec}")),
            }
        }
        CompactRelay::new(known, short_id_bytes)
    }

    /// Number of transactions a block body holds, in the simulator's
    /// uniform-transaction model.
    fn txs_in_block(block: &Block, net: &RelayNet<'_>) -> u32 {
        let tx_size = net.config().tx_size_bytes.max(1);
        (block.size_bytes as f64 / tx_size as f64).ceil().max(1.0) as u32
    }

    /// Short-id count for an announcement: one per transaction, scaled so
    /// the wire size honestly reflects the configured short-id width in
    /// the message's fixed six-byte wire units.
    fn short_ids(&self, txs: u32) -> u32 {
        (txs as f64 * self.short_id_bytes as f64 / WIRE_SHORT_ID_BYTES)
            .ceil()
            .max(1.0) as u32
    }
}

impl RelayStrategy for CompactRelay {
    fn name(&self) -> &'static str {
        "compact"
    }

    fn clone_box(&self) -> Box<dyn RelayStrategy> {
        Box::new(self.clone())
    }

    fn announce(
        &mut self,
        node: NodeId,
        block: &Block,
        exclude: Option<NodeId>,
        net: &mut RelayNet<'_>,
    ) {
        let short_ids = self.short_ids(Self::txs_in_block(block, net));
        let peers = net.take_peers(node, exclude);
        for &p in &peers {
            net.send(
                node,
                p,
                Message::CmpctBlock {
                    block: *block,
                    short_ids,
                },
            );
        }
        net.restore_peers(peers);
    }

    fn on_message(&mut self, from: NodeId, to: NodeId, msg: Message, net: &mut RelayNet<'_>) {
        match msg {
            Message::CmpctBlock { block, .. } => {
                if net.chain(to).knows(block.id) {
                    // Duplicate announcement — the whole compact message
                    // was wasted.
                    net.record_redundant(MessageKind::CmpctBlock, msg.wire_size_bytes() as u64);
                    return;
                }
                let txs = Self::txs_in_block(&block, net);
                let missing = ((1.0 - self.known_fraction) * txs as f64).ceil() as u32;
                if missing == 0 {
                    // Everything reconstructable from the mempool: verify
                    // straight away.
                    net.chain_mut(to).verifying.insert(block.id);
                    net.schedule_block_verify(to, &block, from);
                } else {
                    net.chain_mut(to).inflight.insert(block.id);
                    net.schedule_block_timeout(to, block.id);
                    net.send(
                        to,
                        from,
                        Message::GetBlockTxn {
                            block: block.id,
                            indexes: missing,
                        },
                    );
                }
            }
            Message::GetBlockTxn { block: id, indexes } if net.chain(to).known.contains(&id) => {
                if let Some(block) = net.block(id) {
                    let tx_size = net.config().tx_size_bytes;
                    let tx_bytes =
                        (indexes as u64 * tx_size as u64).min(block.size_bytes as u64) as u32;
                    net.send(
                        to,
                        from,
                        Message::BlockTxn {
                            block: id,
                            tx_count: indexes,
                            tx_bytes,
                        },
                    );
                }
            }
            Message::GetBlockTxn { .. } => {}
            Message::BlockTxn { block: id, .. } => {
                let chain = net.chain(to);
                if chain.known.contains(&id) || chain.verifying.contains(&id) {
                    // A second batch for a block already reconstructed.
                    net.record_redundant(MessageKind::BlockTxn, msg.wire_size_bytes() as u64);
                    return;
                }
                let Some(block) = net.block(id) else {
                    return;
                };
                let chain = net.chain_mut(to);
                chain.inflight.remove(&id);
                chain.verifying.insert(id);
                net.schedule_block_verify(to, &block, from);
            }
            // Full-body and coded traffic is not ours.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing_and_validation() {
        let relay = CompactRelay::from_spec(&RelaySpec::new("compact")).unwrap();
        assert_eq!(relay.name(), "compact");
        assert!(CompactRelay::from_spec(&RelaySpec::new("compact(known=0.5, shortid=8)")).is_ok());

        let err = CompactRelay::from_spec(&RelaySpec::new("compact(known=2)")).unwrap_err();
        assert!(err.contains("within [0, 1]"), "{err}");
        let err = CompactRelay::from_spec(&RelaySpec::new("compact(shortid=0)")).unwrap_err();
        assert!(err.contains("short id size must be > 0"), "{err}");
        let err = CompactRelay::from_spec(&RelaySpec::new("compact(ids=3)")).unwrap_err();
        assert!(err.contains("unknown argument"), "{err}");
        let err = CompactRelay::from_spec(&RelaySpec::new("compact(shortid=x)")).unwrap_err();
        assert!(err.contains("not an integer"), "{err}");
    }

    #[test]
    fn short_id_count_scales_with_width() {
        let six = CompactRelay::new(0.95, 6).unwrap();
        let three = CompactRelay::new(0.95, 3).unwrap();
        assert_eq!(six.short_ids(400), 400);
        assert_eq!(three.short_ids(400), 200, "half-width ids halve the units");
    }
}
