//! The per-job event log: an append-only list of serialized
//! [`RunEvent`](bcbpt_core::RunEvent) lines with blocking fan-out to any
//! number of subscribers.
//!
//! Every subscriber replays the log from line zero and then tails it, so a
//! reader that connects after the job finished sees exactly the same
//! byte stream as one that watched live — the service's streaming
//! contract (each stream ends in `scenario_completed` unless the job was
//! parked or failed, in which case the chunked stream is cut without a
//! terminator).

use std::sync::{Arc, Condvar, Mutex};

/// What a subscriber gets back from [`EventLog::next`].
pub enum Next {
    /// The next line of the stream (without trailing newline).
    Line(Arc<str>),
    /// The log is complete: every line was delivered and the producer
    /// called [`EventLog::finish`].
    Done,
    /// The log was aborted (job parked or failed, or the service shut
    /// down): every line so far was delivered but no terminator follows.
    Aborted,
}

struct LogState {
    lines: Vec<Arc<str>>,
    done: bool,
    aborted: bool,
}

/// An append-once, read-many log of serialized event lines. Producers
/// [`push`](Self::push) then [`finish`](Self::finish) (or
/// [`abort`](Self::abort)); each subscriber walks its own cursor through
/// [`next`](Self::next).
pub struct EventLog {
    state: Mutex<LogState>,
    wake: Condvar,
}

impl EventLog {
    /// An empty, open log.
    pub fn new() -> Self {
        EventLog {
            state: Mutex::new(LogState {
                lines: Vec::new(),
                done: false,
                aborted: false,
            }),
            wake: Condvar::new(),
        }
    }

    /// A log pre-seeded with `lines` and already finished — how cache
    /// hits replay a stored stream.
    pub fn completed(lines: Vec<String>) -> Self {
        let log = EventLog::new();
        {
            let mut state = log.state.lock().expect("event log lock");
            state.lines = lines.into_iter().map(Arc::from).collect();
            state.done = true;
        }
        log
    }

    /// Appends one line (no trailing newline) and wakes subscribers.
    /// Ignored after `finish`/`abort`.
    pub fn push(&self, line: String) {
        let mut state = self.state.lock().expect("event log lock");
        if state.done || state.aborted {
            return;
        }
        state.lines.push(Arc::from(line));
        drop(state);
        self.wake.notify_all();
    }

    /// Marks the log complete: subscribers drain the remaining lines and
    /// then see [`Next::Done`].
    pub fn finish(&self) {
        let mut state = self.state.lock().expect("event log lock");
        state.done = true;
        drop(state);
        self.wake.notify_all();
    }

    /// Marks the log aborted: subscribers drain the remaining lines and
    /// then see [`Next::Aborted`]. A `finish`ed log stays finished.
    pub fn abort(&self) {
        let mut state = self.state.lock().expect("event log lock");
        if !state.done {
            state.aborted = true;
        }
        drop(state);
        self.wake.notify_all();
    }

    /// `true` once [`finish`] was called.
    ///
    /// [`finish`]: Self::finish
    pub fn is_done(&self) -> bool {
        self.state.lock().expect("event log lock").done
    }

    /// Blocks until line `cursor` exists (returning it) or the log ended.
    pub fn next(&self, cursor: usize) -> Next {
        let mut state = self.state.lock().expect("event log lock");
        loop {
            if let Some(line) = state.lines.get(cursor) {
                return Next::Line(Arc::clone(line));
            }
            if state.done {
                return Next::Done;
            }
            if state.aborted {
                return Next::Aborted;
            }
            state = self.wake.wait(state).expect("event log lock");
        }
    }

    /// A snapshot of every line pushed so far (the persisted stream).
    pub fn lines(&self) -> Vec<Arc<str>> {
        self.state.lock().expect("event log lock").lines.clone()
    }
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn subscribers_replay_then_tail_then_terminate() {
        let log = Arc::new(EventLog::new());
        log.push("a".to_string());
        let tail = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                let mut cursor = 0;
                loop {
                    match log.next(cursor) {
                        Next::Line(line) => {
                            seen.push(line.to_string());
                            cursor += 1;
                        }
                        Next::Done => return (seen, true),
                        Next::Aborted => return (seen, false),
                    }
                }
            })
        };
        log.push("b".to_string());
        log.finish();
        log.push("ignored after finish".to_string());
        let (seen, done) = tail.join().expect("subscriber thread");
        assert_eq!(seen, ["a", "b"]);
        assert!(done);
    }

    #[test]
    fn abort_delivers_the_prefix_without_a_terminator() {
        let log = EventLog::new();
        log.push("a".to_string());
        log.abort();
        assert!(matches!(log.next(0), Next::Line(_)));
        assert!(matches!(log.next(1), Next::Aborted));
        assert!(!log.is_done());
    }
}
