//! The service's persistent state, all of it plain files under one spool
//! directory:
//!
//! ```text
//! <spool>/outcomes/<digest>.json           stored ScenarioOutcome bytes
//! <spool>/outcomes/<digest>.scenario.json  canonical scenario JSON (collision guard)
//! <spool>/events/<digest>.jsonl            the run's serialized event stream
//! <spool>/jobs/<id>/job.json               submitted job (scenario + shard count)
//! <spool>/jobs/<id>/part-<i>.json          completed shard parts
//! <spool>/jobs/<id>/checkpoint-<i>.json    mid-shard checkpoints (PR 6 format)
//! ```
//!
//! Outcomes and events are keyed by [`Scenario::digest`] (canonical
//! content digest, PR 7) so a resubmitted scenario is answered from disk,
//! byte-identically, without re-executing anything. The digest is 64-bit,
//! so a collision is unlikely but representable — every hit is verified
//! against the stored canonical scenario JSON and treated as a miss on
//! mismatch. Job directories are the crash/drain ledger: they appear at
//! submit time, accumulate parts and checkpoints while running, and are
//! removed only once the outcome is durably stored — a restarted service
//! re-enqueues whatever directories remain.
//!
//! All writes are atomic (temp file + rename), matching the driver's
//! checkpoint discipline: a crash leaves the previous state or nothing,
//! never a torn file.

use bcbpt_core::Scenario;
use serde::{Deserialize, Serialize, Value};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Renders a digest the way every file name and API response spells it.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// A job re-discovered by [`Spool::scan_jobs`] after a restart.
pub struct SpooledJob {
    /// The job id it was submitted under (ids stay stable across restarts).
    pub id: String,
    /// How many shards the submission asked for.
    pub shards: usize,
    /// The submitted scenario.
    pub scenario: Scenario,
    /// Already-completed shard parts, by shard index (`None` = not done).
    pub parts: Vec<Option<String>>,
}

/// Handle to one spool directory (see the module docs for the layout).
pub struct Spool {
    root: PathBuf,
}

impl Spool {
    /// Opens (creating if needed) the spool at `root`.
    ///
    /// # Errors
    ///
    /// Directory creation failures.
    pub fn open(root: impl Into<PathBuf>) -> Result<Spool, String> {
        let root = root.into();
        for sub in ["outcomes", "events", "jobs"] {
            let dir = root.join(sub);
            fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
        Ok(Spool { root })
    }

    /// The spool directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn write_atomic(path: &Path, contents: &[u8]) -> Result<(), String> {
        let _timer = crate::obs::spool_write_seconds().start_timer();
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, contents).map_err(|e| format!("{}: {e}", tmp.display()))?;
        fs::rename(&tmp, path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ok(())
    }

    /// `read_to_string` with the spool-read latency histogram around it.
    fn read_timed(path: &Path) -> std::io::Result<String> {
        let _timer = crate::obs::spool_read_seconds().start_timer();
        fs::read_to_string(path)
    }

    fn outcome_path(&self, digest: u64) -> PathBuf {
        self.root
            .join("outcomes")
            .join(format!("{}.json", digest_hex(digest)))
    }

    fn scenario_path(&self, digest: u64) -> PathBuf {
        self.root
            .join("outcomes")
            .join(format!("{}.scenario.json", digest_hex(digest)))
    }

    fn events_path(&self, digest: u64) -> PathBuf {
        self.root
            .join("events")
            .join(format!("{}.jsonl", digest_hex(digest)))
    }

    fn job_dir(&self, id: &str) -> PathBuf {
        self.root.join("jobs").join(id)
    }

    /// Where shard `shard` of job `id` checkpoints its folded prefix.
    pub fn checkpoint_path(&self, id: &str, shard: usize) -> PathBuf {
        self.job_dir(id).join(format!("checkpoint-{shard}.json"))
    }

    fn part_path(&self, id: &str, shard: usize) -> PathBuf {
        self.job_dir(id).join(format!("part-{shard}.json"))
    }

    /// Stores a completed run under its content digest: the outcome
    /// bytes, the canonical scenario JSON guarding against digest
    /// collisions, and the event stream. The outcome lands last so a
    /// stored outcome always implies a stored guard.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn store_outcome(
        &self,
        digest: u64,
        canonical_scenario: &str,
        outcome: &str,
        events: &[Arc<str>],
    ) -> Result<(), String> {
        let mut stream = String::new();
        for line in events {
            stream.push_str(line);
            stream.push('\n');
        }
        Self::write_atomic(&self.scenario_path(digest), canonical_scenario.as_bytes())?;
        Self::write_atomic(&self.events_path(digest), stream.as_bytes())?;
        Self::write_atomic(&self.outcome_path(digest), outcome.as_bytes())
    }

    /// The stored outcome bytes for `digest`, verified against the
    /// canonical scenario JSON — a 64-bit collision (or a torn guard)
    /// reads as a miss, not as somebody else's result.
    pub fn load_outcome(&self, digest: u64, canonical_scenario: &str) -> Option<String> {
        let outcome = Self::read_timed(&self.outcome_path(digest)).ok()?;
        let stored = Self::read_timed(&self.scenario_path(digest)).ok()?;
        (stored == canonical_scenario).then_some(outcome)
    }

    /// The stored event stream for `digest`, one line per event.
    pub fn load_events(&self, digest: u64) -> Option<Vec<String>> {
        let text = Self::read_timed(&self.events_path(digest)).ok()?;
        Some(text.lines().map(str::to_string).collect())
    }

    /// Records a submitted job so a restarted service can resume it.
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn write_job(&self, id: &str, shards: usize, scenario: &Scenario) -> Result<(), String> {
        let dir = self.job_dir(id);
        fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        let record = Value::Map(vec![
            ("id".to_string(), Value::Str(id.to_string())),
            ("shards".to_string(), Value::U64(shards as u64)),
            ("scenario".to_string(), scenario.to_value()),
        ]);
        let json = serde_json::to_string(&record).expect("job record serializes");
        Self::write_atomic(&dir.join("job.json"), json.as_bytes())
    }

    /// Drops job `id`'s directory — called once its outcome is durable.
    pub fn remove_job(&self, id: &str) {
        let _ = fs::remove_dir_all(self.job_dir(id));
    }

    /// Persists a completed shard part (survives a drain so a restart
    /// only re-runs the shards that never finished).
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn write_part(&self, id: &str, shard: usize, part_json: &str) -> Result<(), String> {
        Self::write_atomic(&self.part_path(id, shard), part_json.as_bytes())
    }

    /// Durably persists shard `shard`'s latest checkpoint (atomic write,
    /// same discipline as the driver's `--checkpoint`).
    ///
    /// # Errors
    ///
    /// Write failures.
    pub fn write_checkpoint(&self, id: &str, shard: usize, json: &str) -> Result<(), String> {
        Self::write_atomic(&self.checkpoint_path(id, shard), json.as_bytes())
    }

    /// The checkpoint shard `shard` of job `id` last sealed, if any.
    pub fn load_checkpoint(&self, id: &str, shard: usize) -> Option<String> {
        Self::read_timed(&self.checkpoint_path(id, shard)).ok()
    }

    /// Every job directory still on disk, with whatever parts its shards
    /// completed — the restart work list. Unreadable directories are
    /// skipped (reported via the returned warnings) rather than wedging
    /// startup.
    pub fn scan_jobs(&self) -> (Vec<SpooledJob>, Vec<String>) {
        let mut jobs = Vec::new();
        let mut warnings = Vec::new();
        let Ok(entries) = fs::read_dir(self.root.join("jobs")) else {
            return (jobs, warnings);
        };
        for entry in entries.flatten() {
            let id = entry.file_name().to_string_lossy().to_string();
            match self.load_job(&id) {
                Ok(Some(job)) => jobs.push(job),
                Ok(None) => {}
                Err(e) => warnings.push(format!("jobs/{id}: {e}")),
            }
        }
        jobs.sort_by(|a, b| a.id.cmp(&b.id));
        (jobs, warnings)
    }

    fn load_job(&self, id: &str) -> Result<Option<SpooledJob>, String> {
        let path = self.job_dir(id).join("job.json");
        let text = match Self::read_timed(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let record: Value = serde_json::from_str(&text).map_err(|e| format!("job.json: {e}"))?;
        let entries = record.as_map().ok_or("job.json is not an object")?;
        let shards = match serde::map_get(entries, "shards") {
            Value::U64(n) => *n as usize,
            _ => return Err("job.json has no shard count".to_string()),
        };
        let scenario = Scenario::from_value(serde::map_get(entries, "scenario"))
            .map_err(|e| format!("job.json scenario: {e}"))?;
        let parts = (0..shards)
            .map(|shard| Self::read_timed(&self.part_path(id, shard)).ok())
            .collect();
        Ok(Some(SpooledJob {
            id: id.to_string(),
            shards: shards.max(1),
            scenario,
            parts,
        }))
    }

    /// Total bytes of every file under the spool (outcomes, events, job
    /// ledgers). Walks the directory on each call — the spool is small and
    /// this only runs at `/stats` / `/metrics` scrape time.
    pub fn disk_bytes(&self) -> u64 {
        fn walk(dir: &Path) -> u64 {
            let Ok(entries) = fs::read_dir(dir) else {
                return 0;
            };
            entries
                .flatten()
                .map(|entry| match entry.metadata() {
                    Ok(meta) if meta.is_dir() => walk(&entry.path()),
                    Ok(meta) => meta.len(),
                    Err(_) => 0,
                })
                .sum()
        }
        walk(&self.root)
    }

    /// The largest numeric suffix among `job-<n>` directories, so a
    /// restarted service keeps allocating fresh ids.
    pub fn max_job_number(&self) -> u64 {
        let Ok(entries) = fs::read_dir(self.root.join("jobs")) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|entry| {
                entry
                    .file_name()
                    .to_string_lossy()
                    .strip_prefix("job-")?
                    .parse::<u64>()
                    .ok()
            })
            .max()
            .unwrap_or(0)
    }
}
