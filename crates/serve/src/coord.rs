//! The cross-process face of the coordinator round: a small HTTP server
//! wrapping a [`LocalCoordinator`] and a matching [`StopCoordinator`]
//! client, so a `scenario shard run --coordinate <addr>` fleet spread
//! over many processes (or hosts) executes the identical protocol the
//! in-process service path does.
//!
//! | route | effect |
//! |---|---|
//! | `GET /coord/config` | the coordinator's sealed [`CoordinatorConfig`] |
//! | `POST /coord/submit` | submit a sealed [`PrefixEnvelope`]; answers the cell's [`StopDecision`] or `null` |
//! | `GET /coord/decision?cell=K` | the cell's [`StopDecision`] or `null` |
//! | `POST /coord/abandon` | mark a cell failed so blocked peers fail fast |
//! | `GET /healthz` | liveness |
//!
//! Rejected envelopes (bad seal, wrong scenario or fleet, divergent
//! resubmission) and abandoned cells answer `409` with the coordinator's
//! error text; the client surfaces that text verbatim, so a shard's
//! failure message reads the same whether the coordinator was local or
//! remote.

use crate::http;
use bcbpt_core::{
    CoordinatorConfig, LocalCoordinator, PrefixEnvelope, StopCoordinator, StopDecision,
};
use serde::{Deserialize, Serialize};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The `POST /coord/abandon` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct AbandonRequest {
    cell_index: usize,
    reason: String,
}

/// A running coordinator endpoint: accept loop on its own thread, one
/// short-lived connection per request (the dialect of [`crate::http`]).
pub struct CoordServer {
    addr: std::net::SocketAddr,
    stopping: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    coordinator: Arc<LocalCoordinator>,
}

impl CoordServer {
    /// Binds `addr` (`host:port`; port 0 picks a free one) and starts
    /// serving the coordinator.
    ///
    /// # Errors
    ///
    /// Bind/spawn failures.
    pub fn start(addr: &str, coordinator: Arc<LocalCoordinator>) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;
        let stopping = Arc::new(AtomicBool::new(false));
        let accept = {
            let stopping = Arc::clone(&stopping);
            let coordinator = Arc::clone(&coordinator);
            std::thread::Builder::new()
                .name("coord-accept".to_string())
                .spawn(move || accept_loop(&stopping, &listener, &coordinator))
                .map_err(|e| format!("spawn coordinator accept loop: {e}"))?
        };
        Ok(CoordServer {
            addr: local,
            stopping,
            accept: Some(accept),
            coordinator,
        })
    }

    /// The bound address (resolves a requested port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The wrapped coordinator (for progress/summary queries).
    pub fn coordinator(&self) -> &Arc<LocalCoordinator> {
        &self.coordinator
    }

    /// Stops the accept loop and joins it. Idempotent.
    pub fn stop(&mut self) {
        self.stopping.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for CoordServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(stopping: &AtomicBool, listener: &TcpListener, coordinator: &Arc<LocalCoordinator>) {
    while !stopping.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                // Requests are tiny and answered from in-memory state:
                // handling them inline keeps the loop single-threaded and
                // the coordinator free of connection bookkeeping.
                let request = match http::read_request(&mut stream) {
                    Ok(request) => request,
                    Err(e) => {
                        let _ = http::respond_error(&mut stream, 400, &e);
                        continue;
                    }
                };
                let _ = route(coordinator, &mut stream, &request);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Serializes an `Option<StopDecision>` as the wire payload both decision
/// routes answer: the sealed decision JSON, or `null` while undecided.
fn decision_body(decision: Option<&StopDecision>) -> String {
    decision.map_or_else(|| "null".to_string(), StopDecision::to_json)
}

fn route(
    coordinator: &Arc<LocalCoordinator>,
    stream: &mut TcpStream,
    request: &http::Request,
) -> Result<(), String> {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => http::respond_json(stream, 200, "{\"ok\": true}"),
        ("GET", "/coord/config") => {
            let config = coordinator
                .config()
                .expect("local coordinator config is infallible");
            http::respond_json(stream, 200, &config.to_json())
        }
        ("POST", "/coord/submit") => {
            let text = String::from_utf8_lossy(&request.body);
            let envelope = match PrefixEnvelope::from_json(&text) {
                Ok(envelope) => envelope,
                Err(e) => return http::respond_error(stream, 400, &e),
            };
            match coordinator.submit(envelope) {
                Ok(decision) => http::respond_json(stream, 200, &decision_body(decision.as_ref())),
                Err(e) => http::respond_error(stream, 409, &e),
            }
        }
        ("GET", "/coord/decision") => {
            let cell = match request.query_param("cell").map(str::parse::<usize>) {
                Some(Ok(cell)) => cell,
                _ => return http::respond_error(stream, 400, "decision needs ?cell=<index>"),
            };
            match coordinator.decision(cell) {
                Ok(decision) => http::respond_json(stream, 200, &decision_body(decision.as_ref())),
                Err(e) => http::respond_error(stream, 409, &e),
            }
        }
        ("POST", "/coord/abandon") => {
            let text = String::from_utf8_lossy(&request.body);
            let abandon: AbandonRequest = match serde_json::from_str(&text) {
                Ok(abandon) => abandon,
                Err(e) => {
                    return http::respond_error(stream, 400, &format!("invalid abandon body: {e}"))
                }
            };
            match coordinator.abandon(abandon.cell_index, &abandon.reason) {
                Ok(()) => http::respond_json(stream, 200, "{\"ok\": true}"),
                Err(e) => http::respond_error(stream, 409, &e),
            }
        }
        ("GET", _) => http::respond_error(stream, 404, "no such resource"),
        _ => http::respond_error(stream, 405, "method not allowed"),
    }
}

/// [`StopCoordinator`] over HTTP: what `scenario shard run
/// --coordinate <addr>` installs. Every call opens one connection (the
/// service dialect); [`wait`](StopCoordinator::wait) uses the trait's
/// polling default, so the end-of-cell barrier costs one tiny request
/// per 25 ms — negligible next to a single measuring run.
pub struct CoordClient {
    addr: String,
}

impl CoordClient {
    /// A client for the coordinator at `addr` (`host:port`).
    pub fn new(addr: &str) -> Self {
        CoordClient {
            addr: addr.to_string(),
        }
    }

    /// Maps a coordinator response to the trait's `Result` shape: 2xx
    /// passes the body through, anything else surfaces the coordinator's
    /// `{"error": ...}` text (or the raw body when it is not that shape).
    fn checked(response: crate::client::Response, what: &str) -> Result<String, String> {
        let body = response.text();
        if (200..300).contains(&response.status) {
            return Ok(body);
        }
        let message = serde_json::from_str::<serde::Value>(&body)
            .ok()
            .as_ref()
            .and_then(serde::Value::as_map)
            .map(|entries| serde::map_get(entries, "error"))
            .and_then(serde::Value::as_str)
            .map_or_else(|| body.trim_end().to_string(), str::to_string);
        Err(format!("{what}: status {} — {message}", response.status))
    }

    /// Parses a decision-route payload: sealed decision JSON or `null`.
    fn parse_decision(body: &str) -> Result<Option<StopDecision>, String> {
        if body.trim() == "null" {
            return Ok(None);
        }
        let decision = StopDecision::from_json(body)?;
        decision.verify_seal()?;
        Ok(Some(decision))
    }
}

impl StopCoordinator for CoordClient {
    fn config(&self) -> Result<CoordinatorConfig, String> {
        let response = crate::client::get(&self.addr, "/coord/config")?;
        let body = Self::checked(response, "GET /coord/config")?;
        let config = CoordinatorConfig::from_json(&body)?;
        config.verify_seal()?;
        Ok(config)
    }

    fn submit(&self, envelope: PrefixEnvelope) -> Result<Option<StopDecision>, String> {
        let response = crate::client::post(&self.addr, "/coord/submit", &envelope.to_json())?;
        let body = Self::checked(response, "POST /coord/submit")?;
        Self::parse_decision(&body)
    }

    fn decision(&self, cell_index: usize) -> Result<Option<StopDecision>, String> {
        let path = format!("/coord/decision?cell={cell_index}");
        let response = crate::client::get(&self.addr, &path)?;
        let body = Self::checked(response, "GET /coord/decision")?;
        Self::parse_decision(&body)
    }

    fn abandon(&self, cell_index: usize, reason: &str) -> Result<(), String> {
        let abandon = AbandonRequest {
            cell_index,
            reason: reason.to_string(),
        };
        let body = serde_json::to_string(&abandon).expect("abandon body serializes");
        let response = crate::client::post(&self.addr, "/coord/abandon", &body)?;
        Self::checked(response, "POST /coord/abandon").map(|_| ())
    }
}
