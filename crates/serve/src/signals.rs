//! SIGINT/SIGTERM → a process-wide drain flag.
//!
//! The only unsafe code in the workspace lives here: a two-line `signal(2)`
//! binding (no external crates are available, so no `signal-hook`). The
//! handler does the one thing that is async-signal-safe — store to a
//! static atomic — and the service's worker and accept loops poll
//! [`drain_requested`] to turn that into a graceful drain.

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    extern "C" fn mark(_signum: i32) {
        super::DRAIN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub(super) fn install() {
        unsafe {
            signal(SIGINT, mark);
            signal(SIGTERM, mark);
        }
    }
}

/// Installs the SIGINT/SIGTERM handlers (idempotent; no-op off unix).
/// Call once, before [`Server::start`](crate::Server::start) with
/// `poll_signals` enabled.
pub fn install() {
    #[cfg(unix)]
    sys::install();
}

/// `true` once a handled signal arrived (sticky).
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}
