//! A minimal blocking HTTP/1.1 client for the campaign service — used by
//! the `scenario submit` subcommand, the integration tests and the
//! benchmark harness, so none of them need an external HTTP dependency.
//! It speaks exactly the dialect [`crate::http`] emits: one request per
//! connection, `Content-Length` responses, and chunked event streams.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A decoded HTTP response.
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// The body as UTF-8 text (lossy — the service only emits UTF-8).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))
}

fn send_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(), String> {
    let body = body.unwrap_or_default();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: service\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send {method} {path}: {e}"))
}

/// Reads the status line + headers; returns (status, content_length,
/// chunked).
fn read_head(reader: &mut BufReader<TcpStream>) -> Result<(u16, Option<usize>, bool), String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("status line: {e}"))?;
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line {line:?}"))?;
    let mut content_length = None;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().ok();
            } else if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    Ok((status, content_length, chunked))
}

fn request(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> Result<Response, String> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, method, path, body)?;
    let mut reader = BufReader::new(stream);
    let (status, content_length, chunked) = read_head(&mut reader)?;
    let mut body = Vec::new();
    if chunked {
        // Drain the chunk stream into a flat body (used when a caller
        // GETs a completed job's events non-streamingly).
        while let Some(chunk) = read_chunk(&mut reader)? {
            body.extend_from_slice(&chunk);
        }
    } else {
        match content_length {
            Some(n) => {
                body.resize(n, 0);
                reader
                    .read_exact(&mut body)
                    .map_err(|e| format!("body: {e}"))?;
            }
            None => {
                reader
                    .read_to_end(&mut body)
                    .map_err(|e| format!("body: {e}"))?;
            }
        }
    }
    Ok(Response { status, body })
}

/// One `GET`.
///
/// # Errors
///
/// Connection or protocol failures (non-2xx statuses are returned, not
/// errors).
pub fn get(addr: &str, path: &str) -> Result<Response, String> {
    request(addr, "GET", path, None)
}

/// One `POST` with a JSON body.
///
/// # Errors
///
/// See [`get`].
pub fn post(addr: &str, path: &str, body: &str) -> Result<Response, String> {
    request(addr, "POST", path, Some(body.as_bytes()))
}

/// Reads one chunk of a chunked body; `None` on the zero-length
/// terminator.
fn read_chunk(reader: &mut BufReader<TcpStream>) -> Result<Option<Vec<u8>>, String> {
    let mut size_line = String::new();
    let n = reader
        .read_line(&mut size_line)
        .map_err(|e| format!("chunk size: {e}"))?;
    if n == 0 {
        return Err("connection closed mid-chunk-stream".to_string());
    }
    let size = usize::from_str_radix(size_line.trim(), 16)
        .map_err(|e| format!("chunk size {size_line:?}: {e}"))?;
    if size == 0 {
        let mut crlf = String::new();
        let _ = reader.read_line(&mut crlf);
        return Ok(None);
    }
    let mut chunk = vec![0u8; size];
    reader
        .read_exact(&mut chunk)
        .map_err(|e| format!("chunk body: {e}"))?;
    let mut crlf = [0u8; 2];
    reader
        .read_exact(&mut crlf)
        .map_err(|e| format!("chunk crlf: {e}"))?;
    Ok(Some(chunk))
}

/// Subscribes to `GET {path}` as a chunked line stream, invoking
/// `on_line` per JSONL line (without the newline). Returns `true` when
/// the stream ended with the clean chunked terminator, `false` when the
/// service cut it (job parked/failed or service stopped).
///
/// # Errors
///
/// Connection/protocol failures, or a non-200 status.
pub fn stream_lines(addr: &str, path: &str, mut on_line: impl FnMut(&str)) -> Result<bool, String> {
    let mut stream = connect(addr)?;
    send_request(&mut stream, "GET", path, None)?;
    let mut reader = BufReader::new(stream);
    let (status, _, chunked) = read_head(&mut reader)?;
    if status != 200 {
        return Err(format!("GET {path}: status {status}"));
    }
    if !chunked {
        return Err(format!("GET {path}: expected a chunked stream"));
    }
    let mut pending = String::new();
    let clean = loop {
        match read_chunk(&mut reader) {
            Ok(Some(chunk)) => {
                pending.push_str(&String::from_utf8_lossy(&chunk));
                while let Some(pos) = pending.find('\n') {
                    let line: String = pending.drain(..=pos).collect();
                    on_line(line.trim_end_matches('\n'));
                }
            }
            Ok(None) => break true,
            // An abrupt close is the documented "aborted stream" signal.
            Err(_) => break false,
        }
    };
    if !pending.is_empty() {
        on_line(&pending);
    }
    Ok(clean)
}

/// Polls `GET /healthz` until it answers 200 or `timeout` elapses.
///
/// # Errors
///
/// Timeout (with the last failure).
pub fn wait_healthy(addr: &str, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        let last = match get(addr, "/healthz") {
            Ok(response) if response.status == 200 => return Ok(()),
            Ok(response) => format!("status {}", response.status),
            Err(e) => e,
        };
        if Instant::now() >= deadline {
            return Err(format!("service at {addr} not healthy: {last}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Polls `GET /jobs/{id}` until its state leaves `queued`/`running` or
/// `timeout` elapses; returns the final status JSON.
///
/// # Errors
///
/// Timeout or request failures.
pub fn wait_job(addr: &str, id: &str, timeout: Duration) -> Result<String, String> {
    let deadline = Instant::now() + timeout;
    loop {
        let response = get(addr, &format!("/jobs/{id}"))?;
        if response.status != 200 {
            return Err(format!("GET /jobs/{id}: status {}", response.status));
        }
        let text = response.text();
        let status: serde::Value =
            serde_json::from_str(&text).map_err(|e| format!("job status: {e}"))?;
        let state = status
            .as_map()
            .map(|entries| serde::map_get(entries, "state"))
            .and_then(serde::Value::as_str)
            .ok_or_else(|| format!("job status has no state: {text}"))?;
        if matches!(state, "done" | "failed" | "parked") {
            return Ok(text);
        }
        if Instant::now() >= deadline {
            return Err(format!("job {id} still not settled: {text}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}
