//! A deliberately small HTTP/1.1 layer over [`std::net::TcpStream`] — just
//! enough protocol for the campaign service and its tests: one request per
//! connection (`Connection: close`), `Content-Length` bodies on the way in,
//! and either a `Content-Length` response or a `Transfer-Encoding: chunked`
//! stream on the way out. No keep-alive, no pipelining, no TLS — the
//! service binds loopback by default and the build environment has no
//! registry access, so a hand-rolled reader beats a vendored framework.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a scenario JSON is a few KB; a megabyte
/// of headroom keeps hand-written sweeps comfortable while bounding what a
/// stray client can make the service buffer).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed HTTP request: method, path (query split off), body.
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the request target, percent-decoding not applied
    /// (the service's routes use none).
    pub path: String,
    /// Raw query string after `?`, without the `?`; empty when absent.
    pub query: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of query parameter `key` (`k=v` pairs joined by `&`).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// Malformed request line or headers, a body larger than
/// [`MAX_BODY_BYTES`], or the underlying I/O error.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let target = parts.next().ok_or("request line has no target")?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|e| format!("content-length: {e}"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("body: {e}"))?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// The reason phrase for the handful of status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Content-Length` response and flushes it.
///
/// # Errors
///
/// The underlying I/O error (the peer usually just went away).
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> Result<(), String> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("response: {e}"))
}

/// [`respond`] with a JSON body.
///
/// # Errors
///
/// See [`respond`].
pub fn respond_json(stream: &mut TcpStream, status: u16, body: &str) -> Result<(), String> {
    respond(stream, status, "application/json", body.as_bytes())
}

/// [`respond`] with the service's error shape, `{"error": message}`.
///
/// # Errors
///
/// See [`respond`].
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> Result<(), String> {
    let body = serde_json::to_string(&serde::Value::Map(vec![(
        "error".to_string(),
        serde::Value::Str(message.to_string()),
    )]))
    .expect("error body serializes");
    respond_json(stream, status, &body)
}

/// A `Transfer-Encoding: chunked` response in progress: one chunk per
/// payload handed to [`write_chunk`](Self::write_chunk), closed by the
/// zero-length terminator only when [`finish`](Self::finish) is called —
/// dropping the writer mid-stream leaves the chunk stream visibly
/// truncated, which is exactly how the service signals an aborted
/// event stream to its subscribers.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the status line + chunked headers and returns the writer.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn begin(stream: &'a mut TcpStream, content_type: &str) -> Result<Self, String> {
        let head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
        );
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.flush())
            .map_err(|e| format!("chunked head: {e}"))?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes it (subscribers tail the stream live).
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn write_chunk(&mut self, payload: &[u8]) -> Result<(), String> {
        if payload.is_empty() {
            return Ok(());
        }
        let head = format!("{:x}\r\n", payload.len());
        self.stream
            .write_all(head.as_bytes())
            .and_then(|()| self.stream.write_all(payload))
            .and_then(|()| self.stream.write_all(b"\r\n"))
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("chunk: {e}"))
    }

    /// Writes the zero-length terminating chunk — the stream completed.
    ///
    /// # Errors
    ///
    /// The underlying I/O error.
    pub fn finish(self) -> Result<(), String> {
        self.stream
            .write_all(b"0\r\n\r\n")
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("chunk terminator: {e}"))
    }
}
