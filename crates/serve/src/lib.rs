//! # bcbpt-serve — the campaign service
//!
//! A long-running daemon that executes [`bcbpt_core`] scenarios on
//! demand: submit a [`Scenario`](bcbpt_core::Scenario) over HTTP, watch
//! its [`RunEvent`](bcbpt_core::RunEvent) stream live, fetch the
//! [`ScenarioOutcome`](bcbpt_core::ScenarioOutcome) — byte-identical to
//! what `scenario run` prints — and resubmit for free: outcomes are
//! stored under the scenario's canonical content digest, so an
//! already-computed experiment is answered from disk without executing a
//! single run.
//!
//! The HTTP layer is hand-rolled over [`std::net::TcpListener`] (the
//! build environment has no registry access), one request per
//! connection:
//!
//! | route | effect |
//! |---|---|
//! | `POST /scenarios` | submit a scenario (or `{"builtin": name, "quick": true}`); `?shards=N` fans it out |
//! | `GET /jobs/:id` | job status, with the outcome embedded once done |
//! | `GET /jobs/:id/events` | chunked JSONL stream of the job's run events (many subscribers) |
//! | `GET /jobs/:id/outcome` | the raw stored outcome bytes |
//! | `GET /healthz` | liveness |
//! | `GET /stats` | queue/job counters, cache hits, runs executed |
//! | `GET /metrics` | Prometheus text exposition (sim/runner/shard/serve metrics) |
//! | `POST /shutdown` | graceful drain (running shards park at a durable checkpoint) |
//!
//! See [`server`] for the execution model (bounded queue, shard-
//! scheduling worker pool, warm-snapshot cache, drain/park/resume) and
//! [`spool`] for the on-disk layout.

#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod coord;
pub mod events;
pub mod http;
pub mod obs;
pub mod server;
pub mod signals;
pub mod spool;

pub use coord::{CoordClient, CoordServer};
pub use server::{ServeConfig, Server};
pub use spool::{digest_hex, Spool};
