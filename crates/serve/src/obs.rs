//! Service-layer metrics published through the `bcbpt-obs` global
//! registry.
//!
//! Spool I/O latency is global (one distribution per process — latency is
//! a property of the disk, not of a server instance). Per-server counts
//! (request counters, queue gauges, cache hits) live on each
//! [`Server`](crate::Server)'s own registry instead, so co-resident test
//! servers keep independent `/stats`; see `ServerMetrics` in `server.rs`.

use bcbpt_obs::WallHistogram;
use std::sync::{Arc, OnceLock};

/// Wall-clock latency of one spool read (outcome, events, checkpoint or
/// job record; misses are timed too — they are the fast path).
pub(crate) fn spool_read_seconds() -> &'static Arc<WallHistogram> {
    static H: OnceLock<Arc<WallHistogram>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().histogram(
            "bcbpt_serve_spool_read_seconds",
            "Wall-clock latency of one spool file read",
        )
    })
}

/// Wall-clock latency of one atomic spool write (temp file + rename).
pub(crate) fn spool_write_seconds() -> &'static Arc<WallHistogram> {
    static H: OnceLock<Arc<WallHistogram>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().histogram(
            "bcbpt_serve_spool_write_seconds",
            "Wall-clock latency of one atomic spool write",
        )
    })
}

/// Touches every process-global metric the service contributes, plus the
/// sim/runner/shard metrics underneath it, so `/metrics` lists the full
/// set from the first scrape.
pub fn register_metrics() {
    bcbpt_core::obs::register_metrics();
    let _ = spool_read_seconds();
    let _ = spool_write_seconds();
}
