//! The campaign service: a bounded job queue feeding a shard-scheduling
//! worker pool, fronted by the hand-rolled HTTP API in [`crate::http`].
//!
//! # Execution model
//!
//! A submitted [`Scenario`] becomes a *job*. Each job is split into
//! `shards` shard tasks (default 1) that enter one shared queue; the
//! worker pool pulls tasks in FIFO order, so a multi-shard job's shards
//! run concurrently across workers while other jobs queue behind them.
//! Every shard executes through the PR 5/PR 6 path —
//! [`run_shard_with`] with a checkpoint sink, plus the PR 7 warm-snapshot
//! cache — and the worker that completes a job's last shard merges the
//! parts with [`merge_shards`]. Scenarios that declare an adaptive stop
//! rule cannot shard (a stop decision needs the whole folded prefix), so
//! they run as a single session task instead.
//!
//! # Event streams
//!
//! Single-shard jobs (the default) stream their live [`RunEvent`]s into a
//! per-job [`EventLog`]; any number of `GET /jobs/:id/events` subscribers
//! replay-then-tail it and receive exactly the byte stream the driver's
//! `--jsonl` flag would have written. Multi-shard jobs interleave run
//! indices across workers, so their stream is synthesized at merge time
//! at cell granularity (started/completed per cell, then
//! `scenario_completed`) — still validator-clean, just without per-run
//! detail.
//!
//! # Caching
//!
//! Completed outcomes are stored on disk keyed by [`Scenario::digest`]
//! (the canonical content digest). A resubmission with an equal digest is
//! answered from the store — byte-identical outcome, replayed event
//! stream, no runs executed — and counts as a cache hit in `/stats`.
//! Warmed network snapshots are cached across jobs (and across the cells
//! of one sweep) under their warm-recipe digest.
//!
//! # Shutdown
//!
//! `POST /shutdown` (or SIGINT/SIGTERM when signal polling is on) flips
//! the drain flag: workers stop pulling tasks, and every running shard
//! parks at its next checkpoint — the sink persists the checkpoint
//! durably, then returns an error, which aborts the shard run without
//! losing folded work. Parked and still-queued jobs keep their spool
//! directories; a service restarted on the same spool re-enqueues them
//! and resumes from the checkpoints, replaying the already-folded prefix
//! of the event stream via [`checkpoint_replay_events`]. Subscribers of a
//! parked job see their chunked stream close without the
//! `scenario_completed` terminator — the signal to re-subscribe after
//! restart.

use crate::events::{EventLog, Next};
use crate::http::{self, ChunkedWriter, Request};
use crate::signals;
use crate::spool::{digest_hex, Spool, SpooledJob};
use bcbpt_cluster::ProtocolRegistry;
use bcbpt_core::{
    checkpoint_replay_events, merge_shards, run_shard_with, Checkpoint, LocalCoordinator,
    PartialOutcome, RunEvent, Scenario, ScenarioOutcome, ShardObserver, ShardPlan, ShardRunOptions,
    ShardSpec, StopCoordinator, WarmCache,
};
use bcbpt_obs::{Counter, Gauge, Registry, WallHistogram};
use serde::Value;
use std::collections::{BTreeMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the service is wired up; [`ServeConfig::new`] gives the defaults.
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port — see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker-pool size: how many shard/session tasks execute at once.
    pub workers: usize,
    /// Maximum number of jobs waiting in the queue; submissions beyond it
    /// are refused with `503`.
    pub queue_capacity: usize,
    /// Spool directory (outcome store + crash/drain ledger).
    pub spool: PathBuf,
    /// Warm-snapshot cache capacity (warmed networks held in memory).
    pub warm_capacity: usize,
    /// Folds between checkpoints while a shard runs (lower = finer drain
    /// granularity).
    pub checkpoint_every: usize,
    /// Poll for SIGINT/SIGTERM (via [`signals`]) and treat one as a drain
    /// request. The CLI turns this on; in-process tests leave it off.
    pub poll_signals: bool,
}

impl ServeConfig {
    /// Defaults: loopback on an ephemeral port, one worker per core, a
    /// 64-job queue, 8 cached warm snapshots, checkpoint every fold.
    pub fn new(spool: impl Into<PathBuf>) -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            queue_capacity: 64,
            spool: spool.into(),
            warm_capacity: 8,
            checkpoint_every: 1,
            poll_signals: false,
        }
    }
}

/// Job lifecycle. `Queued → Running → Done`, with `Failed` (run-time
/// error) and `Parked` (drained mid-run, resumable on restart) as exits.
#[derive(Clone)]
enum Phase {
    Queued,
    Running,
    Done,
    Failed(String),
    Parked,
}

impl Phase {
    fn name(&self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Running => "running",
            Phase::Done => "done",
            Phase::Failed(_) => "failed",
            Phase::Parked => "parked",
        }
    }
}

/// One submitted scenario and everything the service tracks about it.
struct Job {
    id: String,
    digest: u64,
    /// Canonical compact scenario JSON (digest preimage, collision guard).
    canonical: String,
    scenario: Scenario,
    shards: usize,
    adaptive: bool,
    /// In-process stop coordinator for adaptive multi-shard jobs: every
    /// shard task of the job submits folded-prefix envelopes to it and
    /// blocks on its per-cell stop decisions (see [`LocalCoordinator`]).
    /// `None` for single-shard and fixed-budget jobs.
    coordinator: Option<Arc<LocalCoordinator>>,
    /// Served from the outcome store without executing anything.
    cached: bool,
    phase: Mutex<Phase>,
    events: EventLog,
    parts: Mutex<Vec<Option<PartialOutcome>>>,
    /// The stored outcome bytes (`ScenarioOutcome::to_json()` + newline).
    outcome: Mutex<Option<Arc<String>>>,
}

impl Job {
    fn phase(&self) -> Phase {
        self.phase.lock().expect("job phase lock").clone()
    }

    fn set_phase(&self, phase: Phase) {
        *self.phase.lock().expect("job phase lock") = phase;
    }

    fn status_json(&self) -> String {
        let phase = self.phase();
        let mut entries = vec![
            ("job".to_string(), Value::Str(self.id.clone())),
            ("state".to_string(), Value::Str(phase.name().to_string())),
            ("digest".to_string(), Value::Str(digest_hex(self.digest))),
            (
                "scenario".to_string(),
                Value::Str(self.scenario.name.clone()),
            ),
            ("shards".to_string(), Value::U64(self.shards as u64)),
            ("cached".to_string(), Value::Bool(self.cached)),
        ];
        if let Phase::Failed(error) = &phase {
            entries.push(("error".to_string(), Value::Str(error.clone())));
        }
        if let Some(outcome) = self.outcome.lock().expect("job outcome lock").as_ref() {
            if let Ok(value) = serde_json::from_str::<Value>(outcome) {
                entries.push(("outcome".to_string(), value));
            }
        }
        serde_json::to_string(&Value::Map(entries)).expect("status serializes")
    }
}

/// A unit of work in the queue: one shard of a job, or a whole adaptive
/// session.
struct Task {
    job: Arc<Job>,
    shard: usize,
    /// When the task entered the queue (feeds the queue-wait histogram).
    enqueued: Instant,
}

/// Per-server instruments, all registered on this server's own
/// [`Registry`] so co-resident servers (the test suite runs several per
/// process) keep independent `/stats` and `/metrics` numbers. The
/// process-global registry carries the sim/runner/shard/spool metrics;
/// `GET /metrics` renders both, concatenated.
struct ServerMetrics {
    registry: Registry,
    /// Submissions answered from the digest-keyed outcome store.
    cache_hits: Arc<Counter>,
    /// Measuring runs actually executed (cache hits execute none).
    runs_executed: Arc<Counter>,
    /// Shard/session tasks currently queued (set at scrape time).
    queue_depth: Arc<Gauge>,
    /// Workers currently executing a task (maintained by the pool).
    workers_busy: Arc<Gauge>,
    /// Bytes on disk under the spool (set at scrape time).
    spool_bytes: Arc<Gauge>,
    /// Time a task spent queued before a worker picked it up.
    queue_wait: Arc<WallHistogram>,
    /// Requests by endpoint: `(counter, route label)` — label-free static
    /// names, one counter per route family.
    requests: Vec<(Arc<Counter>, &'static str)>,
}

/// Endpoint families `/metrics` counts requests for. Registration order
/// here fixes the `requests` index used by [`ServerMetrics::request_counter`].
const ENDPOINTS: &[(&str, &str)] = &[
    ("bcbpt_serve_req_healthz_total", "/healthz"),
    ("bcbpt_serve_req_stats_total", "/stats"),
    ("bcbpt_serve_req_metrics_total", "/metrics"),
    ("bcbpt_serve_req_shutdown_total", "/shutdown"),
    ("bcbpt_serve_req_scenarios_total", "/scenarios"),
    ("bcbpt_serve_req_jobs_total", "/jobs"),
    ("bcbpt_serve_req_other_total", "other"),
];

impl ServerMetrics {
    fn new() -> ServerMetrics {
        let registry = Registry::new();
        let cache_hits = registry.counter(
            "bcbpt_serve_cache_hits_total",
            "Submissions answered from the digest-keyed outcome store",
        );
        let runs_executed = registry.counter(
            "bcbpt_serve_runs_executed_total",
            "Measuring runs executed by this server's workers",
        );
        let queue_depth = registry.gauge(
            "bcbpt_serve_queue_depth",
            "Shard/session tasks waiting in the queue",
        );
        let workers_busy = registry.gauge(
            "bcbpt_serve_workers_busy",
            "Workers currently executing a task",
        );
        let spool_bytes = registry.gauge(
            "bcbpt_serve_spool_bytes",
            "Bytes on disk under the spool directory",
        );
        let queue_wait = registry.histogram(
            "bcbpt_serve_queue_wait_seconds",
            "Time a task waited in the queue before a worker picked it up",
        );
        let requests = ENDPOINTS
            .iter()
            .map(|&(name, route)| {
                (
                    registry.counter(name, "HTTP requests routed to this endpoint"),
                    route,
                )
            })
            .collect();
        ServerMetrics {
            registry,
            cache_hits,
            runs_executed,
            queue_depth,
            workers_busy,
            spool_bytes,
            queue_wait,
            requests,
        }
    }

    /// The request counter for a route family (`"/jobs"`, `"other"`, …).
    fn count_request(&self, route: &str) {
        let counter = self
            .requests
            .iter()
            .find(|(_, r)| *r == route)
            .or_else(|| self.requests.last())
            .map(|(c, _)| c)
            .expect("endpoint table is non-empty");
        counter.inc();
    }
}

struct ServerState {
    config: ServeConfig,
    spool: Spool,
    warm: WarmCache,
    jobs: Mutex<BTreeMap<String, Arc<Job>>>,
    queue: Mutex<VecDeque<Task>>,
    queue_wake: Condvar,
    drain: AtomicBool,
    stopping: AtomicBool,
    next_job: AtomicU64,
    metrics: ServerMetrics,
    connections: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerState {
    fn draining(&self) -> bool {
        if self.drain.load(Ordering::SeqCst) {
            return true;
        }
        if self.config.poll_signals && signals::drain_requested() {
            self.request_drain();
            return true;
        }
        false
    }

    fn request_drain(&self) {
        self.drain.store(true, Ordering::SeqCst);
        self.queue_wake.notify_all();
    }

    fn fresh_job_id(&self) -> String {
        format!("job-{}", self.next_job.fetch_add(1, Ordering::SeqCst))
    }
}

/// The running service: an accept loop, a worker pool and their shared
/// state. Construct with [`Server::start`], stop by draining (HTTP
/// `POST /shutdown`, [`Server::request_drain`], or a polled signal), then
/// [`Server::wait`] for everything to settle.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, restores any jobs left in the spool by a previous process
    /// (completed parts are kept; unfinished shards re-enter the queue,
    /// resuming from their checkpoints), and starts the worker pool and
    /// accept loop.
    ///
    /// # Errors
    ///
    /// Bind or spool I/O failures.
    pub fn start(config: ServeConfig) -> Result<Server, String> {
        // Register the process-global sim/runner/shard/spool metrics up
        // front so the first `/metrics` scrape already lists every family.
        crate::obs::register_metrics();
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking listener: {e}"))?;
        let spool = Spool::open(&config.spool)?;
        let next_job = spool.max_job_number() + 1;
        let warm_capacity = config.warm_capacity;
        let workers = config.workers.max(1);
        let state = Arc::new(ServerState {
            config,
            spool,
            warm: WarmCache::new(warm_capacity),
            jobs: Mutex::new(BTreeMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_wake: Condvar::new(),
            drain: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            next_job: AtomicU64::new(next_job),
            metrics: ServerMetrics::new(),
            connections: Mutex::new(Vec::new()),
        });
        restore_spooled_jobs(&state);
        let worker_handles = (0..workers)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .map_err(|e| format!("spawn worker: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let accept = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("serve-accept".to_string())
                .spawn(move || accept_loop(&state, &listener))
                .map_err(|e| format!("spawn accept loop: {e}"))?
        };
        Ok(Server {
            state,
            addr,
            accept: Some(accept),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves the `:0` ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a drain, exactly like `POST /shutdown`.
    pub fn request_drain(&self) {
        self.state.request_drain();
    }

    /// Blocks until the service has drained and every thread exited:
    /// workers park or finish their running jobs, the accept loop stops,
    /// open event streams are closed. Returns once the process can exit
    /// without losing work.
    ///
    /// # Errors
    ///
    /// A panicked worker or accept thread.
    pub fn wait(mut self) -> Result<(), String> {
        for worker in self.workers.drain(..) {
            worker.join().map_err(|_| "worker thread panicked")?;
        }
        self.state.stopping.store(true, Ordering::SeqCst);
        // Close every stream a subscriber might still be tailing: without
        // this, a subscriber of a queued (never-started) job would hang
        // forever. Finished logs ignore the abort.
        for job in self.state.jobs.lock().expect("jobs lock").values() {
            job.events.abort();
        }
        if let Some(accept) = self.accept.take() {
            accept.join().map_err(|_| "accept thread panicked")?;
        }
        let connections =
            std::mem::take(&mut *self.state.connections.lock().expect("connections lock"));
        for connection in connections {
            let _ = connection.join();
        }
        Ok(())
    }
}

/// Rebuilds the job table from spool directories left by a previous
/// process: jobs whose shards all completed are merged immediately,
/// everything else is re-enqueued (resuming from checkpoints).
fn restore_spooled_jobs(state: &Arc<ServerState>) {
    let (spooled, warnings) = state.spool.scan_jobs();
    for warning in warnings {
        bcbpt_obs::warn!("spool: {warning}");
    }
    for SpooledJob {
        id,
        shards,
        scenario,
        parts,
    } in spooled
    {
        let adaptive = scenario.stop.is_some_and(|s| s.is_adaptive());
        let parsed: Vec<Option<PartialOutcome>> = parts
            .iter()
            .map(|text| {
                text.as_deref()
                    .and_then(|t| PartialOutcome::from_json(t).ok())
            })
            .collect();
        // A coordinated job restored mid-flight needs a fresh coordinator;
        // decisions recorded in already-completed parts are re-imposed so
        // resumed shards truncate to the same prefix the finished ones did.
        let coordinator = if adaptive && shards > 1 {
            match LocalCoordinator::new(&scenario, shards, state.config.checkpoint_every.max(1)) {
                Ok(coordinator) => {
                    if let Some(part) = parsed.iter().flatten().next() {
                        for (cell, stop_at) in part.cell_stop_indices().into_iter().enumerate() {
                            if let Err(e) = coordinator.preset(cell, stop_at) {
                                bcbpt_obs::warn!("spool: job {id}: preset cell {cell}: {e}");
                            }
                        }
                    }
                    Some(Arc::new(coordinator))
                }
                Err(e) => {
                    bcbpt_obs::warn!("spool: job {id}: coordinator: {e} — job will fail");
                    None
                }
            }
        } else {
            None
        };
        let job = Arc::new(Job {
            id: id.clone(),
            digest: scenario.digest(),
            canonical: serde_json::to_string(&scenario).expect("scenario serializes"),
            scenario,
            shards,
            adaptive,
            coordinator,
            cached: false,
            phase: Mutex::new(Phase::Queued),
            events: EventLog::new(),
            parts: Mutex::new(parsed),
            outcome: Mutex::new(None),
        });
        state
            .jobs
            .lock()
            .expect("jobs lock")
            .insert(id, Arc::clone(&job));
        let missing: Vec<usize> = {
            let parts = job.parts.lock().expect("job parts lock");
            (0..job.shards).filter(|&i| parts[i].is_none()).collect()
        };
        if missing.is_empty() {
            // Crashed after the last part, before the merge: finish now.
            finish_if_complete(state, &job);
            continue;
        }
        let mut queue = state.queue.lock().expect("queue lock");
        for shard in missing {
            queue.push_back(Task {
                job: Arc::clone(&job),
                shard,
                enqueued: Instant::now(),
            });
        }
        drop(queue);
        state.queue_wake.notify_all();
    }
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

fn worker_loop(state: &Arc<ServerState>) {
    loop {
        let task = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if state.draining() {
                    return;
                }
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                let (guard, _) = state
                    .queue_wake
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = guard;
            }
        };
        state.metrics.queue_wait.observe(task.enqueued.elapsed());
        state.metrics.workers_busy.add(1);
        if task.job.adaptive && task.job.shards == 1 {
            run_session_task(state, &task.job);
        } else {
            run_shard_task(state, &task.job, task.shard);
        }
        state.metrics.workers_busy.sub(1);
    }
}

/// Executes one shard of a job through the checkpointed shard path, then
/// merges if it was the last one.
fn run_shard_task(state: &Arc<ServerState>, job: &Arc<Job>, shard: usize) {
    if matches!(job.phase(), Phase::Queued) {
        job.set_phase(Phase::Running);
    }
    let registry = ProtocolRegistry::builtins();
    let spec = match ShardSpec::new(shard, job.shards) {
        Ok(spec) => spec,
        Err(e) => return fail_job(state, job, e),
    };
    // Crash-idempotent resume: a torn or stale checkpoint file reads as
    // "start this shard from scratch", never as an error.
    let resume = state
        .spool
        .load_checkpoint(&job.id, shard)
        .and_then(|text| Checkpoint::from_json(&text).ok());
    let live_stream = job.shards == 1;
    if live_stream {
        if let Some(checkpoint) = &resume {
            match checkpoint_replay_events(&job.scenario, checkpoint) {
                Ok(events) => {
                    // The already-folded prefix, reconstructed — not
                    // re-executed, so it does not count as runs executed.
                    for event in &events {
                        job.events
                            .push(serde_json::to_string(event).expect("event serializes"));
                    }
                }
                Err(e) => return fail_job(state, job, format!("checkpoint replay: {e}")),
            }
        }
    }
    let sink_state = Arc::clone(state);
    let sink_job = Arc::clone(job);
    let coordinated = job.coordinator.is_some();
    let mut sink_fn = move |checkpoint: &Checkpoint| -> Result<(), String> {
        let json = format!("{}\n", checkpoint.to_json());
        sink_state
            .spool
            .write_checkpoint(&sink_job.id, shard, &json)?;
        if sink_state.drain.load(Ordering::SeqCst) && !coordinated {
            // The checkpoint is durable; refusing here parks the shard
            // with zero lost work (the drain contract). Coordinated shards
            // run to completion instead: parking one shard would leave its
            // peers blocked on the cell's stop decision forever.
            return Err("service draining — parked at a durable checkpoint".to_string());
        }
        Ok(())
    };
    let observe_state = Arc::clone(state);
    let observe_job = Arc::clone(job);
    let mut observe_fn = move |event: &RunEvent| {
        if matches!(
            event,
            RunEvent::RunCompleted { .. } | RunEvent::RunFailed { .. }
        ) {
            observe_state.metrics.runs_executed.inc();
        }
        observe_job
            .events
            .push(serde_json::to_string(event).expect("event serializes"));
    };
    let observe: Option<&mut ShardObserver<'_>> = if live_stream {
        Some(&mut observe_fn)
    } else {
        None
    };
    let result = run_shard_with(
        &job.scenario,
        spec,
        &registry,
        ShardRunOptions {
            threads: Some(1),
            resume,
            checkpoint_every: state.config.checkpoint_every,
            sink: Some(&mut sink_fn),
            observe,
            warm_cache: Some(&state.warm),
            coordinator: job
                .coordinator
                .as_deref()
                .map(|c| c as &dyn StopCoordinator),
        },
    );
    match result {
        Ok(part) => {
            if !live_stream {
                // Multi-shard runs synthesize their stream at merge time,
                // but the executed run count is real either way.
                state.metrics.runs_executed.add(part.runs_used() as u64);
            }
            if let Err(e) = state.spool.write_part(&job.id, shard, &part.to_json()) {
                return fail_job(state, job, format!("part store: {e}"));
            }
            job.parts.lock().expect("job parts lock")[shard] = Some(part);
            finish_if_complete(state, job);
        }
        Err(_) if state.drain.load(Ordering::SeqCst) => {
            job.set_phase(Phase::Parked);
            job.events.abort();
        }
        Err(e) => fail_job(state, job, e),
    }
}

/// Runs an adaptive-stop job as one whole session (it cannot shard, and —
/// lacking the shard checkpoint path — it finishes even under drain
/// rather than parking; the drain waits for it).
fn run_session_task(state: &Arc<ServerState>, job: &Arc<Job>) {
    job.set_phase(Phase::Running);
    let registry = ProtocolRegistry::builtins();
    let observe_state = Arc::clone(state);
    let observe_job = Arc::clone(job);
    let session = job
        .scenario
        .session()
        .with_threads(1)
        .with_warm_cache(&state.warm)
        .observe_fn(move |event: &RunEvent| {
            if matches!(
                event,
                RunEvent::RunCompleted { .. } | RunEvent::RunFailed { .. }
            ) {
                observe_state.metrics.runs_executed.inc();
            }
            observe_job
                .events
                .push(serde_json::to_string(event).expect("event serializes"));
        });
    match session.block_in(&registry) {
        Ok(outcome) => complete_job(state, job, &outcome),
        Err(e) => fail_job(state, job, e),
    }
}

/// If every shard part is in, merge and complete the job.
fn finish_if_complete(state: &Arc<ServerState>, job: &Arc<Job>) {
    let parts: Vec<PartialOutcome> = {
        let mut slots = job.parts.lock().expect("job parts lock");
        if slots.iter().any(Option::is_none) {
            return;
        }
        slots
            .iter_mut()
            .map(|s| s.take().expect("checked"))
            .collect()
    };
    match merge_shards(parts) {
        Ok(outcome) => complete_job(state, job, &outcome),
        Err(e) => fail_job(state, job, e),
    }
}

/// Persists the outcome + event stream under the job's content digest,
/// retires the job directory, and flips the job to `done`.
fn complete_job(state: &Arc<ServerState>, job: &Arc<Job>, outcome: &ScenarioOutcome) {
    let bytes = format!("{}\n", outcome.to_json());
    if job.shards > 1 {
        for event in synthesized_events(outcome, job.scenario.runs) {
            job.events
                .push(serde_json::to_string(&event).expect("event serializes"));
        }
    }
    let lines = job.events.lines();
    if let Err(e) = state
        .spool
        .store_outcome(job.digest, &job.canonical, &bytes, &lines)
    {
        return fail_job(state, job, format!("outcome store: {e}"));
    }
    state.spool.remove_job(&job.id);
    *job.outcome.lock().expect("job outcome lock") = Some(Arc::new(bytes));
    job.set_phase(Phase::Done);
    job.events.finish();
}

fn fail_job(state: &Arc<ServerState>, job: &Arc<Job>, error: String) {
    // Scenario execution is deterministic: a restart would fail the same
    // way, so the job directory is retired rather than retried forever.
    state.spool.remove_job(&job.id);
    job.set_phase(Phase::Failed(error));
    job.events.abort();
}

/// Cell-granularity stream for jobs whose per-run events were spread
/// across workers: started/closed per cell, `scenario_completed` last —
/// the same shape the session emits, minus run-level events.
fn synthesized_events(outcome: &ScenarioOutcome, runs: usize) -> Vec<RunEvent> {
    let planned_runs = if outcome.workload.is_campaign() {
        runs
    } else {
        0
    };
    let mut events = Vec::with_capacity(outcome.cells.len() * 2 + 1);
    let mut failed_cells = 0usize;
    for (cell, report) in outcome.cells.iter().enumerate() {
        events.push(RunEvent::CellStarted {
            cell,
            label: report.label.clone(),
            planned_runs,
        });
        match report.error() {
            Some(error) => {
                failed_cells += 1;
                events.push(RunEvent::CellFailed {
                    cell,
                    label: report.label.clone(),
                    error: error.to_string(),
                });
            }
            None => events.push(RunEvent::CellCompleted {
                cell,
                report: Box::new(report.clone()),
                runs_used: planned_runs,
                stopped_early: false,
            }),
        }
    }
    events.push(RunEvent::ScenarioCompleted {
        scenario: outcome.scenario.clone(),
        cells: outcome.cells.len(),
        failed_cells,
    });
    events
}

// ---------------------------------------------------------------------
// HTTP front end
// ---------------------------------------------------------------------

fn accept_loop(state: &Arc<ServerState>, listener: &TcpListener) {
    while !state.stopping.load(Ordering::SeqCst) {
        if state.config.poll_signals && signals::drain_requested() {
            state.request_drain();
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let state_conn = Arc::clone(state);
                let handle = std::thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_connection(&state_conn, stream));
                let mut connections = state.connections.lock().expect("connections lock");
                connections.retain(|h| !h.is_finished());
                if let Ok(handle) = handle {
                    connections.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

fn handle_connection(state: &Arc<ServerState>, mut stream: TcpStream) {
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(e) => {
            let _ = http::respond_error(&mut stream, 400, &e);
            return;
        }
    };
    // Response errors mean the peer hung up; there is nobody left to tell.
    let _ = route(state, &mut stream, &request);
}

fn route(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> Result<(), String> {
    let family = match request.path.as_str() {
        "/healthz" => "/healthz",
        "/stats" => "/stats",
        "/metrics" => "/metrics",
        "/shutdown" => "/shutdown",
        "/scenarios" => "/scenarios",
        path if path.starts_with("/jobs/") => "/jobs",
        _ => "other",
    };
    state.metrics.count_request(family);
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => http::respond_json(stream, 200, "{\"ok\": true}"),
        ("GET", "/stats") => http::respond_json(stream, 200, &stats_json(state)),
        ("GET", "/metrics") => http::respond(
            stream,
            200,
            "text/plain; version=0.0.4",
            metrics_text(state).as_bytes(),
        ),
        ("POST", "/shutdown") => {
            state.request_drain();
            http::respond_json(stream, 200, "{\"draining\": true}")
        }
        ("POST", "/scenarios") => submit(state, stream, request),
        (_, path) if path.starts_with("/jobs/") => job_route(state, stream, request),
        ("GET", _) => http::respond_error(stream, 404, "no such resource"),
        _ => http::respond_error(stream, 405, "method not allowed"),
    }
}

fn stats_json(state: &ServerState) -> String {
    refresh_scrape_gauges(state);
    let mut queued = 0u64;
    let mut running = 0u64;
    let mut done = 0u64;
    let mut failed = 0u64;
    let mut parked = 0u64;
    for job in state.jobs.lock().expect("jobs lock").values() {
        match job.phase() {
            Phase::Queued => queued += 1,
            Phase::Running => running += 1,
            Phase::Done => done += 1,
            Phase::Failed(_) => failed += 1,
            Phase::Parked => parked += 1,
        }
    }
    let entries = vec![
        ("jobs_queued".to_string(), Value::U64(queued)),
        ("jobs_running".to_string(), Value::U64(running)),
        ("jobs_done".to_string(), Value::U64(done)),
        ("jobs_failed".to_string(), Value::U64(failed)),
        ("jobs_parked".to_string(), Value::U64(parked)),
        (
            "cache_hits".to_string(),
            Value::U64(state.metrics.cache_hits.value()),
        ),
        ("warm_hits".to_string(), Value::U64(state.warm.hits())),
        ("warm_misses".to_string(), Value::U64(state.warm.misses())),
        (
            "warm_cached".to_string(),
            Value::U64(state.warm.len() as u64),
        ),
        (
            "runs_executed".to_string(),
            Value::U64(state.metrics.runs_executed.value()),
        ),
        (
            "workers".to_string(),
            Value::U64(state.config.workers.max(1) as u64),
        ),
        (
            "queue_capacity".to_string(),
            Value::U64(state.config.queue_capacity as u64),
        ),
        (
            "draining".to_string(),
            Value::Bool(state.drain.load(Ordering::SeqCst)),
        ),
        (
            "queue_depth".to_string(),
            Value::U64(state.metrics.queue_depth.value().max(0) as u64),
        ),
        (
            "workers_busy".to_string(),
            Value::U64(state.metrics.workers_busy.value().max(0) as u64),
        ),
        (
            "spool_bytes".to_string(),
            Value::U64(state.metrics.spool_bytes.value().max(0) as u64),
        ),
    ];
    serde_json::to_string(&Value::Map(entries)).expect("stats serialize")
}

/// Refreshes the gauges that are sampled at scrape time rather than
/// maintained continuously: queue depth (the queue knows its length) and
/// spool size (a directory walk — the spool is small).
fn refresh_scrape_gauges(state: &ServerState) {
    state
        .metrics
        .queue_depth
        .set(state.queue.lock().expect("queue lock").len() as i64);
    state
        .metrics
        .spool_bytes
        .set(state.spool.disk_bytes() as i64);
}

/// Refreshes the scrape-time gauges and renders the process-global
/// registry followed by this server's own: one Prometheus text document
/// covering sim, runner, shard and service metrics.
fn metrics_text(state: &ServerState) -> String {
    refresh_scrape_gauges(state);
    let mut out = bcbpt_obs::global().render_prometheus();
    state.metrics.registry.render_prometheus_into(&mut out);
    out
}

/// Parses a `POST /scenarios` body: either a full [`Scenario`] JSON
/// object, or the shorthand `{"builtin": "<name>", "quick": true}`.
fn parse_submission(body: &[u8]) -> Result<Scenario, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value: Value =
        serde_json::from_str(text).map_err(|e| format!("body is not valid JSON: {e}"))?;
    let entries = value
        .as_map()
        .ok_or("body must be a JSON object (a Scenario, or {\"builtin\": name})")?;
    if entries.iter().any(|(k, _)| k == "builtin") {
        let name = serde::map_get(entries, "builtin")
            .as_str()
            .ok_or("\"builtin\" must be a scenario name")?;
        let scenario = Scenario::builtin(name).ok_or_else(|| {
            format!(
                "unknown built-in {name:?} (known: {})",
                Scenario::builtin_names().join(", ")
            )
        })?;
        let quick = matches!(serde::map_get(entries, "quick"), Value::Bool(true));
        Ok(if quick {
            scenario.quick_scaled()
        } else {
            scenario
        })
    } else {
        use serde::Deserialize as _;
        Scenario::from_value(&value).map_err(|e| format!("invalid scenario: {e}"))
    }
}

fn submit(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> Result<(), String> {
    let scenario = match parse_submission(&request.body) {
        Ok(scenario) => scenario,
        Err(e) => return http::respond_error(stream, 400, &e),
    };
    if let Err(e) = scenario.validate() {
        return http::respond_error(stream, 400, &e);
    }
    let shards = match request.query_param("shards") {
        None => 1,
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => return http::respond_error(stream, 400, "shards must be a positive integer"),
        },
    };
    let adaptive = scenario.stop.is_some_and(|s| s.is_adaptive());
    // Adaptive multi-shard jobs run under an in-process stop coordinator.
    // Every shard of the cell must execute concurrently (each blocks on
    // the cell's stop decision, which needs envelopes from all of them),
    // so the fleet must fit the worker pool.
    let coordinator = if adaptive && shards > 1 {
        if shards > state.config.workers.max(1) {
            return http::respond_error(
                stream,
                400,
                &format!(
                    "adaptive-stop jobs need all shards running concurrently (each blocks \
                     on the coordinated stop decision), but shards={shards} exceeds the \
                     {} worker(s); submit with fewer shards",
                    state.config.workers.max(1)
                ),
            );
        }
        match LocalCoordinator::new(&scenario, shards, state.config.checkpoint_every.max(1)) {
            Ok(coordinator) => Some(Arc::new(coordinator)),
            Err(e) => return http::respond_error(stream, 400, &e),
        }
    } else {
        None
    };
    if shards > 1 {
        if let Err(e) = ShardPlan::plan(scenario.runs, shards) {
            return http::respond_error(stream, 400, &e);
        }
    }
    let digest = scenario.digest();
    let canonical = serde_json::to_string(&scenario).expect("scenario serializes");
    // Digest-keyed store: an already-computed scenario is answered from
    // disk — stored bytes, stored stream, zero runs executed.
    if let Some(outcome) = state.spool.load_outcome(digest, &canonical) {
        state.metrics.cache_hits.inc();
        let lines = state.spool.load_events(digest).unwrap_or_else(|| {
            match ScenarioOutcome::from_json(&outcome) {
                Ok(parsed) => synthesized_events(&parsed, scenario.runs)
                    .iter()
                    .map(|e| serde_json::to_string(e).expect("event serializes"))
                    .collect(),
                Err(_) => Vec::new(),
            }
        });
        let job = Arc::new(Job {
            id: state.fresh_job_id(),
            digest,
            canonical,
            scenario,
            shards,
            adaptive,
            coordinator: None,
            cached: true,
            phase: Mutex::new(Phase::Done),
            events: EventLog::completed(lines),
            parts: Mutex::new(Vec::new()),
            outcome: Mutex::new(Some(Arc::new(outcome))),
        });
        state
            .jobs
            .lock()
            .expect("jobs lock")
            .insert(job.id.clone(), Arc::clone(&job));
        return http::respond_json(stream, 200, &submit_response(&job));
    }
    if state.drain.load(Ordering::SeqCst) {
        return http::respond_error(stream, 503, "service is draining");
    }
    let queued = state
        .jobs
        .lock()
        .expect("jobs lock")
        .values()
        .filter(|j| matches!(j.phase(), Phase::Queued))
        .count();
    if queued >= state.config.queue_capacity {
        return http::respond_error(
            stream,
            503,
            &format!(
                "queue full ({queued} job(s) waiting, capacity {})",
                state.config.queue_capacity
            ),
        );
    }
    let job = Arc::new(Job {
        id: state.fresh_job_id(),
        digest,
        canonical,
        scenario,
        shards,
        adaptive,
        coordinator,
        cached: false,
        phase: Mutex::new(Phase::Queued),
        events: EventLog::new(),
        parts: Mutex::new(vec![None; shards]),
        outcome: Mutex::new(None),
    });
    if let Err(e) = state.spool.write_job(&job.id, shards, &job.scenario) {
        return http::respond_error(stream, 500, &format!("spool: {e}"));
    }
    state
        .jobs
        .lock()
        .expect("jobs lock")
        .insert(job.id.clone(), Arc::clone(&job));
    {
        let mut queue = state.queue.lock().expect("queue lock");
        if job.adaptive && job.shards == 1 {
            queue.push_back(Task {
                job: Arc::clone(&job),
                shard: 0,
                enqueued: Instant::now(),
            });
        } else {
            for shard in 0..shards {
                queue.push_back(Task {
                    job: Arc::clone(&job),
                    shard,
                    enqueued: Instant::now(),
                });
            }
        }
    }
    state.queue_wake.notify_all();
    http::respond_json(stream, 202, &submit_response(&job))
}

fn submit_response(job: &Job) -> String {
    let entries = vec![
        ("job".to_string(), Value::Str(job.id.clone())),
        ("digest".to_string(), Value::Str(digest_hex(job.digest))),
        ("cached".to_string(), Value::Bool(job.cached)),
        ("shards".to_string(), Value::U64(job.shards as u64)),
    ];
    serde_json::to_string(&Value::Map(entries)).expect("submit response serializes")
}

fn job_route(
    state: &Arc<ServerState>,
    stream: &mut TcpStream,
    request: &Request,
) -> Result<(), String> {
    let rest = &request.path["/jobs/".len()..];
    let (id, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let job = state.jobs.lock().expect("jobs lock").get(id).cloned();
    let Some(job) = job else {
        return http::respond_error(stream, 404, &format!("no job {id:?}"));
    };
    match (request.method.as_str(), tail) {
        ("GET", None) => http::respond_json(stream, 200, &job.status_json()),
        ("GET", Some("events")) => stream_job_events(stream, &job),
        ("GET", Some("outcome")) => {
            let outcome = job.outcome.lock().expect("job outcome lock").clone();
            match outcome {
                Some(bytes) => http::respond(stream, 200, "application/json", bytes.as_bytes()),
                None => http::respond_error(
                    stream,
                    409,
                    &format!("job {id} is {} — no outcome yet", job.phase().name()),
                ),
            }
        }
        ("GET", Some(_)) => http::respond_error(stream, 404, "no such job resource"),
        _ => http::respond_error(stream, 405, "method not allowed"),
    }
}

/// The chunked JSONL event stream: replay from line zero, tail until the
/// log finishes (clean terminator) or aborts (stream cut short).
fn stream_job_events(stream: &mut TcpStream, job: &Job) -> Result<(), String> {
    let mut writer = ChunkedWriter::begin(stream, "application/x-ndjson")?;
    let mut cursor = 0usize;
    loop {
        match job.events.next(cursor) {
            Next::Line(line) => {
                writer.write_chunk(format!("{line}\n").as_bytes())?;
                cursor += 1;
            }
            Next::Done => return writer.finish(),
            // Parked/failed: close without the terminator so the
            // subscriber can tell a cut stream from a completed one.
            Next::Aborted => return Ok(()),
        }
    }
}
