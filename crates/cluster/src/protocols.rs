//! String-keyed protocol directory: the open end of the protocol API.
//!
//! [`Protocol`] is the *closed* set of protocols the paper compares; the
//! declarative scenario API needs an *open* one, where a scenario file
//! names its protocol as data (`"bcbpt(dt=25ms)"`) and downstream crates
//! can plug in custom [`NeighborPolicy`] implementations without touching
//! this crate. [`ProtocolSpec`] is that name; [`ProtocolRegistry`] maps a
//! spec's family to a policy factory.

use crate::protocol::Protocol;
use bcbpt_net::NeighborPolicy;
use core::fmt;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A protocol named as data: the string form experiments, scenario files
/// and campaign reports all share.
///
/// The grammar is `family` or `family(args)` — e.g. `"bitcoin"`, `"lbc"`,
/// `"bcbpt(dt=25ms)"`, or any custom family a downstream crate registers.
/// The spec itself carries no behaviour; a [`ProtocolRegistry`] resolves it
/// into a [`NeighborPolicy`].
///
/// # Examples
///
/// ```
/// use bcbpt_cluster::{Protocol, ProtocolRegistry, ProtocolSpec};
///
/// let spec = ProtocolSpec::from(Protocol::bcbpt_paper());
/// assert_eq!(spec.as_str(), "bcbpt(dt=25ms)");
/// assert_eq!(spec.family(), "bcbpt");
/// let policy = ProtocolRegistry::builtins().build(&spec)?;
/// assert_eq!(policy.name(), "bcbpt");
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ProtocolSpec(String);

impl ProtocolSpec {
    /// Creates a spec from any label.
    pub fn new(label: impl Into<String>) -> Self {
        ProtocolSpec(label.into())
    }

    /// The full label, e.g. `"bcbpt(dt=25ms)"`.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The family the registry dispatches on: everything before the first
    /// `(`, trimmed — `"bcbpt"` for `"bcbpt(dt=25ms)"`.
    pub fn family(&self) -> &str {
        self.0.split('(').next().unwrap_or("").trim()
    }

    /// The built-in [`Protocol`] this spec names, if any.
    ///
    /// # Errors
    ///
    /// Returns the parse error for labels outside the built-in set.
    pub fn as_builtin(&self) -> Result<Protocol, String> {
        Protocol::parse(&self.0)
    }
}

impl fmt::Display for ProtocolSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<Protocol> for ProtocolSpec {
    fn from(p: Protocol) -> Self {
        ProtocolSpec(p.label())
    }
}

impl From<&Protocol> for ProtocolSpec {
    fn from(p: &Protocol) -> Self {
        ProtocolSpec(p.label())
    }
}

impl From<&str> for ProtocolSpec {
    fn from(label: &str) -> Self {
        ProtocolSpec(label.to_string())
    }
}

impl From<String> for ProtocolSpec {
    fn from(label: String) -> Self {
        ProtocolSpec(label)
    }
}

/// A policy factory: receives the full spec (family + arguments) and
/// instantiates the policy, or explains why the arguments are invalid.
pub type PolicyFactory =
    Box<dyn Fn(&ProtocolSpec) -> Result<Box<dyn NeighborPolicy>, String> + Send + Sync>;

/// Maps protocol families to [`NeighborPolicy`] factories.
///
/// The built-in registry covers the paper's three protocols; downstream
/// crates extend it with [`register`](Self::register) so scenario files can
/// name custom policies without this crate knowing about them.
///
/// # Examples
///
/// ```
/// use bcbpt_cluster::{ProtocolRegistry, ProtocolSpec};
/// use bcbpt_net::RandomPolicy;
///
/// let mut registry = ProtocolRegistry::builtins();
/// registry.register("myproto", |_spec| Ok(Box::new(RandomPolicy::new())));
/// assert!(registry.build(&ProtocolSpec::new("myproto")).is_ok());
/// assert!(registry.build(&ProtocolSpec::new("unknown")).is_err());
/// ```
pub struct ProtocolRegistry {
    factories: BTreeMap<String, PolicyFactory>,
}

impl ProtocolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ProtocolRegistry {
            factories: BTreeMap::new(),
        }
    }

    /// A registry preloaded with the paper's protocols: `bitcoin`, `lbc`
    /// and `bcbpt` (thresholds parsed from the spec arguments).
    pub fn builtins() -> Self {
        let mut registry = ProtocolRegistry::new();
        for family in ["bitcoin", "lbc", "bcbpt"] {
            registry.register(family, |spec: &ProtocolSpec| {
                Ok(spec.as_builtin()?.build_policy())
            });
        }
        registry
    }

    /// Registers (or replaces) the factory for `family`.
    ///
    /// The factory receives the *full* spec, so parameterised families can
    /// parse their own argument syntax.
    pub fn register<F>(&mut self, family: impl Into<String>, factory: F)
    where
        F: Fn(&ProtocolSpec) -> Result<Box<dyn NeighborPolicy>, String> + Send + Sync + 'static,
    {
        self.factories.insert(family.into(), Box::new(factory));
    }

    /// Whether `family` is registered.
    pub fn contains(&self, family: &str) -> bool {
        self.factories.contains_key(family)
    }

    /// Registered families, sorted.
    pub fn families(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// Resolves a spec into a policy instance.
    ///
    /// # Errors
    ///
    /// Returns an error naming the known families when the spec's family is
    /// unregistered, or the factory's error when its arguments are invalid.
    pub fn build(&self, spec: &ProtocolSpec) -> Result<Box<dyn NeighborPolicy>, String> {
        let family = spec.family();
        let factory = self.factories.get(family).ok_or_else(|| {
            format!(
                "unknown protocol family {:?} in spec {:?} (registered: {})",
                family,
                spec.as_str(),
                self.families().collect::<Vec<_>>().join(", ")
            )
        })?;
        factory(spec)
    }
}

impl Default for ProtocolRegistry {
    fn default() -> Self {
        Self::builtins()
    }
}

impl fmt::Debug for ProtocolRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProtocolRegistry")
            .field("families", &self.factories.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_net::RandomPolicy;

    #[test]
    fn spec_exposes_family_and_label() {
        let spec = ProtocolSpec::new("bcbpt(dt=25ms)");
        assert_eq!(spec.family(), "bcbpt");
        assert_eq!(spec.as_str(), "bcbpt(dt=25ms)");
        assert_eq!(spec.to_string(), "bcbpt(dt=25ms)");
        assert_eq!(ProtocolSpec::new("bitcoin").family(), "bitcoin");
    }

    #[test]
    fn spec_round_trips_through_builtin_protocols() {
        for p in [
            Protocol::Bitcoin,
            Protocol::Lbc,
            Protocol::bcbpt_paper(),
            Protocol::Bcbpt { threshold_ms: 50.0 },
        ] {
            let spec = ProtocolSpec::from(p);
            assert_eq!(spec.as_builtin().unwrap(), p);
            assert_eq!(spec.as_str(), p.label());
        }
    }

    #[test]
    fn spec_serde_is_transparent() {
        let spec = ProtocolSpec::new("bcbpt(dt=25ms)");
        let json = serde_json::to_string(&spec).unwrap();
        assert_eq!(json, "\"bcbpt(dt=25ms)\"", "a spec serializes as a string");
        let back: ProtocolSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn builtins_build_every_paper_protocol() {
        let registry = ProtocolRegistry::builtins();
        assert_eq!(
            registry.families().collect::<Vec<_>>(),
            vec!["bcbpt", "bitcoin", "lbc"]
        );
        for (label, name) in [
            ("bitcoin", "bitcoin"),
            ("lbc", "lbc"),
            ("bcbpt", "bcbpt"),
            ("bcbpt(dt=40ms)", "bcbpt"),
        ] {
            let policy = registry.build(&ProtocolSpec::new(label)).unwrap();
            assert_eq!(policy.name(), name, "{label}");
        }
    }

    #[test]
    fn unknown_family_errors_and_names_the_known_set() {
        let registry = ProtocolRegistry::builtins();
        let err = registry
            .build(&ProtocolSpec::new("gossipsub(k=3)"))
            .unwrap_err();
        assert!(err.contains("gossipsub"), "{err}");
        assert!(err.contains("bitcoin"), "error lists known families: {err}");
        assert!(!ProtocolRegistry::new().contains("bitcoin"));
    }

    #[test]
    fn bad_arguments_surface_the_factory_error() {
        let registry = ProtocolRegistry::builtins();
        let err = registry
            .build(&ProtocolSpec::new("bcbpt(dt=-5ms)"))
            .unwrap_err();
        assert!(err.contains("threshold"), "{err}");
    }

    #[test]
    fn custom_policy_registration_smoke() {
        let mut registry = ProtocolRegistry::builtins();
        registry.register("uniform", |spec: &ProtocolSpec| {
            if spec.as_str() != "uniform" {
                return Err(format!("uniform takes no arguments, got {spec}"));
            }
            Ok(Box::new(RandomPolicy::new()))
        });
        assert!(registry.contains("uniform"));
        let policy = registry.build(&ProtocolSpec::new("uniform")).unwrap();
        assert_eq!(policy.name(), "bitcoin", "RandomPolicy reports bitcoin");
        assert!(registry.build(&ProtocolSpec::new("uniform(x=1)")).is_err());
        // Built-ins still resolve after the extension.
        assert!(registry.build(&ProtocolSpec::new("lbc")).is_ok());
    }
}
