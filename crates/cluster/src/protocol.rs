//! Protocol selection: one enum covering the three compared protocols.

use crate::bcbpt::{BcbptConfig, BcbptPolicy};
use crate::lbc::{LbcConfig, LbcPolicy};
use bcbpt_net::{NeighborPolicy, RandomPolicy};
use core::fmt;
use serde::{Deserialize, Serialize};

/// The neighbour-selection protocols compared in the paper's Fig. 3, plus
/// the threshold-parameterised BCBPT variants of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Protocol {
    /// Vanilla Bitcoin: random neighbour selection.
    Bitcoin,
    /// Locality Based Clustering (geographic, ref \[6\]).
    Lbc,
    /// Bitcoin Clustering Based Ping Time with threshold `Dth` (ms).
    Bcbpt {
        /// The clustering threshold in milliseconds.
        threshold_ms: f64,
    },
}

impl Protocol {
    /// The paper's default BCBPT configuration (`Dth = 25 ms`).
    pub fn bcbpt_paper() -> Self {
        Protocol::Bcbpt { threshold_ms: 25.0 }
    }

    /// Parses a protocol label back into the built-in protocol it names —
    /// the inverse of [`label`](Self::label).
    ///
    /// Accepted forms: `"bitcoin"`, `"lbc"`, `"bcbpt"` (paper default
    /// threshold) and `"bcbpt(dt=<ms>ms)"`.
    ///
    /// # Errors
    ///
    /// Returns a description of why the label does not name a built-in
    /// protocol.
    pub fn parse(label: &str) -> Result<Self, String> {
        let label = label.trim();
        match label {
            "bitcoin" => return Ok(Protocol::Bitcoin),
            "lbc" => return Ok(Protocol::Lbc),
            "bcbpt" => return Ok(Protocol::bcbpt_paper()),
            _ => {}
        }
        if let Some(args) = label
            .strip_prefix("bcbpt(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            let value = args
                .trim()
                .strip_prefix("dt=")
                .and_then(|v| v.strip_suffix("ms"))
                .ok_or_else(|| format!("bcbpt arguments must look like dt=<ms>ms, got {args:?}"))?;
            let threshold_ms: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("invalid bcbpt threshold {value:?}"))?;
            if !threshold_ms.is_finite() || threshold_ms <= 0.0 {
                return Err(format!(
                    "bcbpt threshold must be positive and finite, got {threshold_ms}"
                ));
            }
            return Ok(Protocol::Bcbpt { threshold_ms });
        }
        Err(format!(
            "unknown protocol label {label:?} (expected bitcoin, lbc, bcbpt or bcbpt(dt=<ms>ms))"
        ))
    }

    /// Instantiates the corresponding [`NeighborPolicy`].
    pub fn build_policy(&self) -> Box<dyn NeighborPolicy> {
        match *self {
            Protocol::Bitcoin => Box::new(RandomPolicy::new()),
            Protocol::Lbc => Box::new(LbcPolicy::new(LbcConfig::paper())),
            Protocol::Bcbpt { threshold_ms } => Box::new(BcbptPolicy::new(
                BcbptConfig::with_threshold_ms(threshold_ms),
            )),
        }
    }

    /// Short label used in figures and reports.
    pub fn label(&self) -> String {
        match self {
            Protocol::Bitcoin => "bitcoin".to_string(),
            Protocol::Lbc => "lbc".to_string(),
            Protocol::Bcbpt { threshold_ms } => format!("bcbpt(dt={threshold_ms}ms)"),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl core::str::FromStr for Protocol {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Protocol::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_report_expected_names() {
        assert_eq!(Protocol::Bitcoin.build_policy().name(), "bitcoin");
        assert_eq!(Protocol::Lbc.build_policy().name(), "lbc");
        assert_eq!(Protocol::bcbpt_paper().build_policy().name(), "bcbpt");
    }

    #[test]
    fn labels_distinct() {
        let labels: Vec<String> = [
            Protocol::Bitcoin,
            Protocol::Lbc,
            Protocol::Bcbpt { threshold_ms: 25.0 },
            Protocol::Bcbpt { threshold_ms: 50.0 },
        ]
        .iter()
        .map(Protocol::label)
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(Protocol::bcbpt_paper().to_string(), "bcbpt(dt=25ms)");
    }

    #[test]
    fn serde_round_trip() {
        let p = Protocol::Bcbpt { threshold_ms: 30.0 };
        let json = serde_json::to_string(&p).unwrap();
        let back: Protocol = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn parse_inverts_label_for_all_builtins() {
        for p in [
            Protocol::Bitcoin,
            Protocol::Lbc,
            Protocol::bcbpt_paper(),
            Protocol::Bcbpt { threshold_ms: 30.0 },
            Protocol::Bcbpt { threshold_ms: 12.5 },
            Protocol::Bcbpt {
                threshold_ms: 100.0,
            },
        ] {
            assert_eq!(Protocol::parse(&p.label()).unwrap(), p, "{p}");
        }
    }

    #[test]
    fn parse_accepts_shorthand_and_whitespace() {
        assert_eq!(Protocol::parse("bcbpt").unwrap(), Protocol::bcbpt_paper());
        assert_eq!(
            Protocol::parse(" bcbpt( dt=40ms ) ").unwrap(),
            Protocol::Bcbpt { threshold_ms: 40.0 }
        );
        assert_eq!(
            "bitcoin".parse::<Protocol>().unwrap(),
            Protocol::Bitcoin,
            "FromStr delegates to parse"
        );
    }

    #[test]
    fn parse_rejects_malformed_labels() {
        for bad in [
            "btc",
            "bcbpt(dt=25)",
            "bcbpt(25ms)",
            "bcbpt(dt=-3ms)",
            "bcbpt(dt=nanms)",
            "bcbpt(dt=infms)",
            "",
        ] {
            assert!(Protocol::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
