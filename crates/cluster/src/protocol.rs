//! Protocol selection: one enum covering the three compared protocols.

use crate::bcbpt::{BcbptConfig, BcbptPolicy};
use crate::lbc::{LbcConfig, LbcPolicy};
use bcbpt_net::{NeighborPolicy, RandomPolicy};
use core::fmt;
use serde::{Deserialize, Serialize};

/// The neighbour-selection protocols compared in the paper's Fig. 3, plus
/// the threshold-parameterised BCBPT variants of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Protocol {
    /// Vanilla Bitcoin: random neighbour selection.
    Bitcoin,
    /// Locality Based Clustering (geographic, ref [6]).
    Lbc,
    /// Bitcoin Clustering Based Ping Time with threshold `Dth` (ms).
    Bcbpt {
        /// The clustering threshold in milliseconds.
        threshold_ms: f64,
    },
}

impl Protocol {
    /// The paper's default BCBPT configuration (`Dth = 25 ms`).
    pub fn bcbpt_paper() -> Self {
        Protocol::Bcbpt { threshold_ms: 25.0 }
    }

    /// Instantiates the corresponding [`NeighborPolicy`].
    pub fn build_policy(&self) -> Box<dyn NeighborPolicy> {
        match *self {
            Protocol::Bitcoin => Box::new(RandomPolicy::new()),
            Protocol::Lbc => Box::new(LbcPolicy::new(LbcConfig::paper())),
            Protocol::Bcbpt { threshold_ms } => Box::new(BcbptPolicy::new(
                BcbptConfig::with_threshold_ms(threshold_ms),
            )),
        }
    }

    /// Short label used in figures and reports.
    pub fn label(&self) -> String {
        match self {
            Protocol::Bitcoin => "bitcoin".to_string(),
            Protocol::Lbc => "lbc".to_string(),
            Protocol::Bcbpt { threshold_ms } => format!("bcbpt(dt={threshold_ms}ms)"),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_report_expected_names() {
        assert_eq!(Protocol::Bitcoin.build_policy().name(), "bitcoin");
        assert_eq!(Protocol::Lbc.build_policy().name(), "lbc");
        assert_eq!(Protocol::bcbpt_paper().build_policy().name(), "bcbpt");
    }

    #[test]
    fn labels_distinct() {
        let labels: Vec<String> = [
            Protocol::Bitcoin,
            Protocol::Lbc,
            Protocol::Bcbpt { threshold_ms: 25.0 },
            Protocol::Bcbpt { threshold_ms: 50.0 },
        ]
        .iter()
        .map(Protocol::label)
        .collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(Protocol::bcbpt_paper().to_string(), "bcbpt(dt=25ms)");
    }

    #[test]
    fn serde_round_trip() {
        let p = Protocol::Bcbpt { threshold_ms: 30.0 };
        let json = serde_json::to_string(&p).unwrap();
        let back: Protocol = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
