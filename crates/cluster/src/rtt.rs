//! Ping-latency estimation with repeated sampling.
//!
//! "As distances measurements are subject to network congestion and
//! therefore dynamic, within some variance, multiple messages between pairs
//! of nodes, repeatedly are sent over the time in order to determine
//! variance." (paper §IV.A). The estimator caches per-pair measurements,
//! refreshes them periodically, and exposes both the running mean and the
//! observed variance.

use bcbpt_net::{NetView, NodeId};
use bcbpt_stats::Summary;
use std::collections::{BTreeMap, VecDeque};

/// Configuration of the [`RttEstimator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttEstimatorConfig {
    /// Re-measure a cached pair after this many queries (the paper keeps
    /// measuring "over the time"; 0 disables refresh).
    pub refresh_every: u32,
    /// Maximum cached pairs; oldest-inserted entries are evicted beyond it.
    pub max_entries: usize,
}

impl Default for RttEstimatorConfig {
    fn default() -> Self {
        RttEstimatorConfig {
            refresh_every: 8,
            max_entries: 100_000,
        }
    }
}

/// One cached pairwise estimate.
#[derive(Debug, Clone, PartialEq)]
struct Entry {
    summary: Summary,
    queries_since_refresh: u32,
}

/// Caching RTT estimator shared by the clustering policies.
///
/// Measurements go through [`NetView::measure_rtt_ms`], so every refresh
/// costs accounted PING/PONG messages — the overhead the paper defers to
/// future work and this reproduction measures.
#[derive(Debug, Clone, Default)]
pub struct RttEstimator {
    config: RttEstimatorConfig,
    entries: BTreeMap<(NodeId, NodeId), Entry>,
    /// Keys in insertion order, for O(1) amortised FIFO eviction. May hold
    /// stale keys (already evicted/forgotten); they are skipped on pop.
    insertion_queue: VecDeque<(NodeId, NodeId)>,
}

impl RttEstimator {
    /// Creates an estimator with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an estimator with the given configuration.
    pub fn with_config(config: RttEstimatorConfig) -> Self {
        RttEstimator {
            config,
            entries: BTreeMap::new(),
            insertion_queue: VecDeque::new(),
        }
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The estimated RTT between `a` and `b` in milliseconds, measuring (at
    /// message cost) when the pair is unknown or due for refresh.
    pub fn estimate_ms(&mut self, a: NodeId, b: NodeId, view: &mut NetView<'_>) -> f64 {
        let key = Self::key(a, b);
        let refresh_every = self.config.refresh_every;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.queries_since_refresh += 1;
            // The measuring query counts towards the period, so a period of
            // `refresh_every` re-measures on every `refresh_every`-th query.
            if refresh_every == 0 || entry.queries_since_refresh + 1 < refresh_every {
                return entry.summary.mean();
            }
            let sample = view.measure_rtt_ms(a, b);
            entry.summary.record(sample);
            entry.queries_since_refresh = 0;
            return entry.summary.mean();
        }
        let sample = view.measure_rtt_ms(a, b);
        let mut summary = Summary::new();
        summary.record(sample);
        self.entries.insert(
            key,
            Entry {
                summary,
                queries_since_refresh: 0,
            },
        );
        self.insertion_queue.push_back(key);
        self.evict_if_needed();
        sample
    }

    /// The cached estimate for a pair without triggering a measurement —
    /// what the policy currently *believes* the RTT is. This is the value
    /// a ping-spoofing adversary poisons, so security experiments inspect
    /// it to compare belief against ground truth.
    pub fn cached_ms(&self, a: NodeId, b: NodeId) -> Option<f64> {
        self.entries.get(&Self::key(a, b)).map(|e| e.summary.mean())
    }

    /// Observed sample variance for a pair, if it has been measured more
    /// than once.
    pub fn variance_ms2(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let e = self.entries.get(&Self::key(a, b))?;
        (e.summary.count() >= 2).then(|| e.summary.sample_variance())
    }

    /// Number of measurement samples recorded for a pair.
    pub fn samples(&self, a: NodeId, b: NodeId) -> u64 {
        self.entries
            .get(&Self::key(a, b))
            .map_or(0, |e| e.summary.count())
    }

    /// Number of cached pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all cached pairs involving `node` (it left the network; its
    /// next session may have different access characteristics).
    pub fn forget_node(&mut self, node: NodeId) {
        self.entries.retain(|&(a, b), _| a != node && b != node);
    }

    fn evict_if_needed(&mut self) {
        while self.entries.len() > self.config.max_entries {
            match self.insertion_queue.pop_front() {
                Some(key) => {
                    // Stale queue entries (already evicted or forgotten)
                    // simply miss here and we keep popping.
                    self.entries.remove(&key);
                }
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_net::{MessageKind, NetConfig, Network, RandomPolicy};

    /// Builds a tiny network and hands its view to the closure.
    fn with_view<F: FnOnce(&mut NetView<'_>)>(f: F) {
        // Use the network's testing hook to borrow a view.
        let mut config = NetConfig::test_scale();
        config.num_nodes = 10;
        let mut net = Network::build(config, Box::new(RandomPolicy::new()), 99).unwrap();
        net.with_view_for_tests(f);
    }

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn first_estimate_measures() {
        with_view(|view| {
            let mut est = RttEstimator::new();
            let before = view.stats_for_tests().count(MessageKind::Ping);
            let rtt = est.estimate_ms(n(0), n(1), view);
            assert!(rtt > 0.0);
            let after = view.stats_for_tests().count(MessageKind::Ping);
            assert!(after > before, "first estimate must send pings");
            assert_eq!(est.samples(n(0), n(1)), 1);
        });
    }

    #[test]
    fn cached_estimate_is_free_until_refresh() {
        with_view(|view| {
            let mut est = RttEstimator::with_config(RttEstimatorConfig {
                refresh_every: 4,
                max_entries: 100,
            });
            let _ = est.estimate_ms(n(0), n(1), view);
            let pings_after_first = view.stats_for_tests().count(MessageKind::Ping);
            let _ = est.estimate_ms(n(0), n(1), view);
            let _ = est.estimate_ms(n(0), n(1), view);
            assert_eq!(
                view.stats_for_tests().count(MessageKind::Ping),
                pings_after_first,
                "cached queries are free"
            );
            let _ = est.estimate_ms(n(0), n(1), view);
            assert!(
                view.stats_for_tests().count(MessageKind::Ping) > pings_after_first,
                "4th query refreshes"
            );
            assert_eq!(est.samples(n(0), n(1)), 2);
            assert!(est.variance_ms2(n(0), n(1)).is_some());
        });
    }

    #[test]
    fn pair_key_is_symmetric() {
        with_view(|view| {
            let mut est = RttEstimator::new();
            let _ = est.estimate_ms(n(2), n(5), view);
            assert_eq!(est.samples(n(5), n(2)), 1, "same cache entry");
            assert_eq!(est.len(), 1);
        });
    }

    #[test]
    fn forget_node_drops_its_pairs() {
        with_view(|view| {
            let mut est = RttEstimator::new();
            let _ = est.estimate_ms(n(0), n(1), view);
            let _ = est.estimate_ms(n(0), n(2), view);
            let _ = est.estimate_ms(n(1), n(2), view);
            est.forget_node(n(0));
            assert_eq!(est.len(), 1);
            assert_eq!(est.samples(n(1), n(2)), 1);
        });
    }

    #[test]
    fn eviction_bounds_cache() {
        with_view(|view| {
            let mut est = RttEstimator::with_config(RttEstimatorConfig {
                refresh_every: 0,
                max_entries: 3,
            });
            for i in 1..=6u32 {
                let _ = est.estimate_ms(n(0), n(i), view);
            }
            assert_eq!(est.len(), 3);
            // Oldest entries (0,1).. evicted; newest retained.
            assert_eq!(est.samples(n(0), n(6)), 1);
            assert_eq!(est.samples(n(0), n(1)), 0);
        });
    }

    #[test]
    fn refresh_disabled_never_remeasures() {
        with_view(|view| {
            let mut est = RttEstimator::with_config(RttEstimatorConfig {
                refresh_every: 0,
                max_entries: 100,
            });
            let _ = est.estimate_ms(n(0), n(1), view);
            let pings = view.stats_for_tests().count(MessageKind::Ping);
            for _ in 0..50 {
                let _ = est.estimate_ms(n(0), n(1), view);
            }
            assert_eq!(view.stats_for_tests().count(MessageKind::Ping), pings);
        });
    }

    #[test]
    fn cached_ms_reads_without_measuring() {
        with_view(|view| {
            let mut est = RttEstimator::new();
            assert_eq!(est.cached_ms(n(0), n(1)), None, "unknown pair");
            let rtt = est.estimate_ms(n(0), n(1), view);
            let pings = view.stats_for_tests().count(MessageKind::Ping);
            assert_eq!(est.cached_ms(n(0), n(1)), Some(rtt));
            assert_eq!(est.cached_ms(n(1), n(0)), Some(rtt), "symmetric key");
            assert_eq!(
                view.stats_for_tests().count(MessageKind::Ping),
                pings,
                "reading the cache costs nothing"
            );
        });
    }

    #[test]
    fn spoofed_measurements_poison_the_cache() {
        // A ping-spoofing adversary sits between the estimator and the
        // network: what the estimator caches is the forged value, not the
        // ground truth — exactly the attack surface BCBPT exposes.
        let mut config = NetConfig::test_scale();
        config.num_nodes = 10;
        let mut net = Network::build(config, Box::new(RandomPolicy::new()), 99).unwrap();
        let truth = net.base_rtt_ms(n(0), n(1));
        let force = bcbpt_adversary::AdversaryForce::new(
            bcbpt_adversary::AdversaryStrategy::PingSpoof { spoof_factor: 0.01 },
            10,
            1, // attacker_ids(10, 1) = {0}
        )
        .unwrap();
        net.set_adversary(Box::new(force));
        net.with_view_for_tests(|view| {
            let mut est = RttEstimator::new();
            let believed = est.estimate_ms(n(1), n(0), view);
            assert!(
                believed < truth * 0.1,
                "spoofed belief {believed} should be far below truth {truth}"
            );
            assert_eq!(est.cached_ms(n(1), n(0)), Some(believed));
            let honest = est.estimate_ms(n(1), n(2), view);
            assert!(honest > believed, "honest pairs are unaffected");
        });
    }

    #[test]
    fn variance_requires_two_samples() {
        with_view(|view| {
            let mut est = RttEstimator::new();
            let _ = est.estimate_ms(n(0), n(1), view);
            assert_eq!(est.variance_ms2(n(0), n(1)), None);
            assert!(est.variance_ms2(n(3), n(4)).is_none(), "unknown pair");
        });
    }
}
