//! BCBPT — Bitcoin Clustering Based Ping Time (the paper's contribution).
//!
//! Neighbour selection by *measured ping latency* (paper §IV):
//!
//! 1. **Joining** (§IV.B): DNS seeds recommend geographically ranked
//!    candidates; the node measures ping distance to each, sends `JOIN` to
//!    the closest node `K`, receives `K`'s cluster member list
//!    (`CLUSTERLIST`), and connects to cluster members whose measured
//!    distance is below the threshold `Dth` (Eq. 1, default 25 ms).
//! 2. **Long links**: "each node maintains a few long distance links to the
//!    outside cluster" so information crosses cluster boundaries.
//! 3. **Maintenance** (§IV.B): every discovery tick (100 ms in §V.B) the
//!    node evaluates newly discovered peers by ping distance, adopting and
//!    connecting close ones, topping up long links otherwise.
//!
//! Distance measurements go through the [`RttEstimator`], which re-pings
//! "repeatedly ... over the time" (§IV.A) and pays accounted PING/PONG
//! traffic — the overhead this reproduction's extension experiment
//! quantifies.

use crate::registry::ClusterRegistry;
use crate::rtt::RttEstimator;
use bcbpt_net::{geo_ranked_candidates, Message, NeighborPolicy, NetView, NodeId, TopologyActions};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// BCBPT tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BcbptConfig {
    /// The clustering latency threshold `Dth` in milliseconds (Eq. 1).
    /// Paper default: 25 ms; Fig. 4 sweeps 30/50/100 ms.
    pub threshold_ms: f64,
    /// Outbound slots reserved for links *outside* the cluster ("a few long
    /// distance links", §IV).
    pub long_links: usize,
    /// DNS candidates requested when joining.
    pub candidate_pool: usize,
    /// Cluster members evaluated per join/maintenance round (bounds the
    /// ping cost per tick).
    pub eval_budget: usize,
}

impl BcbptConfig {
    /// The paper's experiment configuration: `Dth = 25 ms` (§V.B).
    pub fn paper() -> Self {
        BcbptConfig {
            threshold_ms: 25.0,
            long_links: 2,
            candidate_pool: 16,
            eval_budget: 24,
        }
    }

    /// Same shape with a different threshold (Fig. 4 sweeps).
    pub fn with_threshold_ms(threshold_ms: f64) -> Self {
        BcbptConfig {
            threshold_ms,
            ..Self::paper()
        }
    }
}

impl Default for BcbptConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The BCBPT neighbour-selection policy.
///
/// # Examples
///
/// ```
/// use bcbpt_cluster::{BcbptConfig, BcbptPolicy};
/// use bcbpt_net::{NetConfig, Network};
///
/// let mut config = NetConfig::test_scale();
/// config.num_nodes = 40;
/// let policy = BcbptPolicy::new(BcbptConfig::paper());
/// let mut net = Network::build(config, Box::new(policy), 7)?;
/// net.warmup_ms(2_000.0);
/// // Clusters formed: every node reports a cluster id.
/// let c = net.cluster_of(bcbpt_net::NodeId::from_index(0));
/// assert!(c.is_some());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct BcbptPolicy {
    config: BcbptConfig,
    registry: ClusterRegistry,
    estimator: RttEstimator,
}

impl BcbptPolicy {
    /// Creates the policy.
    pub fn new(config: BcbptConfig) -> Self {
        assert!(
            config.threshold_ms > 0.0 && config.threshold_ms.is_finite(),
            "threshold must be positive"
        );
        BcbptPolicy {
            config,
            registry: ClusterRegistry::new(0),
            estimator: RttEstimator::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BcbptConfig {
        &self.config
    }

    /// The cluster registry (sizes, membership) for experiment inspection.
    pub fn registry(&self) -> &ClusterRegistry {
        &self.registry
    }

    /// The RTT estimator — the attack surface a ping-spoofing adversary
    /// targets. Experiments inspect its cached beliefs
    /// ([`RttEstimator::cached_ms`]) against ground-truth RTT to quantify
    /// how far proximity forgery poisoned neighbour selection.
    pub fn estimator(&self) -> &RttEstimator {
        &self.estimator
    }

    fn ensure_sized(&mut self, n: usize) {
        if self.registry.num_nodes() < n {
            let mut grown = ClusterRegistry::new(n);
            for c in 0..self.registry.num_clusters() {
                let nc = grown.create_cluster();
                for &m in self.registry.members(c) {
                    grown.assign(m, nc);
                }
            }
            self.registry = grown;
        }
    }

    /// Classifies `node`'s current peers into (intra-cluster, long) counts.
    fn link_budget(&self, node: NodeId, view: &NetView<'_>) -> (usize, usize) {
        let mut intra = 0;
        let mut long = 0;
        for p in view.peers(node) {
            if self.registry.same_cluster(node, p) {
                intra += 1;
            } else {
                long += 1;
            }
        }
        (intra, long)
    }

    fn intra_target(&self, view: &NetView<'_>) -> usize {
        view.config()
            .target_outbound
            .saturating_sub(self.config.long_links)
            .max(1)
    }

    /// The join procedure (§IV.B): rank candidates by measured distance,
    /// JOIN the closest, connect within its cluster, keep long links.
    fn join(&mut self, node: NodeId, view: &mut NetView<'_>) -> Vec<NodeId> {
        let candidates = geo_ranked_candidates(view, node, self.config.candidate_pool);
        if candidates.is_empty() {
            return Vec::new();
        }
        // Proximity ordering by *measured* ping distance (Eq. 1).
        let mut ranked: Vec<(f64, NodeId)> = candidates
            .iter()
            .map(|&c| (self.estimator.estimate_ms(node, c, view), c))
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite rtt"));

        let (closest_d, closest) = ranked[0];
        // Eq. 1 decides membership: the node only joins the closest node's
        // cluster when the measured distance clears the threshold;
        // otherwise it is "far from everything" and starts its own cluster,
        // relying on long links for connectivity.
        let cluster = if closest_d < self.config.threshold_ms {
            // JOIN -> CLUSTERLIST exchange with the closest node (§IV.B).
            view.count_control(&Message::Join);
            let c = match self.registry.cluster_of(closest) {
                Some(c) => c,
                None => {
                    let c = self.registry.create_cluster();
                    self.registry.assign(closest, c);
                    c
                }
            };
            let members: Vec<NodeId> = self
                .registry
                .members(c)
                .iter()
                .copied()
                .filter(|&m| m != node)
                .collect();
            view.count_control(&Message::ClusterList { members });
            c
        } else {
            self.registry.create_cluster()
        };
        self.registry.assign(node, cluster);
        let members: Vec<NodeId> = self
            .registry
            .members(cluster)
            .iter()
            .copied()
            .filter(|&m| m != node)
            .collect();

        // Connect to close cluster members, nearest first.
        let mut member_ranked: Vec<(f64, NodeId)> = members
            .iter()
            .take(self.config.eval_budget)
            .map(|&m| (self.estimator.estimate_ms(node, m, view), m))
            .collect();
        member_ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite rtt"));

        let intra_budget = self.intra_target(view);
        let mut targets: Vec<NodeId> = member_ranked
            .iter()
            .filter(|(d, m)| *d < self.config.threshold_ms && view.is_online(*m))
            .map(|&(_, m)| m)
            .take(intra_budget)
            .collect();

        // Long-distance links to the outside of the cluster.
        let mut outside: Vec<NodeId> = ranked
            .iter()
            .map(|&(_, c)| c)
            .filter(|&c| !self.registry.same_cluster(node, c) && !targets.contains(&c))
            .collect();
        outside.shuffle(view.rng());
        targets.extend(outside.iter().copied().take(self.config.long_links));

        // Never strand the node: fill remaining slots with the closest
        // candidates regardless of threshold.
        let want = view.config().target_outbound;
        if targets.len() < want {
            for &(_, c) in &ranked {
                if targets.len() >= want {
                    break;
                }
                if !targets.contains(&c) {
                    targets.push(c);
                }
            }
        }
        targets.truncate(want);
        targets
    }
}

impl NeighborPolicy for BcbptPolicy {
    fn name(&self) -> &'static str {
        "bcbpt"
    }

    fn clone_box(&self) -> Box<dyn NeighborPolicy> {
        Box::new(self.clone())
    }

    fn bootstrap(&mut self, node: NodeId, view: &mut NetView<'_>) -> Vec<NodeId> {
        self.ensure_sized(view.num_nodes());
        self.join(node, view)
    }

    fn on_discovery(
        &mut self,
        node: NodeId,
        discovered: &[NodeId],
        view: &mut NetView<'_>,
    ) -> TopologyActions {
        self.ensure_sized(view.num_nodes());
        if self.registry.cluster_of(node).is_none() {
            // Churn edge: we lost membership; rejoin through the full
            // procedure.
            return TopologyActions::connect_to(self.join(node, view));
        }
        let free = view.free_outbound_slots(node);
        if free == 0 || discovered.is_empty() {
            return TopologyActions::none();
        }
        let (intra_now, long_now) = self.link_budget(node, view);
        let intra_budget = self.intra_target(view).saturating_sub(intra_now);
        let long_budget = self.config.long_links.saturating_sub(long_now);

        let fresh: Vec<NodeId> = discovered
            .iter()
            .copied()
            .filter(|&c| c != node && view.is_online(c) && !view.connected(node, c))
            .take(self.config.eval_budget)
            .collect();
        let mut ranked: Vec<(f64, NodeId)> = fresh
            .into_iter()
            .map(|c| (self.estimator.estimate_ms(node, c, view), c))
            .collect();
        ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite rtt"));

        let mut connect = Vec::new();
        let mut intra_used = 0usize;
        let mut long_used = 0usize;
        for &(d, c) in &ranked {
            if connect.len() >= free {
                break;
            }
            let my_cluster = self.registry.cluster_of(node).expect("joined above");
            if d < self.config.threshold_ms {
                // Close in the physical internet: same-cluster material.
                match self.registry.cluster_of(c) {
                    None => {
                        // Adopt the unclustered close node into our cluster
                        // (it JOINs us).
                        view.count_control(&Message::Join);
                        view.count_control(&Message::ClusterList {
                            members: self.registry.members(my_cluster).iter().copied().collect(),
                        });
                        self.registry.assign(c, my_cluster);
                        if intra_used < intra_budget {
                            connect.push(c);
                            intra_used += 1;
                        }
                    }
                    Some(cc) if cc == my_cluster => {
                        if intra_used < intra_budget {
                            connect.push(c);
                            intra_used += 1;
                        }
                    }
                    Some(other) => {
                        // A close pair spanning two clusters means those
                        // clusters satisfy Eq. 1 transitively: merge them
                        // (single-linkage) and treat the link as intra.
                        self.registry.merge(my_cluster, other);
                        if intra_used < intra_budget {
                            connect.push(c);
                            intra_used += 1;
                        }
                    }
                }
            } else if long_used < long_budget {
                connect.push(c);
                long_used += 1;
            }
        }
        TopologyActions::connect_to(connect)
    }

    fn on_leave(&mut self, node: NodeId, _view: &mut NetView<'_>) {
        self.registry.remove(node);
        self.estimator.forget_node(node);
    }

    fn cluster_of(&self, node: NodeId) -> Option<usize> {
        self.registry.cluster_of(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_net::{MessageKind, NetConfig, Network};

    fn build(n: usize, threshold: f64, seed: u64) -> Network {
        let mut config = NetConfig::test_scale();
        config.num_nodes = n;
        let policy = BcbptPolicy::new(BcbptConfig::with_threshold_ms(threshold));
        Network::build(config, Box::new(policy), seed).unwrap()
    }

    #[test]
    fn every_node_gets_a_cluster() {
        let mut net = build(60, 25.0, 1);
        net.warmup_ms(1_000.0);
        for i in 0..60u32 {
            assert!(
                net.cluster_of(NodeId::from_index(i)).is_some(),
                "node {i} unclustered"
            );
        }
    }

    #[test]
    fn cluster_peers_are_mostly_close() {
        let mut net = build(80, 25.0, 2);
        net.warmup_ms(3_000.0);
        // Among connected same-cluster pairs, most should be under (or near)
        // the threshold in ground-truth RTT.
        let mut close = 0usize;
        let mut total = 0usize;
        for (a, b) in net.links().edges().collect::<Vec<_>>() {
            if net.cluster_of(a) == net.cluster_of(b) {
                total += 1;
                if net.base_rtt_ms(a, b) < 25.0 * 1.5 {
                    close += 1;
                }
            }
        }
        assert!(total > 0);
        let frac = close as f64 / total as f64;
        assert!(
            frac > 0.5,
            "only {frac:.2} of intra-cluster links are close ({close}/{total})"
        );
    }

    #[test]
    fn network_stays_connected_across_clusters() {
        let mut net = build(60, 25.0, 3);
        net.warmup_ms(3_000.0);
        let frac = net.reachable_fraction(NodeId::from_index(0));
        assert!(frac > 0.95, "reachable fraction {frac}");
    }

    #[test]
    fn join_emits_cluster_control_and_probe_traffic() {
        // A generous threshold so that (almost) every joining node finds a
        // close-enough cluster head and performs the JOIN exchange.
        let net = build(30, 500.0, 4);
        assert!(
            net.stats().cluster_control_messages() >= 2 * (30 - 5),
            "expected most nodes to JOIN, saw {}",
            net.stats().cluster_control_messages()
        );
        assert!(
            net.stats().count(MessageKind::Ping) > 0,
            "bootstrap must measure ping distances"
        );
    }

    #[test]
    fn threshold_controls_cluster_count() {
        let clusters_at = |dt: f64| {
            let mut net = build(100, dt, 12);
            net.warmup_ms(2_000.0);
            let mut ids = std::collections::BTreeSet::new();
            for i in 0..100u32 {
                if let Some(c) = net.cluster_of(NodeId::from_index(i)) {
                    ids.insert(c);
                }
            }
            ids.len()
        };
        let tight = clusters_at(5.0);
        let loose = clusters_at(400.0);
        assert!(
            tight > loose,
            "tight threshold must fragment clusters: {tight} vs {loose}"
        );
        assert!(loose <= 10, "a 400ms threshold should form few clusters");
    }

    #[test]
    fn smaller_threshold_makes_smaller_clusters() {
        let sizes = |threshold: f64| {
            let mut net = build(100, threshold, 5);
            net.warmup_ms(2_000.0);
            // Count clusters by distinct ids.
            let mut ids = std::collections::BTreeSet::new();
            for i in 0..100u32 {
                if let Some(c) = net.cluster_of(NodeId::from_index(i)) {
                    ids.insert(c);
                }
            }
            ids.len()
        };
        let tight = sizes(10.0);
        let loose = sizes(200.0);
        assert!(
            tight >= loose,
            "tight threshold should produce at least as many clusters ({tight} vs {loose})"
        );
    }

    #[test]
    fn policy_survives_churn() {
        let mut config = NetConfig::test_scale();
        config.num_nodes = 40;
        config.churn = bcbpt_geo::ChurnModel {
            median_session_ms: 2_000.0,
            session_sigma: 0.8,
            mean_offline_ms: 800.0,
        };
        let policy = BcbptPolicy::new(BcbptConfig::paper());
        let mut net = Network::build(config, Box::new(policy), 6).unwrap();
        net.run_for_ms(15_000.0);
        assert!(net.online_count() > 0);
        // Online nodes keep cluster membership.
        let mut clustered = 0;
        for i in 0..40u32 {
            let node = NodeId::from_index(i);
            if net.is_online(node) && net.cluster_of(node).is_some() {
                clustered += 1;
            }
        }
        assert!(clustered > 0);
    }

    #[test]
    fn ping_spoofers_infiltrate_bcbpt_clusters() {
        // The proximity-forgery attack end to end at the policy layer:
        // attackers answering probes with forged nearness get adopted into
        // honest clusters (and trigger merge cascades that collapse the
        // cluster structure), far beyond their honest baseline.
        let infiltration = |spoof: Option<f64>| {
            let mut config = NetConfig::test_scale();
            config.num_nodes = 80;
            let policy = BcbptPolicy::new(BcbptConfig::paper());
            let mut net = Network::build(config, Box::new(policy), 21).unwrap();
            if let Some(spoof_factor) = spoof {
                let force = bcbpt_adversary::AdversaryForce::new(
                    bcbpt_adversary::AdversaryStrategy::PingSpoof { spoof_factor },
                    80,
                    8,
                )
                .unwrap();
                net.set_adversary(Box::new(force));
            }
            net.warmup_ms(3_000.0);
            let is_attacker = |node: NodeId| node.index().is_multiple_of(10); // attacker_ids(80, 8)
            let mut attacker_clusters = std::collections::BTreeSet::new();
            let mut all_clusters = std::collections::BTreeSet::new();
            for i in 0..80u32 {
                let node = NodeId::from_index(i);
                if let Some(c) = net.cluster_of(node) {
                    all_clusters.insert(c);
                    if is_attacker(node) {
                        attacker_clusters.insert(c);
                    }
                }
            }
            let mut infiltrated = 0usize;
            let mut clustered = 0usize;
            for i in 0..80u32 {
                let node = NodeId::from_index(i);
                if is_attacker(node) || !net.is_online(node) {
                    continue;
                }
                if let Some(c) = net.cluster_of(node) {
                    clustered += 1;
                    if attacker_clusters.contains(&c) {
                        infiltrated += 1;
                    }
                }
            }
            (
                infiltrated as f64 / clustered.max(1) as f64,
                all_clusters.len(),
            )
        };
        let (clean, clean_clusters) = infiltration(None);
        let (spoofed, spoofed_clusters) = infiltration(Some(0.02));
        assert!(
            spoofed > clean + 0.25 && spoofed > 0.8,
            "spoofed infiltration {spoofed} must clearly exceed clean {clean}"
        );
        assert!(
            spoofed_clusters * 4 < clean_clusters,
            "forged proximity must collapse the cluster structure \
             ({clean_clusters} clean vs {spoofed_clusters} spoofed clusters)"
        );
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn invalid_threshold_rejected() {
        BcbptPolicy::new(BcbptConfig::with_threshold_ms(0.0));
    }

    #[test]
    fn config_constructors() {
        assert_eq!(BcbptConfig::paper().threshold_ms, 25.0);
        assert_eq!(BcbptConfig::with_threshold_ms(50.0).threshold_ms, 50.0);
        assert_eq!(BcbptConfig::default(), BcbptConfig::paper());
    }
}
