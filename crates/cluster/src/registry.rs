//! Cluster membership bookkeeping shared by the clustering policies.

use bcbpt_net::NodeId;
use std::collections::BTreeSet;

/// Tracks which cluster every node belongs to.
///
/// Cluster ids are dense indices; empty clusters are kept (ids stay stable)
/// but report zero size.
///
/// # Examples
///
/// ```
/// use bcbpt_cluster::ClusterRegistry;
/// use bcbpt_net::NodeId;
///
/// let mut reg = ClusterRegistry::new(10);
/// let c = reg.create_cluster();
/// reg.assign(NodeId::from_index(0), c);
/// reg.assign(NodeId::from_index(1), c);
/// assert_eq!(reg.cluster_of(NodeId::from_index(0)), Some(c));
/// assert_eq!(reg.size(c), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterRegistry {
    membership: Vec<Option<usize>>,
    members: Vec<BTreeSet<NodeId>>,
}

impl ClusterRegistry {
    /// Creates a registry for `n` nodes, all initially unclustered.
    pub fn new(n: usize) -> Self {
        ClusterRegistry {
            membership: vec![None; n],
            members: Vec::new(),
        }
    }

    /// Number of nodes the registry covers.
    pub fn num_nodes(&self) -> usize {
        self.membership.len()
    }

    /// Creates a new empty cluster and returns its id.
    pub fn create_cluster(&mut self) -> usize {
        self.members.push(BTreeSet::new());
        self.members.len() - 1
    }

    /// Number of clusters ever created (including now-empty ones).
    pub fn num_clusters(&self) -> usize {
        self.members.len()
    }

    /// Assigns `node` to `cluster`, removing it from any previous cluster.
    ///
    /// # Panics
    ///
    /// Panics when `cluster` does not exist or `node` is out of range.
    pub fn assign(&mut self, node: NodeId, cluster: usize) {
        assert!(cluster < self.members.len(), "unknown cluster {cluster}");
        if let Some(old) = self.membership[node.index()] {
            if old == cluster {
                return;
            }
            self.members[old].remove(&node);
        }
        self.membership[node.index()] = Some(cluster);
        self.members[cluster].insert(node);
    }

    /// Removes `node` from its cluster (e.g. on churn departure).
    /// Returns the cluster it left, if any.
    pub fn remove(&mut self, node: NodeId) -> Option<usize> {
        let cluster = self.membership[node.index()].take()?;
        self.members[cluster].remove(&node);
        Some(cluster)
    }

    /// The cluster `node` belongs to, if any.
    pub fn cluster_of(&self, node: NodeId) -> Option<usize> {
        self.membership.get(node.index()).copied().flatten()
    }

    /// `true` when both nodes belong to the same cluster.
    pub fn same_cluster(&self, a: NodeId, b: NodeId) -> bool {
        match (self.cluster_of(a), self.cluster_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Members of `cluster`, in id order.
    ///
    /// # Panics
    ///
    /// Panics when `cluster` does not exist.
    pub fn members(&self, cluster: usize) -> &BTreeSet<NodeId> {
        &self.members[cluster]
    }

    /// Size of `cluster`.
    pub fn size(&self, cluster: usize) -> usize {
        self.members.get(cluster).map_or(0, BTreeSet::len)
    }

    /// Sizes of all non-empty clusters, descending.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .members
            .iter()
            .map(BTreeSet::len)
            .filter(|&s| s > 0)
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// Number of nodes currently assigned to any cluster.
    pub fn clustered_count(&self) -> usize {
        self.membership.iter().filter(|m| m.is_some()).count()
    }

    /// Merges two clusters, moving the members of the smaller into the
    /// larger, and returns the surviving cluster id. Merging a cluster with
    /// itself is a no-op.
    ///
    /// The paper's membership rule (`D(i,j) < Dth` ⇒ same cluster, Eq. 1)
    /// is a single-linkage criterion: discovering a close pair that spans
    /// two clusters implies those clusters are one.
    ///
    /// # Panics
    ///
    /// Panics when either cluster id does not exist.
    pub fn merge(&mut self, a: usize, b: usize) -> usize {
        assert!(a < self.members.len(), "unknown cluster {a}");
        assert!(b < self.members.len(), "unknown cluster {b}");
        if a == b {
            return a;
        }
        let (dst, src) = if self.members[a].len() >= self.members[b].len() {
            (a, b)
        } else {
            (b, a)
        };
        let moved: Vec<NodeId> = self.members[src].iter().copied().collect();
        for node in moved {
            self.membership[node.index()] = Some(dst);
            self.members[dst].insert(node);
        }
        self.members[src].clear();
        dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn fresh_registry_is_unclustered() {
        let reg = ClusterRegistry::new(5);
        assert_eq!(reg.num_nodes(), 5);
        assert_eq!(reg.num_clusters(), 0);
        assert_eq!(reg.cluster_of(n(0)), None);
        assert_eq!(reg.clustered_count(), 0);
        assert!(reg.sizes().is_empty());
    }

    #[test]
    fn assign_and_move() {
        let mut reg = ClusterRegistry::new(5);
        let a = reg.create_cluster();
        let b = reg.create_cluster();
        reg.assign(n(0), a);
        reg.assign(n(1), a);
        reg.assign(n(2), b);
        assert_eq!(reg.size(a), 2);
        assert_eq!(reg.size(b), 1);
        assert!(reg.same_cluster(n(0), n(1)));
        assert!(!reg.same_cluster(n(0), n(2)));
        // Move node 1 to cluster b.
        reg.assign(n(1), b);
        assert_eq!(reg.size(a), 1);
        assert_eq!(reg.size(b), 2);
        assert!(reg.same_cluster(n(1), n(2)));
    }

    #[test]
    fn reassign_to_same_cluster_is_noop() {
        let mut reg = ClusterRegistry::new(3);
        let c = reg.create_cluster();
        reg.assign(n(0), c);
        reg.assign(n(0), c);
        assert_eq!(reg.size(c), 1);
    }

    #[test]
    fn remove_clears_membership() {
        let mut reg = ClusterRegistry::new(3);
        let c = reg.create_cluster();
        reg.assign(n(0), c);
        assert_eq!(reg.remove(n(0)), Some(c));
        assert_eq!(reg.remove(n(0)), None);
        assert_eq!(reg.cluster_of(n(0)), None);
        assert_eq!(reg.size(c), 0);
    }

    #[test]
    fn unclustered_nodes_never_share() {
        let mut reg = ClusterRegistry::new(3);
        let c = reg.create_cluster();
        reg.assign(n(0), c);
        assert!(!reg.same_cluster(n(0), n(1)));
        assert!(!reg.same_cluster(n(1), n(2)));
    }

    #[test]
    fn sizes_descending_nonempty() {
        let mut reg = ClusterRegistry::new(10);
        let a = reg.create_cluster();
        let b = reg.create_cluster();
        let _empty = reg.create_cluster();
        for i in 0..6 {
            reg.assign(n(i), a);
        }
        for i in 6..8 {
            reg.assign(n(i), b);
        }
        assert_eq!(reg.sizes(), vec![6, 2]);
        assert_eq!(reg.clustered_count(), 8);
    }

    #[test]
    fn members_ordered() {
        let mut reg = ClusterRegistry::new(5);
        let c = reg.create_cluster();
        reg.assign(n(4), c);
        reg.assign(n(1), c);
        let ids: Vec<_> = reg.members(c).iter().copied().collect();
        assert_eq!(ids, vec![n(1), n(4)]);
    }

    #[test]
    #[should_panic(expected = "unknown cluster")]
    fn assign_to_missing_cluster_panics() {
        let mut reg = ClusterRegistry::new(2);
        reg.assign(n(0), 3);
    }

    #[test]
    fn merge_moves_smaller_into_larger() {
        let mut reg = ClusterRegistry::new(10);
        let a = reg.create_cluster();
        let b = reg.create_cluster();
        for i in 0..5 {
            reg.assign(n(i), a);
        }
        for i in 5..7 {
            reg.assign(n(i), b);
        }
        let survivor = reg.merge(a, b);
        assert_eq!(survivor, a);
        assert_eq!(reg.size(a), 7);
        assert_eq!(reg.size(b), 0);
        for i in 0..7 {
            assert_eq!(reg.cluster_of(n(i)), Some(a));
        }
    }

    #[test]
    fn merge_with_self_is_noop() {
        let mut reg = ClusterRegistry::new(3);
        let a = reg.create_cluster();
        reg.assign(n(0), a);
        assert_eq!(reg.merge(a, a), a);
        assert_eq!(reg.size(a), 1);
    }

    #[test]
    fn merge_prefers_larger_side_regardless_of_order() {
        let mut reg = ClusterRegistry::new(10);
        let small = reg.create_cluster();
        let big = reg.create_cluster();
        reg.assign(n(0), small);
        for i in 1..6 {
            reg.assign(n(i), big);
        }
        assert_eq!(reg.merge(small, big), big);
    }
}
