//! LBC — Locality Based Clustering (the authors' earlier protocol, used as
//! the clustered baseline in the paper's Fig. 3).
//!
//! LBC "aims to convert the Bitcoin network topology from normal randomised
//! neighbour selection to location based neighbour selection. Clusters in
//! LBC protocol are formulated by referring an extra function to each node
//! ... each node is responsible for recommending proximity nodes to its
//! neighbours. The proximity is defined based on the physical geographical
//! location." (§V.C, and the authors' ref \[6\]).
//!
//! Concretely: clusters are keyed by country (geolocation of the IP), nodes
//! connect preferentially to geographically nearby same-country nodes, each
//! node keeps a few long links outside its cluster, and peers recommend
//! their own nearby peers. Crucially LBC never *measures* latency — which
//! is exactly the weakness BCBPT fixes, since geographic proximity is an
//! imperfect proxy for internet proximity.

use crate::registry::ClusterRegistry;
use bcbpt_net::{geo_ranked_candidates, Message, NeighborPolicy, NetView, NodeId, TopologyActions};
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// LBC tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LbcConfig {
    /// Outbound slots reserved for links outside the cluster.
    pub long_links: usize,
    /// DNS candidates requested when joining.
    pub candidate_pool: usize,
    /// Peer recommendations accepted per maintenance round.
    pub recommendation_budget: usize,
}

impl LbcConfig {
    /// Configuration matching the paper's comparison setup.
    pub fn paper() -> Self {
        LbcConfig {
            long_links: 2,
            candidate_pool: 16,
            recommendation_budget: 8,
        }
    }
}

impl Default for LbcConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The LBC neighbour-selection policy.
///
/// # Examples
///
/// ```
/// use bcbpt_cluster::{LbcConfig, LbcPolicy};
/// use bcbpt_net::{NetConfig, Network, NodeId};
///
/// let mut config = NetConfig::test_scale();
/// config.num_nodes = 40;
/// let mut net = Network::build(config, Box::new(LbcPolicy::new(LbcConfig::paper())), 7)?;
/// net.warmup_ms(1_000.0);
/// assert!(net.cluster_of(NodeId::from_index(0)).is_some());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone)]
pub struct LbcPolicy {
    config: LbcConfig,
    registry: ClusterRegistry,
    country_clusters: BTreeMap<String, usize>,
}

impl LbcPolicy {
    /// Creates the policy.
    pub fn new(config: LbcConfig) -> Self {
        LbcPolicy {
            config,
            registry: ClusterRegistry::new(0),
            country_clusters: BTreeMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LbcConfig {
        &self.config
    }

    /// The cluster registry for experiment inspection.
    pub fn registry(&self) -> &ClusterRegistry {
        &self.registry
    }

    fn ensure_sized(&mut self, n: usize) {
        if self.registry.num_nodes() < n {
            let mut grown = ClusterRegistry::new(n);
            for c in 0..self.registry.num_clusters() {
                let nc = grown.create_cluster();
                for &m in self.registry.members(c) {
                    grown.assign(m, nc);
                }
            }
            self.registry = grown;
        }
    }

    fn cluster_for_country(&mut self, country: &str) -> usize {
        if let Some(&c) = self.country_clusters.get(country) {
            return c;
        }
        let c = self.registry.create_cluster();
        self.country_clusters.insert(country.to_string(), c);
        c
    }

    fn intra_target(&self, view: &NetView<'_>) -> usize {
        view.config()
            .target_outbound
            .saturating_sub(self.config.long_links)
            .max(1)
    }

    fn join(&mut self, node: NodeId, view: &mut NetView<'_>) -> Vec<NodeId> {
        let country = view.country(node).to_string();
        let cluster = self.cluster_for_country(&country);
        self.registry.assign(node, cluster);

        let candidates = geo_ranked_candidates(view, node, self.config.candidate_pool);
        // Same-country candidates, geographically nearest first (the DNS
        // ranking already sorted by distance).
        let intra_budget = self.intra_target(view);
        let mut targets: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|&c| view.country(c) == country)
            .take(intra_budget)
            .collect();

        // Also connect to known cluster members (the "recommendation"
        // function of LBC: members advertise each other).
        if targets.len() < intra_budget {
            let members: Vec<NodeId> = self
                .registry
                .members(cluster)
                .iter()
                .copied()
                .filter(|&m| m != node && view.is_online(m) && !targets.contains(&m))
                .take(intra_budget - targets.len())
                .collect();
            if !members.is_empty() {
                view.count_control(&Message::Addr {
                    nodes: members.clone(),
                });
                targets.extend(members);
            }
        }

        // Long links to other clusters.
        let mut outside: Vec<NodeId> = candidates
            .iter()
            .copied()
            .filter(|&c| view.country(c) != country && !targets.contains(&c))
            .collect();
        outside.shuffle(view.rng());
        targets.extend(outside.iter().copied().take(self.config.long_links));

        // Fill remaining slots with any candidates so no node is stranded.
        let want = view.config().target_outbound;
        if targets.len() < want {
            for &c in &candidates {
                if targets.len() >= want {
                    break;
                }
                if !targets.contains(&c) {
                    targets.push(c);
                }
            }
        }
        targets.truncate(want);
        targets
    }
}

impl NeighborPolicy for LbcPolicy {
    fn name(&self) -> &'static str {
        "lbc"
    }

    fn clone_box(&self) -> Box<dyn NeighborPolicy> {
        Box::new(self.clone())
    }

    fn bootstrap(&mut self, node: NodeId, view: &mut NetView<'_>) -> Vec<NodeId> {
        self.ensure_sized(view.num_nodes());
        self.join(node, view)
    }

    fn on_discovery(
        &mut self,
        node: NodeId,
        discovered: &[NodeId],
        view: &mut NetView<'_>,
    ) -> TopologyActions {
        self.ensure_sized(view.num_nodes());
        if self.registry.cluster_of(node).is_none() {
            return TopologyActions::connect_to(self.join(node, view));
        }
        let free = view.free_outbound_slots(node);
        if free == 0 {
            return TopologyActions::none();
        }
        let country = view.country(node).to_string();

        // Peer recommendations: my peers advertise their own same-country
        // peers (the LBC "extra function").
        let mut recommended: Vec<NodeId> = Vec::new();
        for peer in view.peers(node).collect::<Vec<_>>() {
            for second in view.peers(peer).collect::<Vec<_>>() {
                if recommended.len() >= self.config.recommendation_budget {
                    break;
                }
                if second != node
                    && view.country(second) == country
                    && !view.connected(node, second)
                    && !recommended.contains(&second)
                {
                    recommended.push(second);
                }
            }
        }
        if !recommended.is_empty() {
            view.count_control(&Message::Addr {
                nodes: recommended.clone(),
            });
        }

        // Prefer same-country (recommended first, then discovered), then
        // top up long links with anything else.
        let mut connect: Vec<NodeId> = Vec::new();
        for c in recommended.into_iter().chain(
            discovered
                .iter()
                .copied()
                .filter(|&c| c != node && view.is_online(c) && view.country(c) == country),
        ) {
            if connect.len() >= free {
                break;
            }
            if view.is_online(c) && !view.connected(node, c) && !connect.contains(&c) {
                connect.push(c);
            }
        }
        for &c in discovered {
            if connect.len() >= free {
                break;
            }
            if c != node && view.is_online(c) && !view.connected(node, c) && !connect.contains(&c) {
                connect.push(c);
            }
        }
        TopologyActions::connect_to(connect)
    }

    fn on_leave(&mut self, node: NodeId, _view: &mut NetView<'_>) {
        self.registry.remove(node);
    }

    fn cluster_of(&self, node: NodeId) -> Option<usize> {
        self.registry.cluster_of(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_net::{NetConfig, Network};

    fn build(n: usize, seed: u64) -> Network {
        let mut config = NetConfig::test_scale();
        config.num_nodes = n;
        Network::build(config, Box::new(LbcPolicy::new(LbcConfig::paper())), seed).unwrap()
    }

    #[test]
    fn clusters_follow_countries() {
        let mut net = build(80, 1);
        net.warmup_ms(1_000.0);
        // Two nodes in the same country share a cluster id.
        for i in 0..80u32 {
            for j in (i + 1)..80u32 {
                let a = NodeId::from_index(i);
                let b = NodeId::from_index(j);
                let same_country = net.meta(a).placement.country == net.meta(b).placement.country;
                let same_cluster = net.cluster_of(a) == net.cluster_of(b);
                if same_country {
                    assert!(
                        same_cluster,
                        "same-country nodes {a},{b} in different clusters"
                    );
                }
            }
        }
    }

    #[test]
    fn most_links_are_same_country() {
        let mut net = build(100, 2);
        net.warmup_ms(2_000.0);
        let mut same = 0usize;
        let mut total = 0usize;
        for (a, b) in net.links().edges().collect::<Vec<_>>() {
            total += 1;
            if net.meta(a).placement.country == net.meta(b).placement.country {
                same += 1;
            }
        }
        assert!(total > 0);
        let frac = same as f64 / total as f64;
        assert!(frac > 0.4, "same-country link fraction {frac}");
    }

    #[test]
    fn network_stays_connected() {
        let mut net = build(60, 3);
        net.warmup_ms(2_000.0);
        let frac = net.reachable_fraction(NodeId::from_index(0));
        assert!(frac > 0.95, "reachable fraction {frac}");
    }

    #[test]
    fn lbc_never_pings() {
        let mut net = build(50, 4);
        net.warmup_ms(2_000.0);
        assert_eq!(
            net.stats().probe_messages(),
            0,
            "LBC selects by location only — no latency probing"
        );
    }

    #[test]
    fn every_node_clustered() {
        let mut net = build(50, 5);
        net.warmup_ms(500.0);
        for i in 0..50u32 {
            assert!(net.cluster_of(NodeId::from_index(i)).is_some());
        }
    }

    #[test]
    fn survives_churn() {
        let mut config = NetConfig::test_scale();
        config.num_nodes = 40;
        config.churn = bcbpt_geo::ChurnModel {
            median_session_ms: 2_000.0,
            session_sigma: 0.8,
            mean_offline_ms: 800.0,
        };
        let mut net =
            Network::build(config, Box::new(LbcPolicy::new(LbcConfig::paper())), 6).unwrap();
        net.run_for_ms(15_000.0);
        assert!(net.online_count() > 0);
    }

    #[test]
    fn config_default_is_paper() {
        assert_eq!(LbcConfig::default(), LbcConfig::paper());
    }
}
