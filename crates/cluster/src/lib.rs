//! # bcbpt-cluster — the clustering protocols
//!
//! The contribution of *Proximity Awareness Approach to Enhance Propagation
//! Delay on the Bitcoin Peer-to-Peer Network* (ICDCS 2017) and its
//! baselines, implemented as [`bcbpt_net::NeighborPolicy`] plugins:
//!
//! * [`BcbptPolicy`] — **Bitcoin Clustering Based Ping Time**: nodes
//!   self-cluster by *measured* round-trip latency under a threshold `Dth`
//!   (paper §IV), joining the cluster of their closest discovered node via
//!   a JOIN/CLUSTERLIST exchange and keeping a few long-distance links to
//!   other clusters.
//! * [`LbcPolicy`] — the authors' earlier **Locality Based Clustering**:
//!   clusters by geographic location (country), with peer recommendation of
//!   nearby nodes. The geographically-close-but-internet-far failure mode
//!   this protocol suffers from is exactly what BCBPT fixes.
//! * `bcbpt_net::RandomPolicy` — vanilla Bitcoin (re-exported here as part
//!   of [`Protocol`]).
//!
//! Supporting pieces: [`RttEstimator`] (repeated ping sampling with
//! variance, §IV.A), [`ClusterRegistry`] (membership bookkeeping), and the
//! open protocol directory — [`ProtocolSpec`] names a protocol as data
//! (`"bcbpt(dt=25ms)"`) and [`ProtocolRegistry`] resolves it, so
//! downstream crates can register custom policies scenario files can name.
//!
//! # Examples
//!
//! Compare how tightly each protocol's neighbours sit in latency space:
//!
//! ```
//! use bcbpt_cluster::Protocol;
//! use bcbpt_net::{NetConfig, Network};
//!
//! let mut config = NetConfig::test_scale();
//! config.num_nodes = 50;
//! for protocol in [Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()] {
//!     let mut net = Network::build(config.clone(), protocol.build_policy(), 1)?;
//!     net.warmup_ms(500.0);
//!     assert!(net.links().edge_count() > 0, "{protocol} built a topology");
//! }
//! # Ok::<(), String>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bcbpt;
mod lbc;
mod protocol;
mod protocols;
mod registry;
mod rtt;

pub use bcbpt::{BcbptConfig, BcbptPolicy};
pub use lbc::{LbcConfig, LbcPolicy};
pub use protocol::Protocol;
pub use protocols::{PolicyFactory, ProtocolRegistry, ProtocolSpec};
pub use registry::ClusterRegistry;
pub use rtt::{RttEstimator, RttEstimatorConfig};
