//! Property-based tests for the clustering protocols.

use bcbpt_cluster::{BcbptConfig, BcbptPolicy, ClusterRegistry, LbcConfig, LbcPolicy, Protocol};
use bcbpt_net::{NetConfig, Network, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Registry invariants under arbitrary assign/remove/merge sequences:
    /// membership and member-sets stay mutually consistent.
    #[test]
    fn registry_consistent(ops in proptest::collection::vec((0u8..4, 0u32..20, 0usize..6), 1..200)) {
        let mut reg = ClusterRegistry::new(20);
        for _ in 0..6 {
            reg.create_cluster();
        }
        for (op, node, cluster) in ops {
            let node = NodeId::from_index(node);
            match op {
                0 | 1 => reg.assign(node, cluster),
                2 => {
                    let _ = reg.remove(node);
                }
                _ => {
                    let other = (cluster + 1) % 6;
                    reg.merge(cluster, other);
                }
            }
            // Invariant: membership and member sets agree.
            for i in 0..20u32 {
                let n = NodeId::from_index(i);
                match reg.cluster_of(n) {
                    Some(c) => prop_assert!(reg.members(c).contains(&n)),
                    None => {
                        for c in 0..reg.num_clusters() {
                            prop_assert!(!reg.members(c).contains(&n));
                        }
                    }
                }
            }
            // Sizes sum to clustered count.
            let total: usize = reg.sizes().iter().sum();
            prop_assert_eq!(total, reg.clustered_count());
        }
    }

    /// BCBPT: after warmup, every online node is in exactly one cluster and
    /// the clusters partition the node set.
    #[test]
    fn bcbpt_clusters_partition(seed in any::<u64>(), threshold in 10.0f64..200.0) {
        let mut config = NetConfig::test_scale();
        config.num_nodes = 50;
        let policy = BcbptPolicy::new(BcbptConfig::with_threshold_ms(threshold));
        let mut net = Network::build(config, Box::new(policy), seed).unwrap();
        net.warmup_ms(1_500.0);
        let mut total = 0usize;
        let mut by_cluster = std::collections::BTreeMap::new();
        for i in 0..50u32 {
            let node = NodeId::from_index(i);
            let c = net.cluster_of(node);
            prop_assert!(c.is_some());
            *by_cluster.entry(c.unwrap()).or_insert(0usize) += 1;
            total += 1;
        }
        prop_assert_eq!(total, 50);
        prop_assert_eq!(by_cluster.values().sum::<usize>(), 50);
    }

    /// LBC: cluster assignment is exactly the country partition.
    #[test]
    fn lbc_clusters_equal_countries(seed in any::<u64>()) {
        let mut config = NetConfig::test_scale();
        config.num_nodes = 40;
        let mut net = Network::build(
            config,
            Box::new(LbcPolicy::new(LbcConfig::paper())),
            seed,
        )
        .unwrap();
        net.warmup_ms(500.0);
        for i in 0..40u32 {
            for j in 0..40u32 {
                let a = NodeId::from_index(i);
                let b = NodeId::from_index(j);
                let same_country =
                    net.meta(a).placement.country == net.meta(b).placement.country;
                let same_cluster = net.cluster_of(a) == net.cluster_of(b);
                prop_assert_eq!(same_country, same_cluster,
                    "{} vs {}: country {} cluster {}", a, b, same_country, same_cluster);
            }
        }
    }

    /// All protocols keep the overlay connected without churn, for any seed.
    #[test]
    fn overlay_connected(seed in any::<u64>()) {
        for protocol in [Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()] {
            let mut config = NetConfig::test_scale();
            config.num_nodes = 40;
            let mut net = Network::build(config, protocol.build_policy(), seed).unwrap();
            net.warmup_ms(1_500.0);
            let frac = net.reachable_fraction(NodeId::from_index(0));
            prop_assert!(frac > 0.95, "{}: reachable {}", protocol, frac);
        }
    }
}
