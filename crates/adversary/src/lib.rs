//! # bcbpt-adversary — behavioural adversaries against proximity clustering
//!
//! The paper's security discussion (§V.C) worries that clustering by
//! measured ping time hands an attacker a new lever: *proximity can be
//! forged*. This crate supplies the in-loop attackers that pull that lever,
//! as implementations of the fabric's [`Adversary`] hook
//! (`bcbpt_net::Adversary`):
//!
//! * [`AdversaryStrategy::PingSpoof`] — attacker nodes answer RTT probes
//!   with a forged scale factor, so every honest measurement through
//!   [`NetView::measure_rtt_ms`] sees them as near. Against BCBPT this
//!   infiltrates clusters (the estimator, the JOIN ranking and the
//!   maintenance loop all consume the spoofed values); against LBC and
//!   vanilla Bitcoin, which never consult measured RTT, it is inert — the
//!   asymmetry the adversarial scenarios quantify.
//! * [`AdversaryStrategy::DelayRelay`] — attacker nodes hold every relay
//!   message (INV/GETDATA/TX and their block twins) they forward by a
//!   configurable lag, slowing propagation through every path that crosses
//!   them.
//! * [`AdversaryStrategy::Withhold`] — attacker nodes blackhole a
//!   configured fraction of the relay messages they should forward,
//!   deterministically off the fabric's dedicated adversary stream.
//!
//! [`AdversaryForce`] binds a strategy to a deterministically chosen set of
//! attacker nodes; `bcbpt-core` runs it through whole measuring campaigns
//! and reports cluster infiltration, propagation slowdown and withheld
//! deliveries per protocol.
//!
//! # Examples
//!
//! Ping-spoofing attackers infiltrating a BCBPT-clustered network:
//!
//! ```
//! use bcbpt_adversary::{AdversaryForce, AdversaryStrategy};
//! use bcbpt_net::{NetConfig, Network, RandomPolicy};
//!
//! let mut config = NetConfig::test_scale();
//! config.num_nodes = 40;
//! let force = AdversaryForce::new(
//!     AdversaryStrategy::PingSpoof { spoof_factor: 0.05 },
//!     config.num_nodes,
//!     4,
//! )?;
//! let mut net = Network::build(config, Box::new(RandomPolicy::new()), 7)?;
//! net.set_adversary(Box::new(force));
//! net.warmup_ms(1_000.0);
//! assert!(net.is_attacker(bcbpt_net::NodeId::from_index(0)));
//! # Ok::<(), String>(())
//! ```
//!
//! [`NetView::measure_rtt_ms`]: bcbpt_net::NetView::measure_rtt_ms

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bcbpt_net::{Adversary, Message, NodeId, TapVerdict};
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// What the attacker-controlled nodes do, named as data — the serializable
/// form scenario files carry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryStrategy {
    /// Forge proximity: every RTT measurement an honest node takes towards
    /// an attacker comes back scaled by `spoof_factor` (e.g. `0.05` makes
    /// a 200 ms peer look like a 10 ms one), so proximity-driven neighbour
    /// selection adopts attackers as "close".
    PingSpoof {
        /// Multiplier applied to the true measured RTT; must be positive
        /// and finite. Values below 1 forge nearness.
        spoof_factor: f64,
    },
    /// Hold every relay message (tx and block INV/GETDATA/payload) an
    /// attacker forwards by a fixed sender-side lag.
    DelayRelay {
        /// Added sender-side delay in milliseconds; must be non-negative
        /// and finite.
        delay_ms: f64,
    },
    /// Blackhole a fraction of the relay messages attackers should
    /// forward.
    Withhold {
        /// Probability of withholding each relay message, in `(0, 1]`.
        drop_fraction: f64,
    },
}

impl AdversaryStrategy {
    /// Short family label used by reports (`"pingspoof"`, `"delayrelay"`,
    /// `"withhold"`).
    pub fn kind(&self) -> &'static str {
        match self {
            AdversaryStrategy::PingSpoof { .. } => "pingspoof",
            AdversaryStrategy::DelayRelay { .. } => "delayrelay",
            AdversaryStrategy::Withhold { .. } => "withhold",
        }
    }

    /// Full label with the strategy's parameter, e.g.
    /// `"pingspoof(x0.05)"`, `"delayrelay(+200ms)"`, `"withhold(p=0.5)"`.
    pub fn label(&self) -> String {
        match *self {
            AdversaryStrategy::PingSpoof { spoof_factor } => format!("pingspoof(x{spoof_factor})"),
            AdversaryStrategy::DelayRelay { delay_ms } => format!("delayrelay(+{delay_ms}ms)"),
            AdversaryStrategy::Withhold { drop_fraction } => format!("withhold(p={drop_fraction})"),
        }
    }

    /// Validates the strategy parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            AdversaryStrategy::PingSpoof { spoof_factor } => {
                if !spoof_factor.is_finite() || spoof_factor <= 0.0 {
                    return Err(format!(
                        "spoof_factor must be positive and finite, got {spoof_factor}"
                    ));
                }
                Ok(())
            }
            AdversaryStrategy::DelayRelay { delay_ms } => {
                if !delay_ms.is_finite() || delay_ms < 0.0 {
                    return Err(format!(
                        "delay_ms must be non-negative and finite, got {delay_ms}"
                    ));
                }
                Ok(())
            }
            AdversaryStrategy::Withhold { drop_fraction } => {
                if !(drop_fraction > 0.0 && drop_fraction <= 1.0) {
                    return Err(format!(
                        "drop_fraction must be in (0, 1], got {drop_fraction}"
                    ));
                }
                Ok(())
            }
        }
    }
}

/// Whether `msg` belongs to the tx/block relay exchange the delay and
/// withhold strategies target (probes, discovery and handshakes pass
/// untouched — an attacker that drops pings would expose itself).
pub fn is_relay_message(msg: &Message) -> bool {
    matches!(
        msg,
        Message::Inv { .. }
            | Message::InvOne { .. }
            | Message::GetData { .. }
            | Message::GetDataOne { .. }
            | Message::TxData { .. }
            | Message::BlockInv { .. }
            | Message::BlockInvOne { .. }
            | Message::GetBlocks { .. }
            | Message::GetBlocksOne { .. }
            | Message::BlockData { .. }
    )
}

/// The deterministic attacker placement: `count` node ids spread evenly
/// across the id space (ids are placement-random, so this is an unbiased
/// sample that every layer — runner, report, tests — can reproduce without
/// coordination).
///
/// # Panics
///
/// Panics when `count > num_nodes`.
pub fn attacker_ids(num_nodes: usize, count: usize) -> Vec<NodeId> {
    assert!(count <= num_nodes, "more attackers than nodes");
    (0..count)
        .map(|i| NodeId::from_index(((i * num_nodes) / count.max(1)) as u32))
        .collect()
}

/// A strategy bound to a concrete set of attacker-controlled nodes — the
/// [`Adversary`] implementation the fabric drives.
#[derive(Debug, Clone)]
pub struct AdversaryForce {
    /// `None` for an inert force: nodes are marked attacker-controlled but
    /// never act (the paired-baseline primitive).
    strategy: Option<AdversaryStrategy>,
    /// `mask[i]` ⇔ node `i` is attacker-controlled.
    mask: Vec<bool>,
    attackers: usize,
}

impl AdversaryForce {
    /// Binds `strategy` to `attackers` nodes of an `num_nodes`-node
    /// network, placed by [`attacker_ids`]. `attackers` may be zero: the
    /// resulting force is inert and leaves a simulation byte-identical to
    /// one without any adversary (the determinism contract).
    ///
    /// # Errors
    ///
    /// Rejects invalid strategy parameters and `attackers >= num_nodes`
    /// (at least one honest node must remain).
    pub fn new(
        strategy: AdversaryStrategy,
        num_nodes: usize,
        attackers: usize,
    ) -> Result<Self, String> {
        strategy.validate()?;
        Self::build(Some(strategy), num_nodes, attackers)
    }

    /// A force whose nodes are marked attacker-controlled but never act:
    /// the tap always delivers, measurements come back untouched, and the
    /// adversary stream is never drawn. Experiments use it as the *paired
    /// clean baseline* — same honest origin pool, same mask to measure
    /// placement luck against — with the no-op encoded structurally
    /// instead of through a degenerate strategy parameter.
    ///
    /// # Errors
    ///
    /// Rejects `attackers >= num_nodes`.
    pub fn inert(num_nodes: usize, attackers: usize) -> Result<Self, String> {
        Self::build(None, num_nodes, attackers)
    }

    fn build(
        strategy: Option<AdversaryStrategy>,
        num_nodes: usize,
        attackers: usize,
    ) -> Result<Self, String> {
        if attackers >= num_nodes {
            return Err(format!(
                "attackers ({attackers}) must be fewer than nodes ({num_nodes})"
            ));
        }
        let mut mask = vec![false; num_nodes];
        for id in attacker_ids(num_nodes, attackers) {
            mask[id.index()] = true;
        }
        Ok(AdversaryForce {
            strategy,
            mask,
            attackers,
        })
    }

    /// The strategy in force (`None` for an inert force).
    pub fn strategy(&self) -> Option<&AdversaryStrategy> {
        self.strategy.as_ref()
    }

    /// Number of attacker-controlled nodes.
    pub fn attacker_count(&self) -> usize {
        self.attackers
    }

    fn controls(&self, node: NodeId) -> bool {
        self.mask.get(node.index()).copied().unwrap_or(false)
    }
}

impl Adversary for AdversaryForce {
    fn clone_box(&self) -> Box<dyn Adversary> {
        Box::new(self.clone())
    }

    fn is_attacker(&self, node: NodeId) -> bool {
        self.controls(node)
    }

    fn on_send(
        &mut self,
        from: NodeId,
        _to: NodeId,
        msg: &Message,
        rng: &mut ChaCha12Rng,
    ) -> TapVerdict {
        if !self.controls(from) {
            return TapVerdict::Deliver;
        }
        match self.strategy {
            None | Some(AdversaryStrategy::PingSpoof { .. }) => TapVerdict::Deliver,
            Some(AdversaryStrategy::DelayRelay { delay_ms }) => {
                if delay_ms > 0.0 && is_relay_message(msg) {
                    TapVerdict::Delay(delay_ms)
                } else {
                    TapVerdict::Deliver
                }
            }
            Some(AdversaryStrategy::Withhold { drop_fraction }) => {
                if is_relay_message(msg) && rng.gen::<f64>() < drop_fraction {
                    TapVerdict::Withhold
                } else {
                    TapVerdict::Deliver
                }
            }
        }
    }

    fn rewrite_rtt_ms(&mut self, observer: NodeId, target: NodeId, measured_ms: f64) -> f64 {
        if let Some(AdversaryStrategy::PingSpoof { spoof_factor }) = self.strategy {
            // The attacker forges its own probe answers, so the rewrite
            // fires whenever exactly one endpoint is attacker-controlled
            // (attacker-to-attacker measurements have nothing to hide from).
            if self.controls(observer) != self.controls(target) {
                return measured_ms * spoof_factor;
            }
        }
        measured_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_sim::RngHub;

    fn n(i: u32) -> NodeId {
        NodeId::from_index(i)
    }

    fn every_strategy() -> Vec<AdversaryStrategy> {
        vec![
            AdversaryStrategy::PingSpoof { spoof_factor: 0.05 },
            AdversaryStrategy::DelayRelay { delay_ms: 250.0 },
            AdversaryStrategy::Withhold { drop_fraction: 0.5 },
        ]
    }

    #[test]
    fn strategy_serde_round_trips_every_variant() {
        for strategy in every_strategy() {
            let json = serde_json::to_string(&strategy).unwrap();
            let back: AdversaryStrategy = serde_json::from_str(&json).unwrap();
            assert_eq!(back, strategy, "{json}");
        }
    }

    #[test]
    fn labels_and_kinds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for strategy in every_strategy() {
            assert!(strategy.label().contains(strategy.kind()));
            assert!(seen.insert(strategy.kind()));
        }
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        for bad in [
            AdversaryStrategy::PingSpoof { spoof_factor: 0.0 },
            AdversaryStrategy::PingSpoof { spoof_factor: -0.5 },
            AdversaryStrategy::PingSpoof {
                spoof_factor: f64::NAN,
            },
            AdversaryStrategy::DelayRelay { delay_ms: -1.0 },
            AdversaryStrategy::DelayRelay {
                delay_ms: f64::INFINITY,
            },
            AdversaryStrategy::Withhold { drop_fraction: 0.0 },
            AdversaryStrategy::Withhold { drop_fraction: 1.5 },
            AdversaryStrategy::Withhold {
                drop_fraction: f64::NAN,
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
        for good in every_strategy() {
            good.validate().unwrap();
        }
        AdversaryStrategy::DelayRelay { delay_ms: 0.0 }
            .validate()
            .expect("zero delay is a valid no-op");
    }

    #[test]
    fn attacker_ids_are_distinct_and_spread() {
        let ids = attacker_ids(100, 10);
        assert_eq!(ids.len(), 10);
        let set: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 10, "no duplicates");
        assert_eq!(ids[0], n(0));
        assert_eq!(ids[9], n(90));
        assert!(attacker_ids(50, 0).is_empty());
    }

    #[test]
    fn force_rejects_too_many_attackers() {
        let strategy = AdversaryStrategy::PingSpoof { spoof_factor: 0.1 };
        assert!(AdversaryForce::new(strategy, 10, 10).is_err());
        assert!(AdversaryForce::new(strategy, 10, 9).is_ok());
        let err = AdversaryForce::new(AdversaryStrategy::Withhold { drop_fraction: 2.0 }, 10, 1)
            .unwrap_err();
        assert!(err.contains("drop_fraction"), "{err}");
    }

    #[test]
    fn pingspoof_rewrites_only_mixed_pairs() {
        let mut force =
            AdversaryForce::new(AdversaryStrategy::PingSpoof { spoof_factor: 0.1 }, 10, 2).unwrap();
        // attacker_ids(10, 2) = {0, 5}.
        assert!(force.is_attacker(n(0)) && force.is_attacker(n(5)));
        assert_eq!(force.attacker_count(), 2);
        assert_eq!(force.rewrite_rtt_ms(n(1), n(0), 200.0), 20.0);
        assert_eq!(force.rewrite_rtt_ms(n(0), n(1), 200.0), 20.0);
        assert_eq!(force.rewrite_rtt_ms(n(1), n(2), 200.0), 200.0, "honest");
        assert_eq!(
            force.rewrite_rtt_ms(n(0), n(5), 200.0),
            200.0,
            "attacker pair"
        );
    }

    #[test]
    fn delay_holds_relay_messages_only() {
        let mut force =
            AdversaryForce::new(AdversaryStrategy::DelayRelay { delay_ms: 300.0 }, 10, 1).unwrap();
        let mut rng = RngHub::new(1).stream("adversary");
        let inv = Message::InvOne {
            txid: bcbpt_net::TxId::from_raw(1),
        };
        assert_eq!(
            force.on_send(n(0), n(1), &inv, &mut rng),
            TapVerdict::Delay(300.0)
        );
        assert_eq!(
            force.on_send(n(1), n(0), &inv, &mut rng),
            TapVerdict::Deliver,
            "honest senders are untouched"
        );
        assert_eq!(
            force.on_send(n(0), n(1), &Message::Ping { nonce: 1 }, &mut rng),
            TapVerdict::Deliver,
            "probes pass so the attacker stays covert"
        );
        assert_eq!(
            force.rewrite_rtt_ms(n(1), n(0), 50.0),
            50.0,
            "delayrelay does not forge proximity"
        );
    }

    #[test]
    fn withhold_draws_randomness_only_for_attacker_relays() {
        let mut force =
            AdversaryForce::new(AdversaryStrategy::Withhold { drop_fraction: 1.0 }, 10, 1).unwrap();
        let mut rng = RngHub::new(2).stream("adversary");
        let mut ref_rng = RngHub::new(2).stream("adversary");
        let inv = Message::InvOne {
            txid: bcbpt_net::TxId::from_raw(7),
        };
        // Honest sender: no draw, stream stays aligned with the reference.
        assert_eq!(
            force.on_send(n(3), n(0), &inv, &mut rng),
            TapVerdict::Deliver
        );
        assert_eq!(rng.gen::<u64>(), ref_rng.gen::<u64>());
        // Attacker relay at p=1: always withheld.
        assert_eq!(
            force.on_send(n(0), n(3), &inv, &mut rng),
            TapVerdict::Withhold
        );
    }

    #[test]
    fn inert_force_marks_nodes_but_never_acts() {
        let mut force = AdversaryForce::inert(10, 3).unwrap();
        assert!(force.strategy().is_none());
        assert_eq!(force.attacker_count(), 3);
        assert!(force.is_attacker(n(0)), "mask is populated");
        let mut rng = RngHub::new(5).stream("adversary");
        let mut ref_rng = RngHub::new(5).stream("adversary");
        let inv = Message::InvOne {
            txid: bcbpt_net::TxId::from_raw(9),
        };
        for from in 0..10u32 {
            assert_eq!(
                force.on_send(n(from), n((from + 1) % 10), &inv, &mut rng),
                TapVerdict::Deliver
            );
        }
        assert_eq!(
            rng.gen::<u64>(),
            ref_rng.gen::<u64>(),
            "inert force never draws from the adversary stream"
        );
        assert_eq!(force.rewrite_rtt_ms(n(4), n(0), 123.0), 123.0);
        assert!(AdversaryForce::inert(10, 10).is_err());
    }

    #[test]
    fn relay_message_classification() {
        assert!(is_relay_message(&Message::TxData {
            tx: bcbpt_net::Transaction::new(bcbpt_net::TxId::from_raw(1), 250),
        }));
        assert!(is_relay_message(&Message::GetDataOne {
            txid: bcbpt_net::TxId::from_raw(1)
        }));
        assert!(!is_relay_message(&Message::Ping { nonce: 0 }));
        assert!(!is_relay_message(&Message::Addr { nodes: vec![] }));
        assert!(!is_relay_message(&Message::Join));
    }
}
