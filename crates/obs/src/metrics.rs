//! Lock-cheap metrics: counters, gauges, wall-clock histograms, registry.
//!
//! Instruments are keyed by `&'static str` names (label-free by design —
//! a label set would force per-observation allocation or hashing on hot
//! paths). Creation goes through a [`Registry`], which takes a mutex once
//! per call site; call sites cache the returned `Arc` in a `OnceLock` so
//! steady-state updates are pure atomics. [`Counter`] additionally stripes
//! its cells across cache lines so campaign worker threads do not bounce a
//! shared line.
//!
//! Reads ([`Registry::snapshot`], [`Registry::render_prometheus`]) fold the
//! stripes; they are intended for scrape/exit time, not hot paths. Snapshot
//! values for a single instrument are internally consistent only to the
//! extent atomics allow — fine for monitoring, not for accounting.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of cache-padded cells a [`Counter`] stripes over.
const STRIPES: usize = 8;

/// One cache line worth of counter cell, padded so adjacent stripes never
/// share a line (64 bytes covers every target this workspace builds for).
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

static NEXT_THREAD_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's home stripe, assigned round-robin at first use.
    static THREAD_STRIPE: usize =
        NEXT_THREAD_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
}

#[inline]
fn thread_stripe() -> usize {
    THREAD_STRIPE.with(|s| *s)
}

/// A monotonic counter, striped across cache lines.
///
/// Increments land on the calling thread's home stripe (one relaxed
/// `fetch_add`, no shared line with other stripes); [`value`](Counter::value)
/// sums the stripes.
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; STRIPES],
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[thread_stripe()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all stripes.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A signed gauge: a value that can go up and down, or track a high-water
/// mark via [`record_max`](Gauge::record_max).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`sub`](Gauge::sub)).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water tracking).
    #[inline]
    pub fn record_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Default wall-clock bucket upper bounds, in microseconds.
///
/// Spans 50µs to 10s exponentially — wide enough for spool I/O at the low
/// end and full-campaign cells at the high end. Observations above the last
/// bound land in the implicit `+Inf` bucket.
pub const DEFAULT_BOUNDS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// A fixed-bucket wall-clock histogram.
///
/// Bucket upper bounds are microseconds, fixed at construction; recording
/// is a linear scan over ≤18 bounds plus three relaxed atomics — no locks,
/// no allocation. Exposition follows Prometheus conventions (cumulative
/// `le` buckets, sum in seconds).
#[derive(Debug)]
pub struct WallHistogram {
    /// Upper bounds in µs, strictly increasing; the `+Inf` bucket is
    /// implicit at `buckets[bounds.len()]`.
    bounds_us: &'static [u64],
    buckets: Vec<AtomicU64>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl WallHistogram {
    /// Creates a histogram over the given µs upper bounds (must be
    /// non-empty and strictly increasing).
    pub fn new(bounds_us: &'static [u64]) -> Self {
        assert!(!bounds_us.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds_us.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        WallHistogram {
            bounds_us,
            buckets: (0..=bounds_us.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records a duration.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records a raw microsecond value.
    pub fn observe_us(&self, us: u64) {
        let idx = self
            .bounds_us
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(self.bounds_us.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a timer that records into this histogram when dropped.
    pub fn start_timer(self: &Arc<Self>) -> HistTimer {
        HistTimer {
            hist: Arc::clone(self),
            start: Instant::now(),
        }
    }

    /// The configured upper bounds, in µs.
    pub fn bounds_us(&self) -> &'static [u64] {
        self.bounds_us
    }

    /// Per-bucket (non-cumulative) counts; the last entry is the `+Inf`
    /// bucket.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of all observations, in µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

/// Guard returned by [`WallHistogram::start_timer`]; records the elapsed
/// wall-clock time into the histogram on drop.
#[derive(Debug)]
pub struct HistTimer {
    hist: Arc<WallHistogram>,
    start: Instant,
}

impl Drop for HistTimer {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed());
    }
}

struct Entry<T> {
    name: &'static str,
    help: &'static str,
    instrument: Arc<T>,
}

#[derive(Default)]
struct Inner {
    counters: Vec<Entry<Counter>>,
    gauges: Vec<Entry<Gauge>>,
    histograms: Vec<Entry<WallHistogram>>,
}

/// A collection of named instruments.
///
/// `counter`/`gauge`/`histogram` get-or-create by name under a mutex; call
/// sites should cache the returned `Arc` (typically in a
/// `OnceLock<Arc<Counter>>`) so the lock is taken once per process, not per
/// update. Most code uses the process-wide [`global`] registry; the serve
/// daemon additionally keeps one `Registry` per server instance so
/// co-resident test servers do not bleed into each other's `/stats`.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the registration lock cannot corrupt the
        // Vec-append-only state, so recover from poisoning.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut inner = self.lock();
        if let Some(e) = inner.counters.iter().find(|e| e.name == name) {
            return Arc::clone(&e.instrument);
        }
        let instrument = Arc::new(Counter::new());
        inner.counters.push(Entry {
            name,
            help,
            instrument: Arc::clone(&instrument),
        });
        instrument
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut inner = self.lock();
        if let Some(e) = inner.gauges.iter().find(|e| e.name == name) {
            return Arc::clone(&e.instrument);
        }
        let instrument = Arc::new(Gauge::new());
        inner.gauges.push(Entry {
            name,
            help,
            instrument: Arc::clone(&instrument),
        });
        instrument
    }

    /// Gets or creates the histogram `name` with [`DEFAULT_BOUNDS_US`].
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<WallHistogram> {
        self.histogram_with_bounds(name, help, DEFAULT_BOUNDS_US)
    }

    /// Gets or creates the histogram `name` with explicit µs bounds. Bounds
    /// are fixed by whichever call registers the name first.
    pub fn histogram_with_bounds(
        &self,
        name: &'static str,
        help: &'static str,
        bounds_us: &'static [u64],
    ) -> Arc<WallHistogram> {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut inner = self.lock();
        if let Some(e) = inner.histograms.iter().find(|e| e.name == name) {
            return Arc::clone(&e.instrument);
        }
        let instrument = Arc::new(WallHistogram::new(bounds_us));
        inner.histograms.push(Entry {
            name,
            help,
            instrument: Arc::clone(&instrument),
        });
        instrument
    }

    /// Snapshots every instrument, sorted by name for stable output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        let mut counters: Vec<CounterSnapshot> = inner
            .counters
            .iter()
            .map(|e| CounterSnapshot {
                name: e.name.to_string(),
                value: e.instrument.value(),
            })
            .collect();
        let mut gauges: Vec<GaugeSnapshot> = inner
            .gauges
            .iter()
            .map(|e| GaugeSnapshot {
                name: e.name.to_string(),
                value: e.instrument.value(),
            })
            .collect();
        let mut histograms: Vec<HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|e| HistogramSnapshot {
                name: e.name.to_string(),
                bounds_us: e.instrument.bounds_us().to_vec(),
                buckets: e.instrument.bucket_counts(),
                sum_us: e.instrument.sum_us(),
                count: e.instrument.count(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Renders every instrument in Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` per family, cumulative `le`
    /// buckets and sum-in-seconds for histograms.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        self.render_prometheus_into(&mut out);
        out
    }

    /// Appends the Prometheus exposition to `out` (used by the daemon to
    /// concatenate the global and per-server registries).
    pub fn render_prometheus_into(&self, out: &mut String) {
        use std::fmt::Write as _;
        let inner = self.lock();

        let mut counters: Vec<(&str, &str, u64)> = inner
            .counters
            .iter()
            .map(|e| (e.name, e.help, e.instrument.value()))
            .collect();
        counters.sort_by_key(|&(name, _, _)| name);
        for (name, help, value) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }

        let mut gauges: Vec<(&str, &str, i64)> = inner
            .gauges
            .iter()
            .map(|e| (e.name, e.help, e.instrument.value()))
            .collect();
        gauges.sort_by_key(|&(name, _, _)| name);
        for (name, help, value) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }

        let mut hists: Vec<&Entry<WallHistogram>> = inner.histograms.iter().collect();
        hists.sort_by_key(|e| e.name);
        for e in hists {
            let name = e.name;
            let _ = writeln!(out, "# HELP {name} {}", e.help);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let counts = e.instrument.bucket_counts();
            let mut cumulative = 0u64;
            for (i, &bound) in e.instrument.bounds_us().iter().enumerate() {
                cumulative += counts[i];
                let le = bound as f64 / 1e6;
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let total = e.instrument.count();
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {total}");
            let sum_secs = e.instrument.sum_us() as f64 / 1e6;
            let _ = writeln!(out, "{name}_sum {sum_secs}");
            let _ = writeln!(out, "{name}_count {total}");
        }
    }
}

/// The process-wide registry. Instruments registered here surface in
/// `scenario run --metrics-out` snapshots and in the daemon's `/metrics`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Point-in-time copy of a [`Registry`], serializable for `--metrics-out`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histogram states, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds, µs.
    pub bounds_us: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds_us` (the `+Inf` bucket).
    pub buckets: Vec<u64>,
    /// Sum of observations, µs.
    pub sum_us: u64,
    /// Observation count.
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.record_max(5);
        g.record_max(3);
        assert_eq!(g.value(), 5);
        g.set(-2);
        g.add(10);
        g.sub(4);
        assert_eq!(g.value(), 4);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        static BOUNDS: &[u64] = &[10, 100, 1000];
        let h = WallHistogram::new(BOUNDS);
        h.observe_us(0); // -> le=10
        h.observe_us(10); // boundary value lands in its own bucket (le)
        h.observe_us(11); // -> le=100
        h.observe_us(100); // -> le=100
        h.observe_us(1000); // -> le=1000
        h.observe_us(1001); // -> +Inf
        assert_eq!(h.bucket_counts(), vec![2, 2, 1, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum_us(), 2122);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        static BAD: &[u64] = &[10, 10];
        let _ = WallHistogram::new(BAD);
    }

    #[test]
    fn registry_get_or_create_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("test_total", "help");
        let b = r.counter("test_total", "help");
        a.inc();
        assert_eq!(b.value(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_round_trips() {
        let r = Registry::new();
        r.counter("zzz_total", "last").add(7);
        r.counter("aaa_total", "first").add(3);
        r.gauge("depth", "queue depth").set(-4);
        static BOUNDS: &[u64] = &[100, 1000];
        r.histogram_with_bounds("lat_seconds", "latency", BOUNDS)
            .observe_us(150);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].name, "aaa_total");
        assert_eq!(snap.counter("zzz_total"), Some(7));
        assert_eq!(snap.gauge("depth"), Some(-4));
        let h = snap.histogram("lat_seconds").unwrap();
        assert_eq!(h.buckets, vec![0, 1, 0]);

        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("reqs_total", "requests").add(2);
        r.gauge("busy", "busy workers").set(1);
        static BOUNDS: &[u64] = &[1_000_000];
        r.histogram_with_bounds("dur_seconds", "duration", BOUNDS)
            .observe_us(500_000);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP reqs_total requests\n"));
        assert!(text.contains("# TYPE reqs_total counter\nreqs_total 2\n"));
        assert!(text.contains("# TYPE busy gauge\nbusy 1\n"));
        assert!(text.contains("# TYPE dur_seconds histogram\n"));
        assert!(text.contains("dur_seconds_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("dur_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("dur_seconds_sum 0.5\n"));
        assert!(text.contains("dur_seconds_count 1\n"));
    }

    #[test]
    fn hist_timer_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("t_seconds", "timer");
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }
}
