//! Leveled stderr logging filtered by the `BCBPT_LOG` environment variable.
//!
//! Replaces the ad-hoc `eprintln!` diagnostics that used to be scattered
//! through the shard driver and serve daemon. Levels are `error`, `warn`,
//! `info`, `debug`; the active level is parsed from `BCBPT_LOG` once per
//! process and defaults to [`Level::Warn`], so daemons are quiet unless
//! asked. Lines are written as `bcbpt[<level>] <message>` — stable prefixes
//! for grepping.
//!
//! Use through the crate-level macros:
//!
//! ```
//! bcbpt_obs::warn!("spool: {} unreadable entries skipped", 3);
//! bcbpt_obs::debug!("retry {}/{} after {:?}", 1, 5, std::time::Duration::from_millis(2));
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or data-affecting problems. Always shown.
    Error = 0,
    /// Suspicious but survivable conditions (default threshold).
    Warn = 1,
    /// Progress and lifecycle messages.
    Info = 2,
    /// Per-operation detail: retries, cache decisions, queue movement.
    Debug = 3,
}

impl Level {
    /// Lower-case name, as accepted in `BCBPT_LOG` and shown in output.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Sentinel meaning "not yet parsed from the environment".
const UNSET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);

/// The active threshold: messages at this level or more severe are emitted.
pub fn max_level() -> Level {
    let raw = MAX_LEVEL.load(Ordering::Relaxed);
    if raw != UNSET {
        return match raw {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            _ => Level::Debug,
        };
    }
    let parsed = std::env::var("BCBPT_LOG")
        .ok()
        .as_deref()
        .and_then(Level::parse)
        .unwrap_or(Level::Warn);
    MAX_LEVEL.store(parsed as u8, Ordering::Relaxed);
    parsed
}

/// Overrides the threshold (tests; takes precedence over `BCBPT_LOG`).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// `true` when a message at `level` would be emitted.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    level <= max_level()
}

/// Emits one line to stderr if `level` passes the filter. Prefer the
/// [`warn!`](crate::warn)/[`info!`](crate::info)/[`debug!`](crate::debug)
/// macros, which skip argument formatting when filtered out.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if level_enabled(level) {
        eprintln!("bcbpt[{}] {}", level.as_str(), args);
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log::level_enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::level_enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::level_enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::level_enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_most_severe_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn parse_accepts_aliases_and_rejects_junk() {
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" debug "), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Debug));
        assert_eq!(Level::parse("loud"), None);
    }

    #[test]
    fn filter_respects_threshold() {
        set_max_level(Level::Warn);
        assert!(level_enabled(Level::Error));
        assert!(level_enabled(Level::Warn));
        assert!(!level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
        set_max_level(Level::Debug);
        assert!(level_enabled(Level::Debug));
        set_max_level(Level::Warn);
    }
}
