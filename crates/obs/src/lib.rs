//! Observability layer for the BCBPT reproduction.
//!
//! Three small, dependency-free facilities shared by every layer of the
//! workspace:
//!
//! * **Metrics** ([`Registry`], [`Counter`], [`Gauge`], [`WallHistogram`]) —
//!   lock-cheap, label-free instruments keyed by `&'static str` names.
//!   Counters stripe their cells across cache lines so concurrent campaign
//!   workers never contend; registration takes a lock once per call site,
//!   reads fold the stripes. Snapshots serialize (for `--metrics-out`) and
//!   render in Prometheus text exposition format (for `GET /metrics`).
//! * **Spans** ([`span()`], [`install_trace`], [`take_trace`]) — phase-timing
//!   guards that record wall-clock intervals into per-thread buffers and
//!   flush to a Chrome-trace-compatible JSON file (`--trace-out`). When no
//!   trace is installed a guard is a single relaxed atomic load — the
//!   `NullTrace` discipline from `bcbpt-sim` generalized to wall-clock time.
//! * **Logging** ([`warn!`], [`info!`], [`debug!`]) — a leveled stderr
//!   logger filtered by the `BCBPT_LOG` environment variable (default
//!   `warn`), so daemon logs are greppable and quiet by default.
//!
//! # The no-side-channel rule
//!
//! Everything in this crate is a **wall-clock side channel**: instruments
//! observe durations and counts but must never feed back into simulation
//! state. Instrumented code paths may not touch RNG streams, reorder folds,
//! or alter serialized outcomes — a fully instrumented campaign is
//! byte-identical to an uninstrumented one at any thread count. The API
//! enforces this shape by construction: nothing here returns a value a
//! simulation could branch on mid-run; snapshots are taken only after
//! outcomes are sealed.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod log;
pub mod metrics;
pub mod span;

pub use metrics::{
    global, Counter, CounterSnapshot, Gauge, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot,
    Registry, WallHistogram,
};
pub use span::{
    chrome_trace_json, install_trace, span, take_trace, trace_enabled, SpanEvent, SpanGuard,
};

pub use log::{level_enabled, Level};
