//! Phase-timing spans with per-thread buffering and Chrome-trace export.
//!
//! A [`span`] guard times a named phase (`"warmup"`, `"run"`, `"fold"`,
//! `"merge_verify"`, …) between construction and drop. When no trace is
//! installed the guard is inert — construction is one relaxed atomic load
//! and drop does nothing — so instrumented code costs effectively nothing
//! in normal operation (the `NullTrace` discipline from `bcbpt-sim`,
//! applied to wall-clock time).
//!
//! With [`install_trace`] active, finished spans are appended to a
//! per-thread buffer (no locks on the hot path) and flushed to a shared
//! list when the buffer fills or the thread exits. [`take_trace`] collects
//! everything recorded so far; [`chrome_trace_json`] renders the result as
//! a Chrome-trace-compatible JSON document (`chrome://tracing`, Perfetto,
//! or any viewer that reads `traceEvents`).
//!
//! Campaign worker threads are scoped and joined before the driver writes
//! the trace file, so their thread-local buffers are always flushed by the
//! time [`take_trace`] runs; spans still open on *live* foreign threads at
//! collection time are not included.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Per-thread buffer size before flushing to the shared list.
const FLUSH_THRESHOLD: usize = 64;

/// A finished span, resolved to µs offsets from the trace origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Phase name (static, as passed to [`span`]).
    pub name: &'static str,
    /// Recording thread's trace id (small integers, assigned at first span).
    pub tid: u64,
    /// Start offset from [`install_trace`], µs.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

/// A raw record as buffered per-thread (Instants, not yet offset-resolved).
#[derive(Debug, Clone, Copy)]
struct RawSpan {
    name: &'static str,
    tid: u64,
    start: Instant,
    end: Instant,
}

struct TraceShared {
    enabled: AtomicBool,
    next_tid: AtomicU64,
    /// Origin instant + flushed records; both behind one mutex since they
    /// are only touched at install/flush/take time.
    state: Mutex<TraceState>,
}

#[derive(Default)]
struct TraceState {
    origin: Option<Instant>,
    records: Vec<RawSpan>,
}

fn shared() -> &'static TraceShared {
    static SHARED: OnceLock<TraceShared> = OnceLock::new();
    SHARED.get_or_init(|| TraceShared {
        enabled: AtomicBool::new(false),
        next_tid: AtomicU64::new(0),
        state: Mutex::new(TraceState::default()),
    })
}

fn lock_state() -> std::sync::MutexGuard<'static, TraceState> {
    shared().state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Thread-local span buffer that flushes on overflow and on thread exit.
struct ThreadBuffer {
    tid: u64,
    spans: Vec<RawSpan>,
}

impl ThreadBuffer {
    fn flush(&mut self) {
        if self.spans.is_empty() {
            return;
        }
        lock_state().records.append(&mut self.spans);
    }
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = RefCell::new(ThreadBuffer {
        tid: shared().next_tid.fetch_add(1, Ordering::Relaxed),
        spans: Vec::new(),
    });
}

/// `true` while a trace collection is active.
#[inline]
pub fn trace_enabled() -> bool {
    shared().enabled.load(Ordering::Relaxed)
}

/// Starts collecting spans process-wide, discarding anything recorded by a
/// previous collection. Spans created after this call are buffered until
/// [`take_trace`].
pub fn install_trace() {
    let sh = shared();
    {
        let mut st = lock_state();
        st.origin = Some(Instant::now());
        st.records.clear();
    }
    sh.enabled.store(true, Ordering::SeqCst);
}

/// Stops collecting and returns every recorded span, ordered by start time.
///
/// Flushes the calling thread's buffer first; worker threads flush when
/// they exit (scoped threads are joined before their campaign returns, so
/// their spans are always present here).
pub fn take_trace() -> Vec<SpanEvent> {
    let sh = shared();
    sh.enabled.store(false, Ordering::SeqCst);
    BUFFER.with(|b| b.borrow_mut().flush());
    let mut st = lock_state();
    let origin = match st.origin.take() {
        Some(o) => o,
        None => return Vec::new(),
    };
    let mut events: Vec<SpanEvent> = st
        .records
        .drain(..)
        .map(|r| SpanEvent {
            name: r.name,
            tid: r.tid,
            start_us: r.start.saturating_duration_since(origin).as_micros() as u64,
            dur_us: r.end.saturating_duration_since(r.start).as_micros() as u64,
        })
        .collect();
    drop(st);
    events.sort_by_key(|e| (e.start_us, e.tid, e.name));
    events
}

/// Times the phase `name` until the returned guard drops.
///
/// Inert (a single relaxed load, `start: None`) unless a trace is
/// installed, so it is safe to leave in hot paths.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: if trace_enabled() {
            Some(Instant::now())
        } else {
            None
        },
    }
}

/// Guard created by [`span`]; records the elapsed interval on drop when a
/// trace is active.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        BUFFER.with(|b| {
            let mut buf = b.borrow_mut();
            let tid = buf.tid;
            buf.spans.push(RawSpan {
                name: self.name,
                tid,
                start,
                end,
            });
            if buf.spans.len() >= FLUSH_THRESHOLD {
                buf.flush();
            }
        });
    }
}

/// Renders spans as a Chrome-trace JSON document.
///
/// Complete (`ph: "X"`) events with µs timestamps; open the file in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Names are static identifiers (no quotes/backslashes), so plain
        // interpolation produces valid JSON.
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            e.name, e.tid, e.start_us, e.dur_us
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // Span tests share one process-global trace; run them under a lock so
    // `cargo test` parallelism cannot interleave collections.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = serial();
        let _ = take_trace();
        {
            let _s = span("ghost");
        }
        install_trace();
        let events = take_trace();
        assert!(events.iter().all(|e| e.name != "ghost"));
    }

    #[test]
    fn spans_record_name_and_duration() {
        let _g = serial();
        install_trace();
        {
            let _s = span("phase_a");
            std::thread::sleep(Duration::from_millis(2));
        }
        let events = take_trace();
        let a = events.iter().find(|e| e.name == "phase_a").unwrap();
        assert!(a.dur_us >= 1_000, "slept 2ms, recorded {}us", a.dur_us);
    }

    #[test]
    fn worker_thread_spans_flush_on_join() {
        let _g = serial();
        install_trace();
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    let _s = span("worker");
                });
            }
        });
        let events = take_trace();
        assert_eq!(events.iter().filter(|e| e.name == "worker").count(), 3);
    }

    #[test]
    fn take_without_install_is_empty() {
        let _g = serial();
        let _ = take_trace();
        assert!(take_trace().is_empty());
    }

    #[test]
    fn chrome_json_is_wellformed() {
        let events = vec![
            SpanEvent {
                name: "warmup",
                tid: 0,
                start_us: 0,
                dur_us: 100,
            },
            SpanEvent {
                name: "run",
                tid: 1,
                start_us: 100,
                dur_us: 50,
            },
        ];
        let json = chrome_trace_json(&events);
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let list = serde::map_get(v.as_map().unwrap(), "traceEvents");
        assert_eq!(list.as_seq().unwrap().len(), 2);
    }
}
