//! Property-based tests for the geographic substrate.

use bcbpt_geo::{
    DistanceParams, EmpiricalDist, GeoPoint, LatencyConfig, LinkLatencyModel, NodePlacer,
    TransmissionMedium,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

fn arb_point() -> impl Strategy<Value = GeoPoint> {
    (-90.0f64..=90.0, -180.0f64..=180.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon).unwrap())
}

proptest! {
    /// Haversine is a metric: non-negative, symmetric, zero iff same point,
    /// triangle inequality.
    #[test]
    fn haversine_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        let dab = a.distance_km(&b);
        let dba = b.distance_km(&a);
        prop_assert!(dab >= 0.0);
        prop_assert!((dab - dba).abs() < 1e-6);
        prop_assert!(a.distance_km(&a) < 1e-9);
        let dac = a.distance_km(&c);
        let dcb = c.distance_km(&b);
        prop_assert!(dab <= dac + dcb + 1e-6, "triangle violated: {dab} > {dac} + {dcb}");
    }

    /// Distances never exceed half the Earth's circumference.
    #[test]
    fn haversine_bounded(a in arb_point(), b in arb_point()) {
        let half = std::f64::consts::PI * bcbpt_geo::EARTH_RADIUS_KM;
        prop_assert!(a.distance_km(&b) <= half + 1e-6);
    }

    /// The Eq. 2 distance utility is monotone in physical distance and
    /// always at least the constant terms.
    #[test]
    fn distance_utility_monotone(km1 in 0.0f64..20_000.0, km2 in 0.0f64..20_000.0) {
        let p = DistanceParams::sane();
        let (lo, hi) = if km1 <= km2 { (km1, km2) } else { (km2, km1) };
        prop_assert!(p.distance_ms(lo) <= p.distance_ms(hi) + 1e-12);
        prop_assert!(p.distance_ms(lo) >= p.transmission_ms() + p.queuing_ms() - 1e-12);
    }

    /// coverage_radius_km inverts distance_ms wherever the budget is positive.
    #[test]
    fn coverage_radius_inverts(threshold in 0.1f64..500.0) {
        let p = DistanceParams::sane();
        let r = p.coverage_radius_km(threshold);
        if r > 0.0 {
            prop_assert!((p.distance_ms(r) - threshold).abs() < 1e-9);
        } else {
            prop_assert!(p.distance_ms(0.0) >= threshold - 1e-9);
        }
    }

    /// Base one-way latency is symmetric in the node pair and no less than
    /// the floor.
    #[test]
    fn latency_symmetric_and_floored(a in arb_point(), b in arb_point(), seed in any::<u64>()) {
        let model = LinkLatencyModel::new(LatencyConfig::internet());
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let pa = model.sample_access(&mut rng);
        let pb = model.sample_access(&mut rng);
        let dab = model.base_one_way_ms(&a, &b, &pa, &pb);
        let dba = model.base_one_way_ms(&b, &a, &pb, &pa);
        prop_assert!((dab - dba).abs() < 1e-9);
        prop_assert!(dab >= model.config().floor_ms);
        prop_assert!(model.base_rtt_ms(&a, &b, &pa, &pb) >= dab * 2.0 - 1e-9);
    }

    /// Congestion samples are positive and respect the floor.
    #[test]
    fn congestion_samples_positive(base in 0.1f64..1000.0, seed in any::<u64>()) {
        let model = LinkLatencyModel::new(LatencyConfig::internet());
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..32 {
            let s = model.sample_one_way_ms(base, &mut rng);
            prop_assert!(s >= model.config().floor_ms);
            prop_assert!(s.is_finite());
        }
    }

    /// Empirical distributions sample within [min, max] of the source data.
    #[test]
    fn empirical_within_range(
        samples in proptest::collection::vec(-1000.0f64..1000.0, 1..50),
        seed in any::<u64>()
    ) {
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let d = EmpiricalDist::from_samples(samples).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        for _ in 0..32 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo - 1e-9 && x <= hi + 1e-9);
        }
    }

    /// Node placement always lands inside a catalogued region's jitter box
    /// and is deterministic under a seed.
    #[test]
    fn placement_deterministic(seed in any::<u64>()) {
        let placer = NodePlacer::world();
        let a = placer.place_many(5, &mut ChaCha12Rng::seed_from_u64(seed));
        let b = placer.place_many(5, &mut ChaCha12Rng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    /// Wifi propagation is never slower than copper for the same distance.
    #[test]
    fn wifi_beats_copper(km in 0.0f64..20_000.0) {
        prop_assert!(
            TransmissionMedium::Wifi.propagation_delay_ms(km)
                <= TransmissionMedium::Copper.propagation_delay_ms(km) + 1e-12
        );
    }
}
