//! Geographic coordinates and great-circle distance.

use core::fmt;
use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6_371.0;

/// A point on the Earth's surface (degrees).
///
/// # Examples
///
/// ```
/// use bcbpt_geo::GeoPoint;
///
/// let london = GeoPoint::new(51.5074, -0.1278).unwrap();
/// let new_york = GeoPoint::new(40.7128, -74.0060).unwrap();
/// let d = london.distance_km(&new_york);
/// assert!((d - 5570.0).abs() < 30.0, "LHR-JFK is ~5570 km, got {d}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

/// Error constructing a [`GeoPoint`] from out-of-range coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidCoordinates {
    /// Offending latitude.
    pub lat_deg: f64,
    /// Offending longitude.
    pub lon_deg: f64,
}

impl fmt::Display for InvalidCoordinates {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid coordinates lat={} lon={} (lat must be in [-90, 90], lon in [-180, 180])",
            self.lat_deg, self.lon_deg
        )
    }
}

impl std::error::Error for InvalidCoordinates {}

impl GeoPoint {
    /// Creates a point, validating ranges.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidCoordinates`] when latitude is outside `[-90, 90]`,
    /// longitude is outside `[-180, 180]`, or either is non-finite.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Result<Self, InvalidCoordinates> {
        if !lat_deg.is_finite()
            || !lon_deg.is_finite()
            || !(-90.0..=90.0).contains(&lat_deg)
            || !(-180.0..=180.0).contains(&lon_deg)
        {
            return Err(InvalidCoordinates { lat_deg, lon_deg });
        }
        Ok(GeoPoint { lat_deg, lon_deg })
    }

    /// Latitude in degrees.
    pub fn lat_deg(&self) -> f64 {
        self.lat_deg
    }

    /// Longitude in degrees.
    pub fn lon_deg(&self) -> f64 {
        self.lon_deg
    }

    /// Great-circle (haversine) distance to `other` in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().asin();
        EARTH_RADIUS_KM * c
    }

    /// Returns a copy displaced by the given offsets, clamping latitude and
    /// wrapping longitude — used to jitter node placement within a region.
    pub fn displaced(&self, dlat_deg: f64, dlon_deg: f64) -> GeoPoint {
        let lat = (self.lat_deg + dlat_deg).clamp(-90.0, 90.0);
        let mut lon = self.lon_deg + dlon_deg;
        while lon > 180.0 {
            lon -= 360.0;
        }
        while lon < -180.0 {
            lon += 360.0;
        }
        GeoPoint {
            lat_deg: lat,
            lon_deg: lon,
        }
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat_deg, self.lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_ranges() {
        assert!(GeoPoint::new(91.0, 0.0).is_err());
        assert!(GeoPoint::new(-91.0, 0.0).is_err());
        assert!(GeoPoint::new(0.0, 181.0).is_err());
        assert!(GeoPoint::new(0.0, -181.0).is_err());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(90.0, 180.0).is_ok());
        let err = GeoPoint::new(99.0, 0.0).unwrap_err();
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = GeoPoint::new(48.8566, 2.3522).unwrap();
        assert_eq!(p.distance_km(&p), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(35.6762, 139.6503).unwrap(); // Tokyo
        let b = GeoPoint::new(-33.8688, 151.2093).unwrap(); // Sydney
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn known_distances() {
        let tokyo = GeoPoint::new(35.6762, 139.6503).unwrap();
        let sydney = GeoPoint::new(-33.8688, 151.2093).unwrap();
        let d = tokyo.distance_km(&sydney);
        assert!((d - 7820.0).abs() < 100.0, "Tokyo-Sydney ~7820km, got {d}");

        let paris = GeoPoint::new(48.8566, 2.3522).unwrap();
        let london = GeoPoint::new(51.5074, -0.1278).unwrap();
        let d = paris.distance_km(&london);
        assert!((d - 344.0).abs() < 10.0, "Paris-London ~344km, got {d}");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0).unwrap();
        let b = GeoPoint::new(0.0, 180.0).unwrap();
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0);
    }

    #[test]
    fn displaced_clamps_and_wraps() {
        let p = GeoPoint::new(89.0, 179.0).unwrap();
        let q = p.displaced(5.0, 5.0);
        assert_eq!(q.lat_deg(), 90.0);
        assert_eq!(q.lon_deg(), -176.0);
        let r = GeoPoint::new(0.0, -179.0).unwrap().displaced(0.0, -3.0);
        assert_eq!(r.lon_deg(), 178.0);
    }

    #[test]
    fn display_nonempty() {
        let p = GeoPoint::new(1.0, 2.0).unwrap();
        assert_eq!(p.to_string(), "(1.0000, 2.0000)");
    }
}
