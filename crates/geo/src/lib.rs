//! # bcbpt-geo — world model, latency and churn for the BCBPT reproduction
//!
//! Geographic substrate for the reproduction of *Proximity Awareness
//! Approach to Enhance Propagation Delay on the Bitcoin Peer-to-Peer
//! Network* (ICDCS 2017):
//!
//! * [`GeoPoint`] — coordinates with haversine distance.
//! * [`world_regions`]/[`NodePlacer`] — node placement approximating the
//!   published Bitcoin node geography (substitute for the paper's crawler
//!   dataset; see DESIGN.md §2).
//! * [`TransmissionMedium`] — signal speeds from the paper's Eq. 3.
//! * [`DistanceParams`] — the paper's distance utility function (Eq. 2–4),
//!   both with self-consistent defaults and the published constants.
//! * [`LatencyConfig`]/[`LinkLatencyModel`] — pairwise RTT generation with
//!   access delays and congestion noise; [`EmpiricalDist`] for attaching
//!   real traces where available.
//! * [`ChurnModel`]/[`ArrivalProcess`] — session lengths and node arrivals.
//!
//! # Examples
//!
//! ```
//! use bcbpt_geo::{LatencyConfig, LinkLatencyModel, NodePlacer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(7);
//! let placer = NodePlacer::world();
//! let model = LinkLatencyModel::new(LatencyConfig::internet());
//! let a = placer.place(&mut rng);
//! let b = placer.place(&mut rng);
//! let pa = model.sample_access(&mut rng);
//! let pb = model.sample_access(&mut rng);
//! let rtt = model.base_rtt_ms(&a.point, &b.point, &pa, &pb);
//! assert!(rtt > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod coord;
mod distance;
mod latency;
mod medium;
mod regions;

pub use churn::{ArrivalProcess, ChurnModel};
pub use coord::{GeoPoint, InvalidCoordinates, EARTH_RADIUS_KM};
pub use distance::DistanceParams;
pub use latency::{
    sample_standard_normal, AccessProfile, EmpiricalDist, GeoRng, LatencyConfig, LinkLatencyModel,
};
pub use medium::{TransmissionMedium, LIGHT_SPEED_KM_PER_MS};
pub use regions::{world_regions, NodePlacer, Placement, Region};
