//! Physical transmission media and signal speeds (paper Eq. 3).

use core::fmt;
use serde::{Deserialize, Serialize};

/// Speed of light in vacuum, in km/ms.
pub const LIGHT_SPEED_KM_PER_MS: f64 = 299_792.458 / 1_000.0;

/// The physical medium a link signal travels over.
///
/// The paper distinguishes Wi-Fi/air (signal speed `3·10⁸ m/s`) from copper
/// cable (`⅔ · 3·10⁸ m/s`); optical fibre has the same ⅔-c velocity factor
/// as copper, so [`TransmissionMedium::Fiber`] shares it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TransmissionMedium {
    /// Radio/air: signals travel at c.
    Wifi,
    /// Copper cable: ⅔ c (paper §IV.A).
    #[default]
    Copper,
    /// Optical fibre: ⅔ c (refractive index ≈ 1.5).
    Fiber,
}

impl TransmissionMedium {
    /// Signal speed in kilometres per millisecond.
    ///
    /// # Examples
    ///
    /// ```
    /// use bcbpt_geo::TransmissionMedium;
    ///
    /// let v = TransmissionMedium::Copper.signal_speed_km_per_ms();
    /// assert!((v - 200.0).abs() < 1.0); // ~200 km/ms
    /// ```
    pub fn signal_speed_km_per_ms(self) -> f64 {
        match self {
            TransmissionMedium::Wifi => LIGHT_SPEED_KM_PER_MS,
            TransmissionMedium::Copper | TransmissionMedium::Fiber => {
                LIGHT_SPEED_KM_PER_MS * 2.0 / 3.0
            }
        }
    }

    /// One-way propagation delay over `distance_km`, in milliseconds.
    pub fn propagation_delay_ms(self, distance_km: f64) -> f64 {
        distance_km / self.signal_speed_km_per_ms()
    }
}

impl fmt::Display for TransmissionMedium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransmissionMedium::Wifi => "wifi",
            TransmissionMedium::Copper => "copper",
            TransmissionMedium::Fiber => "fiber",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_is_light_speed() {
        assert_eq!(
            TransmissionMedium::Wifi.signal_speed_km_per_ms(),
            LIGHT_SPEED_KM_PER_MS
        );
    }

    #[test]
    fn guided_media_are_two_thirds_c() {
        for m in [TransmissionMedium::Copper, TransmissionMedium::Fiber] {
            assert!((m.signal_speed_km_per_ms() - LIGHT_SPEED_KM_PER_MS * 2.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn transatlantic_fiber_delay_plausible() {
        // ~5570 km New York - London: one-way ~28 ms over fibre.
        let d = TransmissionMedium::Fiber.propagation_delay_ms(5570.0);
        assert!((d - 27.9).abs() < 1.0, "got {d}");
    }

    #[test]
    fn default_is_copper() {
        assert_eq!(TransmissionMedium::default(), TransmissionMedium::Copper);
    }

    #[test]
    fn display_nonempty() {
        for m in [
            TransmissionMedium::Wifi,
            TransmissionMedium::Copper,
            TransmissionMedium::Fiber,
        ] {
            assert!(!m.to_string().is_empty());
        }
    }
}
