//! Link-latency modelling.
//!
//! The paper attaches measured link-latency distributions (crawled from
//! ~5000 reachable peers, 20 000 ping/pong samples) to its simulator. We
//! rebuild the *generator* of such distributions instead: a geographic base
//! delay (great-circle distance over the medium, stretched because internet
//! paths are not geodesics), per-node access-network delay, and multiplicative
//! lognormal congestion noise per message. The resulting pairwise RTT
//! distribution has the same qualitative shape (tens of ms regionally,
//! 100–300 ms intercontinentally, heavy tail) as the published measurements,
//! which is what the clustering protocols consume.

use crate::coord::GeoPoint;
use crate::medium::TransmissionMedium;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic link-latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// Physical medium of long-haul links.
    pub medium: TransmissionMedium,
    /// Multiplier on great-circle distance to account for routing detours
    /// and switching. Measured internet paths run ~1.5–2.5× geodesic time.
    pub path_stretch: f64,
    /// Minimum per-node access-network one-way delay (ms).
    pub access_min_ms: f64,
    /// Maximum per-node access-network one-way delay (ms).
    pub access_max_ms: f64,
    /// σ of the multiplicative lognormal congestion noise applied per
    /// message (0 disables noise). The noise has mean 1 (μ = −σ²/2).
    pub congestion_sigma: f64,
    /// σ of a per-node lognormal multiplier on the access delay
    /// (0 disables). Real networks have a minority of badly-connected
    /// nodes; this is what produces the heavy right tail in measured
    /// propagation delays.
    pub access_tail_sigma: f64,
    /// Hard floor on any one-way delay (ms) — even co-located peers cross a
    /// NIC and a kernel.
    pub floor_ms: f64,
}

impl LatencyConfig {
    /// Calibrated defaults (see module docs).
    pub fn internet() -> Self {
        LatencyConfig {
            medium: TransmissionMedium::Fiber,
            path_stretch: 1.9,
            access_min_ms: 1.0,
            access_max_ms: 15.0,
            congestion_sigma: 0.25,
            access_tail_sigma: 0.0,
            floor_ms: 0.3,
        }
    }

    /// "Measured client" variant: adds the per-node access-delay tail seen
    /// in real deployments (a minority of poorly connected peers). Used by
    /// the simulator-validation experiment.
    pub fn measured() -> Self {
        LatencyConfig {
            access_tail_sigma: 1.0,
            ..Self::internet()
        }
    }

    /// A noise-free variant for deterministic unit tests.
    pub fn noiseless() -> Self {
        LatencyConfig {
            congestion_sigma: 0.0,
            access_min_ms: 0.0,
            access_max_ms: 0.0,
            access_tail_sigma: 0.0,
            ..Self::internet()
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::internet()
    }
}

/// Per-node network profile, sampled once when the node is created.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessProfile {
    /// One-way access-network delay contributed by this node (ms).
    pub access_delay_ms: f64,
}

/// The link-latency model: deterministic base delay per node pair plus
/// per-message congestion noise.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkLatencyModel {
    config: LatencyConfig,
}

impl LinkLatencyModel {
    /// Creates a model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent (negative delays,
    /// `access_max < access_min`, non-finite values).
    pub fn new(config: LatencyConfig) -> Self {
        assert!(
            config.path_stretch.is_finite() && config.path_stretch >= 1.0,
            "path_stretch must be >= 1"
        );
        assert!(
            config.access_min_ms >= 0.0 && config.access_max_ms >= config.access_min_ms,
            "access delay range invalid"
        );
        assert!(
            config.congestion_sigma >= 0.0 && config.congestion_sigma.is_finite(),
            "congestion sigma invalid"
        );
        assert!(
            config.access_tail_sigma >= 0.0 && config.access_tail_sigma.is_finite(),
            "access tail sigma invalid"
        );
        assert!(config.floor_ms >= 0.0, "floor must be non-negative");
        LinkLatencyModel { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LatencyConfig {
        &self.config
    }

    /// Samples a node's access profile.
    pub fn sample_access<R: Rng + ?Sized>(&self, rng: &mut R) -> AccessProfile {
        let mut access_delay_ms = if self.config.access_max_ms > self.config.access_min_ms {
            rng.gen_range(self.config.access_min_ms..=self.config.access_max_ms)
        } else {
            self.config.access_min_ms
        };
        if self.config.access_tail_sigma > 0.0 {
            // Median-1 lognormal tail: most nodes unchanged, a minority much
            // slower — the badly-connected peers of real deployments.
            let z = sample_standard_normal(rng);
            access_delay_ms *= (self.config.access_tail_sigma * z).exp();
        }
        AccessProfile { access_delay_ms }
    }

    /// Deterministic base one-way delay between two placed nodes (ms):
    /// stretched geodesic propagation plus both access delays.
    pub fn base_one_way_ms(
        &self,
        a: &GeoPoint,
        b: &GeoPoint,
        access_a: &AccessProfile,
        access_b: &AccessProfile,
    ) -> f64 {
        self.base_one_way_ms_with_route(a, b, access_a, access_b, 1.0)
    }

    /// Like [`base_one_way_ms`](Self::base_one_way_ms) with an extra
    /// multiplicative *route factor* on the propagation term.
    ///
    /// Real internet paths deviate from geodesics per-pair (BGP peering,
    /// detours); the paper leans on exactly this effect to distinguish
    /// geographic (LBC) from latency (BCBPT) proximity: "two geographically
    /// close nodes may be actually quite far from each other in the physical
    /// internet" (§V.C). The network fabric supplies a deterministic factor
    /// per node pair.
    pub fn base_one_way_ms_with_route(
        &self,
        a: &GeoPoint,
        b: &GeoPoint,
        access_a: &AccessProfile,
        access_b: &AccessProfile,
        route_factor: f64,
    ) -> f64 {
        let km = a.distance_km(b) * self.config.path_stretch;
        let propagation = self.config.medium.propagation_delay_ms(km) * route_factor;
        (propagation + access_a.access_delay_ms + access_b.access_delay_ms)
            .max(self.config.floor_ms)
    }

    /// Applies per-message congestion noise to a base delay.
    ///
    /// Noise is multiplicative lognormal with mean 1, so repeated samples
    /// scatter around the base — exactly why BCBPT pings each candidate
    /// several times (paper §IV.A: "multiple messages between pairs of
    /// nodes, repeatedly ... to determine variance").
    pub fn sample_one_way_ms<R: Rng + ?Sized>(&self, base_ms: f64, rng: &mut R) -> f64 {
        let sigma = self.config.congestion_sigma;
        if sigma == 0.0 {
            return base_ms.max(self.config.floor_ms);
        }
        let z: f64 = sample_standard_normal(rng);
        let noise = (sigma * z - sigma * sigma / 2.0).exp();
        (base_ms * noise).max(self.config.floor_ms)
    }

    /// Convenience: base round-trip time (2 × one-way base).
    pub fn base_rtt_ms(
        &self,
        a: &GeoPoint,
        b: &GeoPoint,
        access_a: &AccessProfile,
        access_b: &AccessProfile,
    ) -> f64 {
        2.0 * self.base_one_way_ms(a, b, access_a, access_b)
    }
}

/// Samples a standard normal via Box–Muller (avoids a distributions dep).
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// An empirical distribution sampled by inverse-CDF with linear
/// interpolation — the mechanism for "attaching measured distributions" to
/// the simulator when real traces are available.
///
/// # Examples
///
/// ```
/// use bcbpt_geo::EmpiricalDist;
/// use rand::SeedableRng;
///
/// let dist = EmpiricalDist::from_samples(vec![10.0, 20.0, 30.0]).unwrap();
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
/// let x = dist.sample(&mut rng);
/// assert!((10.0..=30.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalDist {
    sorted: Vec<f64>,
}

impl EmpiricalDist {
    /// Builds a distribution from samples, dropping non-finite values.
    ///
    /// Returns `None` when no finite samples remain.
    pub fn from_samples(samples: Vec<f64>) -> Option<Self> {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(EmpiricalDist { sorted })
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `false` by construction; provided for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one value by inverse-CDF with interpolation between order
    /// statistics.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let u: f64 = rng.gen::<f64>() * (self.sorted.len() - 1) as f64;
        let lo = u.floor() as usize;
        let hi = (lo + 1).min(self.sorted.len() - 1);
        let frac = u - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Deterministic quantile of the underlying sample.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let idx = (q * (self.sorted.len() - 1) as f64).round() as usize;
        self.sorted[idx]
    }
}

/// A deterministic RNG type alias used across the workspace for seeding.
pub type GeoRng = ChaCha12Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn point(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new(lat, lon).unwrap()
    }

    fn no_access() -> AccessProfile {
        AccessProfile {
            access_delay_ms: 0.0,
        }
    }

    #[test]
    fn base_delay_scales_with_distance() {
        let model = LinkLatencyModel::new(LatencyConfig::noiseless());
        let a = point(0.0, 0.0);
        let near = point(0.0, 1.0);
        let far = point(0.0, 40.0);
        let d_near = model.base_one_way_ms(&a, &near, &no_access(), &no_access());
        let d_far = model.base_one_way_ms(&a, &far, &no_access(), &no_access());
        assert!(d_far > 10.0 * d_near);
    }

    #[test]
    fn transatlantic_rtt_plausible() {
        let model = LinkLatencyModel::new(LatencyConfig::noiseless());
        let nyc = point(40.71, -74.00);
        let london = point(51.51, -0.13);
        let rtt = model.base_rtt_ms(&nyc, &london, &no_access(), &no_access());
        // Real-world NYC-London RTT is ~70-90 ms; the stretched model should
        // land in that ballpark.
        assert!((60.0..140.0).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn floor_applies_to_colocated_nodes() {
        let model = LinkLatencyModel::new(LatencyConfig::noiseless());
        let p = point(10.0, 10.0);
        let d = model.base_one_way_ms(&p, &p, &no_access(), &no_access());
        assert_eq!(d, LatencyConfig::noiseless().floor_ms);
    }

    #[test]
    fn congestion_noise_has_mean_about_one() {
        let model = LinkLatencyModel::new(LatencyConfig::internet());
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let base = 100.0;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| model.sample_one_way_ms(base, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - base).abs() < 2.0,
            "mean {mean} should be near {base}"
        );
    }

    #[test]
    fn noiseless_sampling_is_identity() {
        let model = LinkLatencyModel::new(LatencyConfig::noiseless());
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert_eq!(model.sample_one_way_ms(55.0, &mut rng), 55.0);
    }

    #[test]
    fn access_profile_within_range() {
        let model = LinkLatencyModel::new(LatencyConfig::internet());
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let p = model.sample_access(&mut rng);
            assert!((1.0..=15.0).contains(&p.access_delay_ms));
        }
    }

    #[test]
    #[should_panic(expected = "path_stretch")]
    fn invalid_stretch_rejected() {
        LinkLatencyModel::new(LatencyConfig {
            path_stretch: 0.5,
            ..LatencyConfig::internet()
        });
    }

    #[test]
    fn empirical_dist_samples_within_range() {
        let d = EmpiricalDist::from_samples(vec![5.0, 1.0, 3.0]).unwrap();
        assert_eq!(d.len(), 3);
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        for _ in 0..500 {
            let x = d.sample(&mut rng);
            assert!((1.0..=5.0).contains(&x));
        }
        assert_eq!(d.quantile(0.0), 1.0);
        assert_eq!(d.quantile(1.0), 5.0);
        assert_eq!(d.quantile(0.5), 3.0);
    }

    #[test]
    fn empirical_dist_rejects_empty() {
        assert!(EmpiricalDist::from_samples(vec![]).is_none());
        assert!(EmpiricalDist::from_samples(vec![f64::NAN]).is_none());
    }

    #[test]
    fn empirical_dist_single_sample_is_constant() {
        let d = EmpiricalDist::from_samples(vec![7.0]).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert_eq!(d.sample(&mut rng), 7.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha12Rng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
