//! World regions and node placement.
//!
//! The paper places ~5000 simulated nodes according to crawler measurements
//! of the real Bitcoin network. We do not have that proprietary dataset, so
//! we substitute a static catalogue of metropolitan regions whose weights
//! approximate the published Bitnodes-era country distribution (US and EU
//! heavy, significant presence in China/Russia, a long tail elsewhere).
//! The clustering protocols only consume the *pairwise RTT structure* this
//! placement induces, so matching the coarse geography preserves the
//! behaviour the experiments measure (see DESIGN.md §2).

use crate::coord::GeoPoint;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A metropolitan region where simulated nodes can be placed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Human-readable name, e.g. `"us-east"`.
    pub name: String,
    /// ISO-like country tag, e.g. `"US"` (used by the LBC baseline, which
    /// clusters by *location*).
    pub country: String,
    /// Region centre.
    pub center: GeoPoint,
    /// Placement jitter radius in degrees (nodes scatter around the centre).
    pub jitter_deg: f64,
    /// Relative share of the node population placed here.
    pub weight: f64,
}

/// The built-in region catalogue with Bitnodes-style weights.
///
/// # Examples
///
/// ```
/// use bcbpt_geo::world_regions;
///
/// let regions = world_regions();
/// assert!(regions.len() >= 20);
/// let total: f64 = regions.iter().map(|r| r.weight).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
pub fn world_regions() -> Vec<Region> {
    // (name, country, lat, lon, jitter_deg, weight)
    const TABLE: &[(&str, &str, f64, f64, f64, f64)] = &[
        ("us-east", "US", 40.71, -74.00, 4.0, 0.130),
        ("us-central", "US", 41.88, -87.63, 4.0, 0.060),
        ("us-west", "US", 37.77, -122.42, 4.0, 0.080),
        ("canada", "CA", 43.65, -79.38, 4.0, 0.025),
        ("germany", "DE", 50.11, 8.68, 2.5, 0.120),
        ("france", "FR", 48.86, 2.35, 2.5, 0.055),
        ("netherlands", "NL", 52.37, 4.90, 1.5, 0.050),
        ("uk", "GB", 51.51, -0.13, 2.0, 0.045),
        ("ireland", "IE", 53.35, -6.26, 1.5, 0.012),
        ("sweden", "SE", 59.33, 18.07, 2.5, 0.018),
        ("finland", "FI", 60.17, 24.94, 2.5, 0.015),
        ("switzerland", "CH", 47.38, 8.54, 1.0, 0.018),
        ("eastern-europe", "PL", 52.23, 21.01, 4.0, 0.030),
        ("russia-west", "RU", 55.76, 37.62, 4.0, 0.045),
        ("russia-east", "RU", 56.84, 60.61, 5.0, 0.010),
        ("china-north", "CN", 39.90, 116.41, 3.5, 0.065),
        ("china-south", "CN", 22.54, 114.06, 3.5, 0.045),
        ("japan", "JP", 35.68, 139.65, 2.5, 0.030),
        ("korea", "KR", 37.57, 126.98, 1.5, 0.018),
        ("singapore", "SG", 1.35, 103.82, 1.0, 0.025),
        ("india", "IN", 19.08, 72.88, 4.0, 0.015),
        ("australia", "AU", -33.87, 151.21, 3.5, 0.018),
        ("brazil", "BR", -23.55, -46.63, 4.0, 0.022),
        ("argentina", "AR", -34.60, -58.38, 3.0, 0.008),
        ("south-africa", "ZA", -26.20, 28.05, 3.0, 0.008),
        ("ukraine", "UA", 50.45, 30.52, 3.0, 0.018),
        ("czech", "CZ", 50.08, 14.44, 1.5, 0.015),
        ("spain", "ES", 40.42, -3.70, 3.0, 0.018),
        ("italy", "IT", 45.46, 9.19, 3.0, 0.017),
        ("hongkong", "HK", 22.32, 114.17, 0.8, 0.015),
    ];
    let raw_total: f64 = TABLE.iter().map(|t| t.5).sum();
    TABLE
        .iter()
        .map(|&(name, country, lat, lon, jitter, weight)| Region {
            name: name.to_string(),
            country: country.to_string(),
            center: GeoPoint::new(lat, lon).expect("catalogue coordinates are valid"),
            jitter_deg: jitter,
            weight: weight / raw_total,
        })
        .collect()
}

/// Places nodes into regions by weight and jitters them around the centre.
#[derive(Debug, Clone)]
pub struct NodePlacer {
    regions: Vec<Region>,
    cumulative: Vec<f64>,
}

/// A placed node: its coordinates and the region it landed in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Node coordinates.
    pub point: GeoPoint,
    /// Index into the placer's region list.
    pub region_index: usize,
    /// Country tag of the region (LBC clusters on this).
    pub country: String,
}

impl NodePlacer {
    /// Creates a placer over the given regions.
    ///
    /// # Panics
    ///
    /// Panics when `regions` is empty or all weights are zero/negative.
    pub fn new(regions: Vec<Region>) -> Self {
        assert!(!regions.is_empty(), "need at least one region");
        let mut cumulative = Vec::with_capacity(regions.len());
        let mut acc = 0.0;
        for r in &regions {
            acc += r.weight.max(0.0);
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total region weight must be positive");
        NodePlacer {
            regions,
            cumulative,
        }
    }

    /// Creates a placer over the built-in world catalogue.
    pub fn world() -> Self {
        Self::new(world_regions())
    }

    /// The regions driving this placer.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Samples one node placement.
    pub fn place<R: Rng + ?Sized>(&self, rng: &mut R) -> Placement {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= u);
        let idx = idx.min(self.regions.len() - 1);
        let region = &self.regions[idx];
        let dlat = rng.gen_range(-region.jitter_deg..=region.jitter_deg);
        let dlon = rng.gen_range(-region.jitter_deg..=region.jitter_deg);
        Placement {
            point: region.center.displaced(dlat, dlon),
            region_index: idx,
            country: region.country.clone(),
        }
    }

    /// Samples `n` placements.
    pub fn place_many<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Placement> {
        (0..n).map(|_| self.place(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn catalogue_weights_normalised() {
        let rs = world_regions();
        let total: f64 = rs.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(rs.iter().all(|r| r.weight > 0.0));
        assert!(rs.iter().all(|r| r.jitter_deg > 0.0));
    }

    #[test]
    fn placement_respects_weights_roughly() {
        let placer = NodePlacer::world();
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 20_000;
        let placements = placer.place_many(n, &mut rng);
        let mut counts = vec![0usize; placer.regions().len()];
        for p in &placements {
            counts[p.region_index] += 1;
        }
        for (i, region) in placer.regions().iter().enumerate() {
            let observed = counts[i] as f64 / n as f64;
            let expected = region.weight;
            assert!(
                (observed - expected).abs() < 0.02,
                "region {} expected {expected:.3} got {observed:.3}",
                region.name
            );
        }
    }

    #[test]
    fn placement_jitters_within_region() {
        let placer = NodePlacer::world();
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        for _ in 0..500 {
            let p = placer.place(&mut rng);
            let region = &placer.regions()[p.region_index];
            // Jitter is a box in degrees; allow the diagonal.
            let d = p.point.distance_km(&region.center);
            let max_km = region.jitter_deg * 111.3 * std::f64::consts::SQRT_2 * 1.05;
            assert!(
                d <= max_km,
                "node at {d:.0} km from centre of {} (max {max_km:.0})",
                region.name
            );
            assert_eq!(p.country, region.country);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let placer = NodePlacer::world();
        let a = placer.place_many(10, &mut ChaCha12Rng::seed_from_u64(5));
        let b = placer.place_many(10, &mut ChaCha12Rng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn empty_regions_rejected() {
        NodePlacer::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let mut r = world_regions();
        for region in &mut r {
            region.weight = 0.0;
        }
        NodePlacer::new(r);
    }
}
