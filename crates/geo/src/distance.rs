//! The paper's distance utility function (Eq. 2–4).
//!
//! BCBPT decides cluster membership by comparing a computed "distance" (in
//! milliseconds) against a threshold `Dth`. The paper defines it as:
//!
//! ```text
//! D(i,j) = Mping / rate(r) + 2·P + q̄        (2)
//! P      = D_m / S                            (3)
//! q̄      = Mping / r − λ · Mping             (4)
//! ```
//!
//! where `Mping` is the ping message length, `rate(r)`/`r` the transmission
//! rate, `D_m` the physical distance, `S` the signal propagation speed and
//! `λ` the ping arrival rate at the receiver.
//!
//! **Faithfulness note.** The paper quotes `rate ≈ 100 KB/hour`, under which
//! the transmission term alone is ≈ 2.25 s for a 64-byte ping and every
//! node pair would exceed the 25 ms clustering threshold. The experiments in
//! the paper are only self-consistent if `D(i,j)` is dominated by the
//! round-trip propagation term `2P`, so the *default* parameters here use a
//! sane transmission rate (1 MB/s) that keeps the constant terms
//! sub-millisecond. [`DistanceParams::paper`] preserves the published
//! constants for side-by-side inspection. See DESIGN.md §1.

use crate::medium::TransmissionMedium;
use serde::{Deserialize, Serialize};

/// Parameters of the Eq. 2–4 distance utility.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistanceParams {
    /// Ping message length `Mping` in bytes.
    pub ping_len_bytes: f64,
    /// Transmission rate `rate(r)` in bytes per millisecond.
    pub rate_bytes_per_ms: f64,
    /// Ping arrival rate `λ` at the receiver, in pings per millisecond.
    pub ping_arrival_per_ms: f64,
    /// Physical medium determining the signal speed `S`.
    pub medium: TransmissionMedium,
}

impl DistanceParams {
    /// Defaults that keep the constant terms sub-millisecond so that
    /// `D(i,j) ≈ RTT` and the paper's 25 ms threshold is meaningful:
    /// 64-byte pings, 1 MB/s transmission, one ping per second arriving,
    /// fibre/copper signal speed (⅔ c).
    pub fn sane() -> Self {
        DistanceParams {
            ping_len_bytes: 64.0,
            rate_bytes_per_ms: 1_000.0,
            ping_arrival_per_ms: 0.001,
            medium: TransmissionMedium::Copper,
        }
    }

    /// The constants as printed in the paper (§IV.A): `rate ≈ 100 KB/hour`.
    /// Provided for reference; makes every pair "far" under a 25 ms
    /// threshold (see the module docs).
    pub fn paper() -> Self {
        DistanceParams {
            ping_len_bytes: 64.0,
            // 100 KB/hour = 102 400 bytes / 3 600 000 ms.
            rate_bytes_per_ms: 102_400.0 / 3_600_000.0,
            ping_arrival_per_ms: 0.001,
            medium: TransmissionMedium::Copper,
        }
    }

    /// Transmission-delay term `Mping / rate(r)` in milliseconds.
    pub fn transmission_ms(&self) -> f64 {
        self.ping_len_bytes / self.rate_bytes_per_ms
    }

    /// One-way propagation delay `P = D_m / S` in milliseconds (Eq. 3).
    pub fn propagation_ms(&self, distance_km: f64) -> f64 {
        distance_km / self.medium.signal_speed_km_per_ms()
    }

    /// Average queuing time `q̄ = Mping/r − λ·Mping` in milliseconds (Eq. 4),
    /// floored at zero (the published formula can go negative for high
    /// arrival rates; a negative queueing time is unphysical).
    pub fn queuing_ms(&self) -> f64 {
        (self.ping_len_bytes / self.rate_bytes_per_ms
            - self.ping_arrival_per_ms * self.ping_len_bytes)
            .max(0.0)
    }

    /// The full distance utility `D(i,j)` in milliseconds (Eq. 2) for a
    /// physical distance in kilometres.
    ///
    /// # Examples
    ///
    /// ```
    /// use bcbpt_geo::DistanceParams;
    ///
    /// let params = DistanceParams::sane();
    /// // A ~1000 km fibre path: 2·P = 2·1000/200 = 10 ms dominates.
    /// let d = params.distance_ms(1000.0);
    /// assert!(d > 10.0 && d < 11.0, "got {d}");
    /// ```
    pub fn distance_ms(&self, distance_km: f64) -> f64 {
        self.transmission_ms() + 2.0 * self.propagation_ms(distance_km) + self.queuing_ms()
    }

    /// Inverse of [`distance_ms`](Self::distance_ms): the physical distance
    /// (km) at which the utility equals `threshold_ms`. Returns `0.0` when
    /// the constant terms already exceed the threshold.
    ///
    /// Useful for reasoning about the *coverage radius* a threshold implies
    /// (paper §V.C attributes smaller clusters to "limited coverage physical
    /// topology").
    pub fn coverage_radius_km(&self, threshold_ms: f64) -> f64 {
        let budget = threshold_ms - self.transmission_ms() - self.queuing_ms();
        if budget <= 0.0 {
            return 0.0;
        }
        budget / 2.0 * self.medium.signal_speed_km_per_ms()
    }
}

impl Default for DistanceParams {
    fn default() -> Self {
        Self::sane()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sane_constant_terms_are_small() {
        let p = DistanceParams::sane();
        assert!(p.transmission_ms() < 0.1);
        assert!(p.queuing_ms() < 0.1);
        assert_eq!(p.distance_ms(0.0), p.transmission_ms() + p.queuing_ms());
    }

    #[test]
    fn paper_constants_swamp_threshold() {
        let p = DistanceParams::paper();
        // The published rate makes the transmission term ≈ 2250 ms.
        assert!(p.transmission_ms() > 2_000.0);
        assert_eq!(
            p.coverage_radius_km(25.0),
            0.0,
            "paper constants leave no budget under a 25 ms threshold"
        );
    }

    #[test]
    fn distance_grows_linearly_with_km() {
        let p = DistanceParams::sane();
        let base = p.distance_ms(0.0);
        let d1 = p.distance_ms(100.0) - base;
        let d2 = p.distance_ms(200.0) - base;
        assert!((d2 - 2.0 * d1).abs() < 1e-9);
    }

    #[test]
    fn copper_is_slower_than_wifi() {
        let copper = DistanceParams {
            medium: TransmissionMedium::Copper,
            ..DistanceParams::sane()
        };
        let wifi = DistanceParams {
            medium: TransmissionMedium::Wifi,
            ..DistanceParams::sane()
        };
        assert!(copper.distance_ms(5000.0) > wifi.distance_ms(5000.0));
    }

    #[test]
    fn queuing_never_negative() {
        let p = DistanceParams {
            ping_arrival_per_ms: 1_000.0, // absurd ping storm
            ..DistanceParams::sane()
        };
        assert_eq!(p.queuing_ms(), 0.0);
    }

    #[test]
    fn coverage_radius_round_trips() {
        let p = DistanceParams::sane();
        let r = p.coverage_radius_km(25.0);
        assert!(r > 0.0);
        let d = p.distance_ms(r);
        assert!(
            (d - 25.0).abs() < 1e-9,
            "distance at radius should hit threshold"
        );
    }

    #[test]
    fn default_is_sane() {
        assert_eq!(DistanceParams::default(), DistanceParams::sane());
    }
}
