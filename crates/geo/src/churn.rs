//! Node churn: session lengths and arrival processes.
//!
//! The paper drives join/leave events from measured peer session lengths
//! (ref [5]). P2P session lengths are consistently reported as heavy-tailed;
//! we substitute a lognormal session-length model and an exponential
//! rejoin/arrival process with configurable parameters (DESIGN.md §2).

use crate::latency::sample_standard_normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Lognormal session-length model.
///
/// Serializes like a plain struct, except that the infinite durations of
/// [`disabled`](Self::disabled) churn map to JSON `null` and back — so a
/// scenario file can say `"median_session_ms": null` for "no churn" and a
/// disabled model survives a JSON round trip intact.
///
/// # Examples
///
/// ```
/// use bcbpt_geo::ChurnModel;
/// use rand::SeedableRng;
///
/// let model = ChurnModel::measured_like();
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
/// let session_ms = model.sample_session_ms(&mut rng);
/// assert!(session_ms > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Median session length in milliseconds.
    pub median_session_ms: f64,
    /// Lognormal shape parameter σ (0 ⇒ deterministic sessions).
    pub session_sigma: f64,
    /// Mean offline gap before a departed node rejoins, in milliseconds
    /// (exponentially distributed). `f64::INFINITY` disables rejoin.
    pub mean_offline_ms: f64,
}

impl ChurnModel {
    /// Parameters shaped like published Bitcoin peer measurements: median
    /// session of ~30 simulated minutes, heavy tail, rejoin after ~10
    /// minutes on average.
    ///
    /// At experiment timescales (a few simulated minutes per propagation
    /// run) this yields the occasional mid-run departure the paper's
    /// simulator models, without collapsing the network.
    pub fn measured_like() -> Self {
        ChurnModel {
            median_session_ms: 30.0 * 60.0 * 1_000.0,
            session_sigma: 1.4,
            mean_offline_ms: 10.0 * 60.0 * 1_000.0,
        }
    }

    /// Disables churn entirely (all sessions infinite).
    pub fn disabled() -> Self {
        ChurnModel {
            median_session_ms: f64::INFINITY,
            session_sigma: 0.0,
            mean_offline_ms: f64::INFINITY,
        }
    }

    /// `true` when churn is switched off.
    pub fn is_disabled(&self) -> bool {
        !self.median_session_ms.is_finite()
    }

    /// Samples a session length in milliseconds.
    ///
    /// Returns `f64::INFINITY` when churn is disabled.
    pub fn sample_session_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.is_disabled() {
            return f64::INFINITY;
        }
        if self.session_sigma == 0.0 {
            return self.median_session_ms;
        }
        let z = sample_standard_normal(rng);
        self.median_session_ms * (self.session_sigma * z).exp()
    }

    /// Samples the offline gap before rejoin, in milliseconds.
    ///
    /// Returns `f64::INFINITY` when rejoin is disabled.
    pub fn sample_offline_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if !self.mean_offline_ms.is_finite() {
            return f64::INFINITY;
        }
        // Exponential via inverse CDF.
        let u: f64 = rng.gen::<f64>();
        -self.mean_offline_ms * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }
}

impl Default for ChurnModel {
    fn default() -> Self {
        Self::measured_like()
    }
}

impl Serialize for ChurnModel {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                "median_session_ms".to_string(),
                self.median_session_ms.to_value(),
            ),
            ("session_sigma".to_string(), self.session_sigma.to_value()),
            (
                "mean_offline_ms".to_string(),
                self.mean_offline_ms.to_value(),
            ),
        ])
    }
}

/// Reads a duration field where JSON `null` means "infinite / disabled".
fn duration_or_infinite(v: &serde::Value) -> Result<f64, serde::Error> {
    match v {
        serde::Value::Null => Ok(f64::INFINITY),
        other => f64::from_value(other),
    }
}

impl Deserialize for ChurnModel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for ChurnModel"))?;
        Ok(ChurnModel {
            median_session_ms: duration_or_infinite(serde::map_get(m, "median_session_ms"))?,
            session_sigma: f64::from_value(serde::map_get(m, "session_sigma"))?,
            mean_offline_ms: duration_or_infinite(serde::map_get(m, "mean_offline_ms"))?,
        })
    }
}

/// Poisson arrival process for *new* nodes joining the network over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProcess {
    /// Mean inter-arrival gap in milliseconds. `f64::INFINITY` disables
    /// arrivals.
    pub mean_interarrival_ms: f64,
}

impl ArrivalProcess {
    /// No arrivals.
    pub fn disabled() -> Self {
        ArrivalProcess {
            mean_interarrival_ms: f64::INFINITY,
        }
    }

    /// Arrivals every `mean_ms` on average.
    pub fn with_mean_ms(mean_ms: f64) -> Self {
        assert!(mean_ms > 0.0, "mean inter-arrival must be positive");
        ArrivalProcess {
            mean_interarrival_ms: mean_ms,
        }
    }

    /// `true` when arrivals are off.
    pub fn is_disabled(&self) -> bool {
        !self.mean_interarrival_ms.is_finite()
    }

    /// Samples the gap to the next arrival (ms), or infinity when disabled.
    pub fn sample_gap_ms<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.is_disabled() {
            return f64::INFINITY;
        }
        let u: f64 = rng.gen::<f64>();
        -self.mean_interarrival_ms * (1.0 - u).max(f64::MIN_POSITIVE).ln()
    }
}

impl Default for ArrivalProcess {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    #[test]
    fn disabled_model_returns_infinity() {
        let m = ChurnModel::disabled();
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        assert!(m.is_disabled());
        assert_eq!(m.sample_session_ms(&mut rng), f64::INFINITY);
        assert_eq!(m.sample_offline_ms(&mut rng), f64::INFINITY);
    }

    #[test]
    fn session_median_roughly_matches() {
        let m = ChurnModel::measured_like();
        let mut rng = ChaCha12Rng::seed_from_u64(2);
        let mut samples: Vec<f64> = (0..20_001).map(|_| m.sample_session_ms(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let expect = m.median_session_ms;
        assert!(
            (median / expect - 1.0).abs() < 0.1,
            "median {median} vs {expect}"
        );
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let m = ChurnModel {
            session_sigma: 0.0,
            ..ChurnModel::measured_like()
        };
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        assert_eq!(m.sample_session_ms(&mut rng), m.median_session_ms);
    }

    #[test]
    fn offline_gap_mean_roughly_matches() {
        let m = ChurnModel::measured_like();
        let mut rng = ChaCha12Rng::seed_from_u64(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| m.sample_offline_ms(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean / m.mean_offline_ms - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn sessions_are_positive() {
        let m = ChurnModel::measured_like();
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(m.sample_session_ms(&mut rng) > 0.0);
        }
    }

    #[test]
    fn arrival_process_mean_roughly_matches() {
        let a = ArrivalProcess::with_mean_ms(500.0);
        let mut rng = ChaCha12Rng::seed_from_u64(6);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| a.sample_gap_ms(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean / 500.0 - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn disabled_arrivals() {
        let a = ArrivalProcess::disabled();
        assert!(a.is_disabled());
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        assert_eq!(a.sample_gap_ms(&mut rng), f64::INFINITY);
        assert_eq!(ArrivalProcess::default(), ArrivalProcess::disabled());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn arrival_validates_mean() {
        ArrivalProcess::with_mean_ms(0.0);
    }

    #[test]
    fn churn_value_round_trips_including_disabled() {
        for model in [ChurnModel::measured_like(), ChurnModel::disabled()] {
            let back = ChurnModel::from_value(&model.to_value()).unwrap();
            assert_eq!(back, model);
        }
    }

    #[test]
    fn null_durations_mean_disabled() {
        // JSON renders infinities as null; parsing must take them back to
        // infinity, and a human can write null for "off" directly.
        let v = serde::Value::Map(vec![
            ("median_session_ms".to_string(), serde::Value::Null),
            ("session_sigma".to_string(), serde::Value::F64(0.0)),
            ("mean_offline_ms".to_string(), serde::Value::Null),
        ]);
        let model = ChurnModel::from_value(&v).unwrap();
        assert_eq!(model, ChurnModel::disabled());
        assert!(model.is_disabled());
    }
}
