//! The discrete-event engine.
//!
//! [`Engine`] owns the clock and the pending-event queue. Simulation
//! components schedule payloads of a user-chosen event type `E`; the run loop
//! pops them in deterministic `(time, scheduling-order)` order and hands them
//! to a handler which may schedule further events.

use crate::queue::{EventId, EventQueue, Firing};
use crate::time::{SimDuration, SimTime};
use core::fmt;

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The event queue drained completely.
    QueueEmpty,
    /// The configured horizon was reached; later events remain queued.
    HorizonReached,
    /// The configured event-count budget was exhausted.
    BudgetExhausted,
    /// The handler requested a stop via [`Control::Stop`].
    HandlerStopped,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::QueueEmpty => "event queue empty",
            StopReason::HorizonReached => "time horizon reached",
            StopReason::BudgetExhausted => "event budget exhausted",
            StopReason::HandlerStopped => "stopped by handler",
        };
        f.write_str(s)
    }
}

/// Handler verdict after processing one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep running.
    #[default]
    Continue,
    /// Stop the run loop after this event.
    Stop,
}

/// A deterministic discrete-event simulation engine.
///
/// # Examples
///
/// Counting ping-pong events until the queue drains:
///
/// ```
/// use bcbpt_sim::{Control, Engine, SimDuration, StopReason};
///
/// #[derive(Debug)]
/// enum Ev { Ping(u32) }
///
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_millis(1), Ev::Ping(0));
/// let mut seen = 0;
/// let reason = engine.run(|engine, ev| {
///     let Ev::Ping(n) = ev;
///     seen += 1;
///     if n < 9 {
///         engine.schedule_in(SimDuration::from_millis(1), Ev::Ping(n + 1));
///     }
///     Control::Continue
/// });
/// assert_eq!(reason, StopReason::QueueEmpty);
/// assert_eq!(seen, 10);
/// ```
#[derive(Debug, Clone)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    /// Cancellations that hit a live event (tombstones created).
    cancelled: u64,
    /// Largest live queue length seen since the last metrics flush.
    queue_hw: usize,
    /// `processed` / `cancelled` values already published to the metrics
    /// registry; cloned with the engine so warmed-snapshot replays report
    /// only the events they drain themselves.
    obs_processed: u64,
    obs_cancelled: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            cancelled: 0,
            queue_hw: 0,
            obs_processed: 0,
            obs_cancelled: 0,
        }
    }

    /// Creates an engine with queue capacity pre-allocated for `capacity`
    /// pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        Engine {
            queue: EventQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            processed: 0,
            cancelled: 0,
            queue_hw: 0,
            obs_processed: 0,
            obs_cancelled: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of live pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total number of events ever scheduled.
    #[inline]
    pub fn scheduled_total(&self) -> u64 {
        self.queue.scheduled_total()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to *now*: the event fires at the
    /// current instant, after events already queued for it. This makes
    /// zero-latency messages safe without letting the clock run backwards.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        let id = self.queue.schedule(at, payload);
        self.queue_hw = self.queue_hw.max(self.queue.len());
        id
    }

    /// Schedules `payload` after delay `d`.
    pub fn schedule_in(&mut self, d: SimDuration, payload: E) -> EventId {
        let id = self.queue.schedule(self.now + d, payload);
        self.queue_hw = self.queue_hw.max(self.queue.len());
        id
    }

    /// Cancels a pending event. Returns `false` if it already fired or was
    /// already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let hit = self.queue.cancel(id);
        if hit {
            self.cancelled += 1;
        }
        hit
    }

    /// Pops the next event, advancing the clock to its firing time.
    ///
    /// Prefer [`run`](Engine::run)/[`run_until`](Engine::run_until); this is
    /// the single-step primitive they are built from.
    pub fn step(&mut self) -> Option<Firing<E>> {
        let firing = self.queue.pop()?;
        debug_assert!(firing.time >= self.now, "time must be monotone");
        self.now = firing.time;
        self.processed += 1;
        Some(firing)
    }

    /// Firing time of the next live event, without advancing.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs until the queue drains or the handler stops the loop.
    pub fn run<F>(&mut self, handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E) -> Control,
    {
        self.run_inner(SimTime::MAX, u64::MAX, handler)
    }

    /// Runs until `horizon` (exclusive), the queue drains, or the handler
    /// stops the loop. Events at exactly `horizon` or later stay queued, and
    /// the clock is left at `min(horizon, last fired event time)`.
    pub fn run_until<F>(&mut self, horizon: SimTime, handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E) -> Control,
    {
        self.run_inner(horizon, u64::MAX, handler)
    }

    /// Runs at most `budget` further events (or to drain/horizon).
    pub fn run_with_budget<F>(&mut self, horizon: SimTime, budget: u64, handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E) -> Control,
    {
        self.run_inner(horizon, budget, handler)
    }

    fn run_inner<F>(&mut self, horizon: SimTime, budget: u64, handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E) -> Control,
    {
        let reason = self.run_loop(horizon, budget, handler);
        self.flush_obs();
        reason
    }

    fn run_loop<F>(&mut self, horizon: SimTime, budget: u64, mut handler: F) -> StopReason
    where
        F: FnMut(&mut Engine<E>, E) -> Control,
    {
        let mut remaining = budget;
        loop {
            if remaining == 0 {
                return StopReason::BudgetExhausted;
            }
            match self.queue.peek_time() {
                None => return StopReason::QueueEmpty,
                Some(t) if t >= horizon => {
                    // Leave the event queued; park the clock at the horizon.
                    self.now = self.now.max(horizon);
                    return StopReason::HorizonReached;
                }
                Some(_) => {}
            }
            let firing = self.queue.pop().expect("peek said non-empty");
            self.now = firing.time;
            self.processed += 1;
            remaining -= 1;
            if handler(self, firing.payload) == Control::Stop {
                return StopReason::HandlerStopped;
            }
        }
    }

    /// Drops all pending events (the clock and counters are kept).
    pub fn clear_pending(&mut self) {
        self.queue.clear();
    }

    /// Publishes locally accumulated counts (events drained, cancellations,
    /// queue high-water) to the `bcbpt-obs` global registry.
    ///
    /// The run loops call this on exit; external steppers that drive the
    /// engine through [`step`](Engine::step) (like `bcbpt-net`'s warmup
    /// loop) should call it once after their loop finishes. Idempotent:
    /// each count is published exactly once, and flush markers clone with
    /// the engine so warmed-snapshot replays report only their own events.
    /// Publishing is a wall-clock side channel — it never feeds back into
    /// simulation state.
    pub fn flush_obs(&mut self) {
        let drained = self.processed - self.obs_processed;
        if drained > 0 {
            crate::obs::events_drained().add(drained);
            self.obs_processed = self.processed;
        }
        let cancelled = self.cancelled - self.obs_cancelled;
        if cancelled > 0 {
            crate::obs::cancellations().add(cancelled);
            self.obs_cancelled = self.cancelled;
        }
        if self.queue_hw > 0 {
            crate::obs::queue_depth_highwater().record_max(self.queue_hw as i64);
            self.queue_hw = self.queue.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn clock_advances_to_event_times() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(5), Ev::Tick(1));
        e.schedule_at(SimTime::from_millis(9), Ev::Tick(2));
        let mut times = Vec::new();
        e.run(|engine, _| {
            times.push(engine.now());
            Control::Continue
        });
        assert_eq!(
            times,
            vec![SimTime::from_millis(5), SimTime::from_millis(9)]
        );
        assert_eq!(e.processed(), 2);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(10), Ev::Tick(0));
        let mut fired_at = None;
        e.run(|engine, ev| {
            match ev {
                Ev::Tick(0) => {
                    engine.schedule_in(SimDuration::from_millis(5), Ev::Tick(1));
                }
                Ev::Tick(_) => fired_at = Some(engine.now()),
            }
            Control::Continue
        });
        assert_eq!(fired_at, Some(SimTime::from_millis(15)));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(10), Ev::Tick(0));
        let mut second = None;
        e.run(|engine, ev| {
            if ev == Ev::Tick(0) {
                engine.schedule_at(SimTime::from_millis(1), Ev::Tick(1));
            } else {
                second = Some(engine.now());
            }
            Control::Continue
        });
        assert_eq!(second, Some(SimTime::from_millis(10)), "clamped to now");
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(1), Ev::Tick(1));
        e.schedule_at(SimTime::from_millis(100), Ev::Tick(2));
        let reason = e.run_until(SimTime::from_millis(50), |_, _| Control::Continue);
        assert_eq!(reason, StopReason::HorizonReached);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.now(), SimTime::from_millis(50), "clock parks at horizon");
    }

    #[test]
    fn event_at_horizon_does_not_fire() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(50), Ev::Tick(1));
        let mut count = 0;
        e.run_until(SimTime::from_millis(50), |_, _| {
            count += 1;
            Control::Continue
        });
        assert_eq!(count, 0, "horizon is exclusive");
    }

    #[test]
    fn handler_can_stop_the_loop() {
        let mut e = Engine::new();
        for i in 0..10 {
            e.schedule_at(SimTime::from_millis(i), Ev::Tick(i as u32));
        }
        let mut count = 0;
        let reason = e.run(|_, _| {
            count += 1;
            if count == 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(reason, StopReason::HandlerStopped);
        assert_eq!(count, 3);
        assert_eq!(e.pending(), 7);
    }

    #[test]
    fn budget_limits_event_count() {
        let mut e = Engine::new();
        for i in 0..10 {
            e.schedule_at(SimTime::from_millis(i), Ev::Tick(i as u32));
        }
        let reason = e.run_with_budget(SimTime::MAX, 4, |_, _| Control::Continue);
        assert_eq!(reason, StopReason::BudgetExhausted);
        assert_eq!(e.processed(), 4);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut e = Engine::new();
        let id = e.schedule_at(SimTime::from_millis(1), Ev::Tick(1));
        e.schedule_at(SimTime::from_millis(2), Ev::Tick(2));
        assert!(e.cancel(id));
        let mut seen = Vec::new();
        e.run(|_, ev| {
            seen.push(ev);
            Control::Continue
        });
        assert_eq!(seen, vec![Ev::Tick(2)]);
    }

    #[test]
    fn empty_engine_reports_queue_empty() {
        let mut e: Engine<Ev> = Engine::new();
        assert_eq!(e.run(|_, _| Control::Continue), StopReason::QueueEmpty);
        assert_eq!(e.now(), SimTime::ZERO);
    }

    #[test]
    fn step_pops_single_event() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(3), Ev::Tick(7));
        let firing = e.step().unwrap();
        assert_eq!(firing.payload, Ev::Tick(7));
        assert_eq!(e.now(), SimTime::from_millis(3));
        assert!(e.step().is_none());
    }

    #[test]
    fn stop_reason_display_nonempty() {
        for r in [
            StopReason::QueueEmpty,
            StopReason::HorizonReached,
            StopReason::BudgetExhausted,
            StopReason::HandlerStopped,
        ] {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn clear_pending_drains_queue() {
        let mut e = Engine::new();
        e.schedule_at(SimTime::from_millis(1), Ev::Tick(1));
        e.clear_pending();
        assert_eq!(e.pending(), 0);
    }
}
