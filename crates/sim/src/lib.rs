//! # bcbpt-sim — deterministic discrete-event simulation engine
//!
//! The simulation substrate for the BCBPT reproduction (ICDCS 2017,
//! *Proximity Awareness Approach to Enhance Propagation Delay on the Bitcoin
//! Peer-to-Peer Network*). The paper evaluates its clustering protocol on the
//! authors' event-based Bitcoin simulator; this crate rebuilds that
//! foundation from scratch:
//!
//! * [`SimTime`]/[`SimDuration`] — integer-microsecond simulated time.
//! * [`EventQueue`] — pending events with deterministic tie-breaking and
//!   O(1) cancellation.
//! * [`Engine`] — the run loop: pops events in `(time, order)` order and
//!   hands them to a handler that may schedule more.
//! * [`RngHub`] — named deterministic random streams forked from one master
//!   seed, so campaigns are reproducible and protocol A/B comparisons are
//!   paired.
//! * [`TraceSink`] and friends — optional event tracing.
//! * [`obs`] — engine counters (events drained, queue high-water,
//!   cancellations) published through the `bcbpt-obs` metrics registry, so
//!   release builds are observable without installing a custom sink.
//!
//! # Examples
//!
//! A two-node ping-pong over a 40 ms link:
//!
//! ```
//! use bcbpt_sim::{Control, Engine, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Deliver { to: usize, hops: u32 } }
//!
//! let link = SimDuration::from_millis(40);
//! let mut engine = Engine::new();
//! engine.schedule_in(link, Ev::Deliver { to: 1, hops: 0 });
//! let mut last_arrival = bcbpt_sim::SimTime::ZERO;
//! engine.run(|engine, Ev::Deliver { to, hops }| {
//!     last_arrival = engine.now();
//!     if hops < 3 {
//!         engine.schedule_in(link, Ev::Deliver { to: 1 - to, hops: hops + 1 });
//!     }
//!     Control::Continue
//! });
//! assert_eq!(last_arrival, SimTime::from_millis(160));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod obs;
mod queue;
mod rng;
mod time;
mod trace;

pub use engine::{Control, Engine, StopReason};
pub use queue::{EventId, EventQueue, Firing};
pub use rng::RngHub;
pub use time::{SimDuration, SimTime};
pub use trace::{CountingTrace, FilterTrace, NullTrace, TraceSink, VecTrace};
