//! Simulated-time primitives.
//!
//! The engine measures time in integer **microseconds** so that event
//! ordering is exact and runs are bit-for-bit reproducible; floating point
//! is only used at the edges (latency models, statistics).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An absolute instant on the simulation clock, in microseconds since the
/// start of the run.
///
/// `SimTime` is a transparent newtype over `u64` ([C-NEWTYPE]) so that wall
/// times cannot be confused with durations or with model-level latencies in
/// milliseconds.
///
/// # Examples
///
/// ```
/// use bcbpt_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_micros(), 3_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use bcbpt_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_millis_f64(), 2.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since the origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the origin, as a float (lossless for < 2^53 µs).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since the origin, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] when `earlier` is later than `self`
    /// rather than panicking, mirroring `Instant::saturating_duration_since`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a span from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a span from fractional milliseconds, rounding to the nearest
    /// microsecond and saturating at zero for negative inputs.
    ///
    /// This is the bridge from the floating-point latency models to engine
    /// time.
    ///
    /// # Examples
    ///
    /// ```
    /// use bcbpt_sim::SimDuration;
    ///
    /// assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    /// assert_eq!(SimDuration::from_millis_f64(-4.0), SimDuration::ZERO);
    /// ```
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((ms * 1_000.0).round() as u64)
    }

    /// Creates a span from fractional seconds (see [`from_millis_f64`]).
    ///
    /// [`from_millis_f64`]: SimDuration::from_millis_f64
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        Self::from_millis_f64(s * 1_000.0)
    }

    /// Raw microseconds in the span.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in the span, as a float.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds in the span, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// `true` when the span is empty.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition of two spans.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span between two instants; saturates at zero when `rhs` is later.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        self.saturating_add(rhs)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics when `rhs == 0`.
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

impl From<u64> for SimDuration {
    /// Interprets the raw value as microseconds.
    fn from(us: u64) -> Self {
        SimDuration(us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors_round_trip() {
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_micros(1_500).as_millis_f64(), 1.5);
        assert_eq!(SimTime::from_micros(1_500_000).as_secs_f64(), 1.5);
    }

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(15);
        assert_eq!(t, SimTime::from_millis(25));
    }

    #[test]
    fn time_difference_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(late - early, SimDuration::from_millis(8));
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_millis(8)));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(4);
        assert_eq!(d * 3, SimDuration::from_millis(12));
        assert_eq!(d / 2, SimDuration::from_millis(2));
        assert_eq!(d + d, SimDuration::from_millis(8));
        assert_eq!(d - SimDuration::from_millis(1), SimDuration::from_millis(3));
        assert_eq!(
            SimDuration::from_millis(1) - d,
            SimDuration::ZERO,
            "subtraction saturates"
        );
    }

    #[test]
    fn float_conversion_rounds_and_saturates() {
        assert_eq!(SimDuration::from_millis_f64(0.0004).as_micros(), 0);
        assert_eq!(SimDuration::from_millis_f64(0.0006).as_micros(), 1);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis_f64(f64::INFINITY),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn display_is_human_readable_and_nonempty() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500s");
        assert!(!format!("{:?}", SimTime::ZERO).is_empty());
    }

    #[test]
    fn saturating_mul_handles_overflow() {
        assert_eq!(SimDuration::MAX.saturating_mul(2), SimDuration::MAX);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn ordering_matches_timeline() {
        let mut v = vec![
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_micros(10),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(10),
                SimTime::from_millis(3)
            ]
        );
    }
}
