//! Event tracing.
//!
//! Experiments mostly consume aggregate statistics, but debugging a protocol
//! requires seeing the event stream. A [`TraceSink`] receives `(time, event)`
//! pairs; the engine-agnostic sinks here cover the common cases: discard,
//! count, and record.
//!
//! # Relation to the metrics registry
//!
//! Release paths never install a sink (the network fabric defaults to
//! [`NullTrace`]), so sinks are a *debugging* facility: they see individual
//! events and their payloads. For production counting the engine publishes
//! aggregates straight to the `bcbpt-obs` registry — see [`crate::obs`] and
//! [`Engine::flush_obs`](crate::Engine::flush_obs); `events_drained` is
//! observable there without wiring a [`CountingTrace`] through the fabric.
//! Use a sink when you need per-event detail (payload inspection, filtered
//! recording); use the registry when you need totals.

use crate::time::SimTime;

/// Receives a copy of every traced event.
///
/// Implementors decide what to retain. The simulation fabric in `bcbpt-net`
/// calls [`record`](TraceSink::record) once per delivered message when
/// tracing is enabled.
pub trait TraceSink<E> {
    /// Observes one event at its firing time.
    fn record(&mut self, time: SimTime, event: &E);
}

/// Discards everything. The zero-cost default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTrace;

impl<E> TraceSink<E> for NullTrace {
    #[inline]
    fn record(&mut self, _time: SimTime, _event: &E) {}
}

/// Counts events without retaining them.
///
/// # Examples
///
/// ```
/// use bcbpt_sim::{CountingTrace, SimTime, TraceSink};
///
/// let mut trace = CountingTrace::default();
/// trace.record(SimTime::ZERO, &"hello");
/// trace.record(SimTime::from_millis(1), &"world");
/// assert_eq!(trace.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingTrace {
    count: u64,
}

impl CountingTrace {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events observed.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl<E> TraceSink<E> for CountingTrace {
    #[inline]
    fn record(&mut self, _time: SimTime, _event: &E) {
        self.count += 1;
    }
}

/// Records every `(time, event)` pair, cloning the events.
///
/// Only suitable for small runs; prefer [`CountingTrace`] or a bespoke sink
/// for full-scale experiments.
#[derive(Debug, Clone, Default)]
pub struct VecTrace<E> {
    entries: Vec<(SimTime, E)>,
}

impl<E> VecTrace<E> {
    /// Creates an empty recording.
    pub fn new() -> Self {
        VecTrace {
            entries: Vec::new(),
        }
    }

    /// The recorded `(time, event)` pairs in firing order.
    pub fn entries(&self) -> &[(SimTime, E)] {
        &self.entries
    }

    /// Consumes the trace, returning the recording.
    pub fn into_entries(self) -> Vec<(SimTime, E)> {
        self.entries
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<E: Clone> TraceSink<E> for VecTrace<E> {
    fn record(&mut self, time: SimTime, event: &E) {
        self.entries.push((time, event.clone()));
    }
}

/// Filters events through a predicate before forwarding to an inner sink.
///
/// # Examples
///
/// ```
/// use bcbpt_sim::{CountingTrace, FilterTrace, SimTime, TraceSink};
///
/// let mut trace = FilterTrace::new(CountingTrace::new(), |n: &u32| *n % 2 == 0);
/// for n in 0..10u32 {
///     trace.record(SimTime::ZERO, &n);
/// }
/// assert_eq!(trace.inner().count(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct FilterTrace<S, F> {
    inner: S,
    predicate: F,
}

impl<S, F> FilterTrace<S, F> {
    /// Wraps `inner`, forwarding only events for which `predicate` is true.
    pub fn new(inner: S, predicate: F) -> Self {
        FilterTrace { inner, predicate }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the filter, returning the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<E, S, F> TraceSink<E> for FilterTrace<S, F>
where
    S: TraceSink<E>,
    F: FnMut(&E) -> bool,
{
    fn record(&mut self, time: SimTime, event: &E) {
        if (self.predicate)(event) {
            self.inner.record(time, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_trace_discards() {
        let mut t = NullTrace;
        TraceSink::record(&mut t, SimTime::ZERO, &1u8);
        // Nothing to assert beyond "it compiles and runs".
    }

    #[test]
    fn counting_trace_counts() {
        let mut t = CountingTrace::new();
        for i in 0..17u32 {
            t.record(SimTime::from_micros(u64::from(i)), &i);
        }
        assert_eq!(t.count(), 17);
    }

    #[test]
    fn vec_trace_records_in_order() {
        let mut t = VecTrace::new();
        t.record(SimTime::from_millis(1), &"a");
        t.record(SimTime::from_millis(2), &"b");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.entries()[0], (SimTime::from_millis(1), "a"));
        let owned = t.into_entries();
        assert_eq!(owned[1].1, "b");
    }

    #[test]
    fn vec_trace_default_is_empty() {
        let t: VecTrace<u8> = VecTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn filter_trace_forwards_matching_only() {
        let mut t = FilterTrace::new(VecTrace::new(), |s: &&str| s.starts_with('a'));
        t.record(SimTime::ZERO, &"apple");
        t.record(SimTime::ZERO, &"banana");
        t.record(SimTime::ZERO, &"avocado");
        assert_eq!(t.inner().len(), 2);
        assert_eq!(t.into_inner().len(), 2);
    }
}
