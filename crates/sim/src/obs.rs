//! Engine metrics, published through the `bcbpt-obs` global registry.
//!
//! The engine never touches an atomic per event: it counts locally (the
//! `processed` counter it already keeps, plus queue high-water and
//! cancellation tallies) and [`Engine::flush_obs`](crate::Engine::flush_obs)
//! publishes the deltas — once per run loop, or wherever an external
//! stepper (like `bcbpt-net`'s warmup loop) chooses to call it. This keeps
//! `events_drained` observable without installing a custom
//! [`TraceSink`](crate::TraceSink), which previously was the only way to
//! count events in release paths.

use bcbpt_obs::{Counter, Gauge};
use std::sync::{Arc, OnceLock};

/// Total events popped and handed to handlers, across all engines.
pub(crate) fn events_drained() -> &'static Arc<Counter> {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().counter(
            "bcbpt_sim_events_drained_total",
            "Events popped from the queue and dispatched to handlers",
        )
    })
}

/// Total cancellations that found a live event (tombstones created).
pub(crate) fn cancellations() -> &'static Arc<Counter> {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().counter(
            "bcbpt_sim_cancellations_total",
            "Pending events cancelled into tombstones before firing",
        )
    })
}

/// High-water mark of live pending events, across all engines.
pub(crate) fn queue_depth_highwater() -> &'static Arc<Gauge> {
    static H: OnceLock<Arc<Gauge>> = OnceLock::new();
    H.get_or_init(|| {
        bcbpt_obs::global().gauge(
            "bcbpt_sim_queue_depth_highwater",
            "Largest live pending-event count observed by any engine",
        )
    })
}

/// Touches every `bcbpt-sim` metric so it appears in expositions and
/// snapshots even before the first event fires.
pub fn register_metrics() {
    let _ = events_drained();
    let _ = cancellations();
    let _ = queue_depth_highwater();
}
