//! The pending-event queue.
//!
//! A thin wrapper over a binary heap that guarantees **deterministic
//! ordering**: events fire in `(time, sequence-number)` order, so two events
//! scheduled for the same instant fire in the order they were scheduled,
//! independent of heap internals.

use crate::time::SimTime;
use core::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a scheduled event, usable to cancel it later.
///
/// Ids are unique within one [`EventQueue`] (and therefore within one
/// engine run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Raw sequence number backing this id.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// An event popped from the queue: when it fires, its id, and its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing<E> {
    /// Instant at which the event fires.
    pub time: SimTime,
    /// The id under which the event was scheduled.
    pub id: EventId,
    /// The scheduled payload.
    pub payload: E,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

/// Dense bitset indexed by event sequence number.
///
/// Sequence numbers are allocated contiguously from zero, so per-event
/// state is two bits in flat `u64` blocks instead of a `HashSet` probe on
/// the pop path — the event queue is the innermost loop of every
/// experiment, and hashing each popped seq dominated its profile.
#[derive(Debug, Clone, Default)]
struct SeqBitSet {
    blocks: Vec<u64>,
}

impl SeqBitSet {
    #[inline]
    fn set(&mut self, seq: u64) {
        let block = (seq >> 6) as usize;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        self.blocks[block] |= 1u64 << (seq & 63);
    }

    #[inline]
    fn clear(&mut self, seq: u64) {
        if let Some(block) = self.blocks.get_mut((seq >> 6) as usize) {
            *block &= !(1u64 << (seq & 63));
        }
    }

    #[inline]
    fn get(&self, seq: u64) -> bool {
        self.blocks
            .get((seq >> 6) as usize)
            .is_some_and(|block| block & (1u64 << (seq & 63)) != 0)
    }

    fn clear_all(&mut self) {
        self.blocks.clear();
    }
}

// Manual impls: order by (time, seq) only, ignoring the payload, and invert
// so that `BinaryHeap` (a max-heap) pops the *earliest* event first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic pending-event queue.
///
/// # Examples
///
/// ```
/// use bcbpt_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Bit per seq: scheduled and not yet fired or cancelled.
    pending: SeqBitSet,
    /// Bit per seq: cancelled but still occupying a heap slot (the slot is
    /// a tombstone, dropped lazily on pop/peek).
    cancelled: SeqBitSet,
    /// Number of live (pending) events.
    live: usize,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: SeqBitSet::default(),
            cancelled: SeqBitSet::default(),
            live: 0,
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            pending: SeqBitSet::default(),
            cancelled: SeqBitSet::default(),
            live: 0,
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at `time` and returns its cancellation id.
    ///
    /// Events scheduled for the same instant fire in scheduling order.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.pending.set(seq);
        self.live += 1;
        EventId(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` when the event was still pending, `false` when it has
    /// already fired, was already cancelled, or was never scheduled here.
    /// Cancellation flips two bits; the heap slot becomes a tombstone
    /// dropped lazily on pop.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.get(id.0) {
            self.pending.clear(id.0);
            self.cancelled.set(id.0);
            self.live -= 1;
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping tombstones.
    pub fn pop(&mut self) -> Option<Firing<E>> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.get(entry.seq) {
                self.cancelled.clear(entry.seq);
                continue;
            }
            self.pending.clear(entry.seq);
            self.live -= 1;
            return Some(Firing {
                time: entry.time,
                id: EventId(entry.seq),
                payload: entry.payload,
            });
        }
        None
    }

    /// The firing instant of the earliest live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drain tombstones from the front so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.get(entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.clear(seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// Number of live pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` when no live events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear_all();
        self.cancelled.clear_all();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|f| f.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_pending_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        let b = q.schedule(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(!q.cancel(a), "double cancel reports false");
        assert!(!q.cancel(b), "cancelling a fired event reports false");
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn len_accounts_for_cancellations() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), ());
        q.schedule(t(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), ());
        q.schedule(t(2), ());
        q.clear();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled_total(), 2, "history survives clear");
    }

    #[test]
    fn firing_reports_time_and_id() {
        let mut q = EventQueue::new();
        let id = q.schedule(t(7), 'x');
        let firing = q.pop().unwrap();
        assert_eq!(firing.time, t(7));
        assert_eq!(firing.id, id);
        assert_eq!(firing.payload, 'x');
    }
}
