//! Deterministic randomness.
//!
//! Every stochastic component of the simulation draws from its own named
//! stream forked from a single master seed. Two runs with the same master
//! seed — and the same sequence of fork labels — are bit-for-bit identical,
//! while changing any single component's label leaves the other streams
//! untouched. This is what makes the experiment campaigns in `bcbpt-core`
//! reproducible and the A/B protocol comparisons paired (same topology, same
//! churn, different relay policy).

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A factory of independent, deterministic random streams.
///
/// # Examples
///
/// ```
/// use bcbpt_sim::RngHub;
/// use rand::RngCore;
///
/// let hub = RngHub::new(42);
/// let mut a1 = hub.stream("latency");
/// let mut a2 = RngHub::new(42).stream("latency");
/// assert_eq!(a1.next_u64(), a2.next_u64()); // same seed + label => same stream
///
/// let mut b = hub.stream("churn");
/// let _ = b.next_u64(); // independent stream, does not perturb "latency"
/// ```
#[derive(Debug, Clone)]
pub struct RngHub {
    master_seed: u64,
}

impl RngHub {
    /// Creates a hub from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngHub { master_seed }
    }

    /// The master seed this hub was built from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Forks a named deterministic stream.
    ///
    /// The stream seed is a hash of the master seed and the label, so
    /// distinct labels yield (with overwhelming probability) independent
    /// streams.
    pub fn stream(&self, label: &str) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(mix(self.master_seed, label, 0))
    }

    /// Forks a named, numbered stream — convenient for per-node streams.
    ///
    /// # Examples
    ///
    /// ```
    /// use bcbpt_sim::RngHub;
    ///
    /// let hub = RngHub::new(7);
    /// let _node_3 = hub.stream_for("node", 3);
    /// ```
    pub fn stream_for(&self, label: &str, index: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(mix(self.master_seed, label, index.wrapping_add(1)))
    }

    /// Derives a sub-hub, e.g. one per experiment run, so that run `k` of a
    /// campaign is reproducible in isolation.
    pub fn subhub(&self, label: &str, index: u64) -> RngHub {
        RngHub {
            master_seed: mix(self.master_seed, label, index.wrapping_add(1)),
        }
    }

    /// Draws a fresh `u64` from a throwaway stream with the given label.
    pub fn draw_u64(&self, label: &str) -> u64 {
        self.stream(label).next_u64()
    }
}

/// SplitMix64-style mixing of seed, label hash, and index.
fn mix(seed: u64, label: &str, index: u64) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &b in label.as_bytes() {
        h = splitmix(h ^ u64::from(b));
    }
    splitmix(h ^ index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_label_same_stream() {
        let mut a = RngHub::new(1).stream("x");
        let mut b = RngHub::new(1).stream("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let hub = RngHub::new(1);
        let a = hub.stream("x").next_u64();
        let b = hub.stream("y").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RngHub::new(1).stream("x").next_u64();
        let b = RngHub::new(2).stream("x").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_distinct_and_stable() {
        let hub = RngHub::new(9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            assert!(seen.insert(hub.stream_for("node", i).next_u64()));
        }
        assert_eq!(
            hub.stream_for("node", 5).next_u64(),
            RngHub::new(9).stream_for("node", 5).next_u64()
        );
    }

    #[test]
    fn stream_for_differs_from_plain_stream() {
        let hub = RngHub::new(3);
        assert_ne!(
            hub.stream("node").next_u64(),
            hub.stream_for("node", 0).next_u64()
        );
    }

    #[test]
    fn subhub_is_deterministic_and_independent() {
        let hub = RngHub::new(11);
        let s1 = hub.subhub("run", 0).stream("latency").next_u64();
        let s2 = RngHub::new(11)
            .subhub("run", 0)
            .stream("latency")
            .next_u64();
        assert_eq!(s1, s2);
        let s3 = hub.subhub("run", 1).stream("latency").next_u64();
        assert_ne!(s1, s3);
    }

    #[test]
    fn streams_produce_reasonable_uniform_values() {
        let mut rng = RngHub::new(123).stream("uniform");
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            sum += rng.gen::<f64>();
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} not near 0.5");
    }
}
