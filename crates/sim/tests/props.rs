//! Property-based tests for the event engine invariants.

use bcbpt_sim::{Control, Engine, EventQueue, RngHub, SimDuration, SimTime};
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    /// Events always pop in non-decreasing time order, whatever the insert order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(f) = q.pop() {
            prop_assert!(f.time >= last, "time went backwards");
            last = f.time;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Equal-time events preserve scheduling order (FIFO within an instant).
    #[test]
    fn queue_is_fifo_within_instant(
        times in proptest::collection::vec(0u64..50, 1..300)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(f) = q.pop() {
            if let Some((lt, li)) = last {
                if lt == f.time {
                    prop_assert!(li < f.payload, "FIFO violated within an instant");
                }
            }
            last = Some((f.time, f.payload));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100)
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            let cancel = cancel_mask.get(i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(q.cancel(*id));
            } else {
                expect.push(i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some(f) = q.pop() {
            got.push(f.payload);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// The engine clock is monotone for any workload of relative reschedules.
    #[test]
    fn engine_clock_is_monotone(delays in proptest::collection::vec(0u64..5_000, 1..150)) {
        let mut e = Engine::new();
        e.schedule_at(SimTime::ZERO, 0usize);
        let mut last = SimTime::ZERO;
        let mut idx = 0usize;
        let delays2 = delays.clone();
        e.run(|engine, _| {
            assert!(engine.now() >= last);
            last = engine.now();
            if idx < delays2.len() {
                engine.schedule_in(SimDuration::from_micros(delays2[idx]), idx + 1);
                idx += 1;
            }
            Control::Continue
        });
        prop_assert_eq!(idx, delays.len());
    }

    /// Two engines fed the same seed produce identical event streams.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>()) {
        fn run(seed: u64) -> Vec<(u64, u64)> {
            let hub = RngHub::new(seed);
            let mut rng = hub.stream("load");
            let mut e = Engine::new();
            for _ in 0..50 {
                let t = rng.next_u64() % 1_000_000;
                let v = rng.next_u64();
                e.schedule_at(SimTime::from_micros(t), v);
            }
            let mut out = Vec::new();
            e.run(|engine, v| {
                out.push((engine.now().as_micros(), v));
                Control::Continue
            });
            out
        }
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Horizon-bounded runs never process an event at or past the horizon.
    #[test]
    fn horizon_is_respected(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        horizon in 1u64..1_000
    ) {
        let mut e = Engine::new();
        for &t in &times {
            e.schedule_at(SimTime::from_micros(t), t);
        }
        let horizon_t = SimTime::from_micros(horizon);
        e.run_until(horizon_t, |engine, _| {
            assert!(engine.now() < horizon_t);
            Control::Continue
        });
        let expected = times.iter().filter(|&&t| t < horizon).count() as u64;
        prop_assert_eq!(e.processed(), expected);
    }

    /// Duration arithmetic round-trips through milliseconds within 0.5 µs.
    #[test]
    fn duration_float_round_trip(ms in 0.0f64..1.0e9) {
        let d = SimDuration::from_millis_f64(ms);
        let back = d.as_millis_f64();
        prop_assert!((back - ms).abs() <= 0.000_5 + ms * 1e-12);
    }
}
