//! Property-based tests for the event engine invariants.

use bcbpt_sim::{Control, Engine, EventQueue, RngHub, SimDuration, SimTime};
use proptest::prelude::*;
use rand::RngCore;

proptest! {
    /// Events always pop in non-decreasing time order, whatever the insert order.
    #[test]
    fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some(f) = q.pop() {
            prop_assert!(f.time >= last, "time went backwards");
            last = f.time;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    /// Equal-time events preserve scheduling order (FIFO within an instant).
    #[test]
    fn queue_is_fifo_within_instant(
        times in proptest::collection::vec(0u64..50, 1..300)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(f) = q.pop() {
            if let Some((lt, li)) = last {
                if lt == f.time {
                    prop_assert!(li < f.payload, "FIFO violated within an instant");
                }
            }
            last = Some((f.time, f.payload));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..10_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100)
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_micros(t), i))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            let cancel = cancel_mask.get(i).copied().unwrap_or(false);
            if cancel {
                prop_assert!(q.cancel(*id));
            } else {
                expect.push(i);
            }
        }
        let mut got: Vec<usize> = Vec::new();
        while let Some(f) = q.pop() {
            got.push(f.payload);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// The engine clock is monotone for any workload of relative reschedules.
    #[test]
    fn engine_clock_is_monotone(delays in proptest::collection::vec(0u64..5_000, 1..150)) {
        let mut e = Engine::new();
        e.schedule_at(SimTime::ZERO, 0usize);
        let mut last = SimTime::ZERO;
        let mut idx = 0usize;
        let delays2 = delays.clone();
        e.run(|engine, _| {
            assert!(engine.now() >= last);
            last = engine.now();
            if idx < delays2.len() {
                engine.schedule_in(SimDuration::from_micros(delays2[idx]), idx + 1);
                idx += 1;
            }
            Control::Continue
        });
        prop_assert_eq!(idx, delays.len());
    }

    /// Two engines fed the same seed produce identical event streams.
    #[test]
    fn runs_are_deterministic(seed in any::<u64>()) {
        fn run(seed: u64) -> Vec<(u64, u64)> {
            let hub = RngHub::new(seed);
            let mut rng = hub.stream("load");
            let mut e = Engine::new();
            for _ in 0..50 {
                let t = rng.next_u64() % 1_000_000;
                let v = rng.next_u64();
                e.schedule_at(SimTime::from_micros(t), v);
            }
            let mut out = Vec::new();
            e.run(|engine, v| {
                out.push((engine.now().as_micros(), v));
                Control::Continue
            });
            out
        }
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Horizon-bounded runs never process an event at or past the horizon.
    #[test]
    fn horizon_is_respected(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        horizon in 1u64..1_000
    ) {
        let mut e = Engine::new();
        for &t in &times {
            e.schedule_at(SimTime::from_micros(t), t);
        }
        let horizon_t = SimTime::from_micros(horizon);
        e.run_until(horizon_t, |engine, _| {
            assert!(engine.now() < horizon_t);
            Control::Continue
        });
        let expected = times.iter().filter(|&&t| t < horizon).count() as u64;
        prop_assert_eq!(e.processed(), expected);
    }

    /// Duration arithmetic round-trips through milliseconds within 0.5 µs.
    #[test]
    fn duration_float_round_trip(ms in 0.0f64..1.0e9) {
        let d = SimDuration::from_millis_f64(ms);
        let back = d.as_millis_f64();
        prop_assert!((back - ms).abs() <= 0.000_5 + ms * 1e-12);
    }
}

proptest! {
    /// Tombstone semantics under arbitrary interleavings of schedule,
    /// cancel and pop: cancel-after-pop and double-cancel always report
    /// `false`, and the live count tracks exactly the outstanding events.
    #[test]
    fn cancel_tombstone_semantics(
        ops in proptest::collection::vec((0u8..4, 0u64..1_000), 1..300)
    ) {
        let mut q = EventQueue::new();
        // (id, finished) — finished means popped or cancelled already.
        let mut ids: Vec<(bcbpt_sim::EventId, bool)> = Vec::new();
        let mut live = 0usize;
        for (op, t) in ops {
            match op {
                0 | 1 => {
                    let id = q.schedule(SimTime::from_micros(t), t);
                    ids.push((id, false));
                    live += 1;
                }
                2 => {
                    if !ids.is_empty() {
                        let k = (t as usize) % ids.len();
                        let (id, finished) = ids[k];
                        let expect_cancel = !finished;
                        prop_assert_eq!(q.cancel(id), expect_cancel,
                            "cancel of {:?} (finished: {})", id, finished);
                        if expect_cancel {
                            ids[k].1 = true;
                            live -= 1;
                        }
                        prop_assert!(!q.cancel(id), "double cancel must be false");
                    }
                }
                _ => {
                    if let Some(firing) = q.pop() {
                        live -= 1;
                        for entry in ids.iter_mut() {
                            if entry.0 == firing.id {
                                prop_assert!(!entry.1, "popped an already-finished event");
                                entry.1 = true;
                            }
                        }
                        prop_assert!(!q.cancel(firing.id), "cancel-after-pop must be false");
                    } else {
                        prop_assert_eq!(live, 0, "empty pop with live events outstanding");
                    }
                }
            }
            prop_assert_eq!(q.len(), live);
            prop_assert_eq!(q.is_empty(), live == 0);
        }
        // Drain: every remaining live event pops exactly once, in time order.
        let mut popped = 0usize;
        let mut last = SimTime::ZERO;
        while let Some(firing) = q.pop() {
            prop_assert!(firing.time >= last);
            last = firing.time;
            popped += 1;
        }
        prop_assert_eq!(popped, live);
    }

    /// Cancelling everything leaves an empty queue whose tombstoned heap
    /// slots never resurface through pop or peek.
    #[test]
    fn cancel_all_yields_empty_queue(times in proptest::collection::vec(0u64..10_000, 1..120)) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .map(|&t| q.schedule(SimTime::from_micros(t), t))
            .collect();
        for id in &ids {
            prop_assert!(q.cancel(*id));
        }
        prop_assert_eq!(q.len(), 0);
        prop_assert_eq!(q.peek_time(), None);
        prop_assert!(q.pop().is_none());
        prop_assert_eq!(q.scheduled_total(), times.len() as u64);
    }
}
