//! Experiment campaigns: the paper's measuring-node methodology, repeated.
//!
//! §V.B: the simulation starts at the measured size of the real network,
//! clusters form during a warmup phase, then "normal Bitcoin simulator
//! events" launch and the measuring node records `Δt(m,n)` per connection;
//! "the latency is determined by an average of approximately 1000 runs".
//! [`ExperimentConfig::run`] reproduces that loop.

use crate::resilience::RunFailure;
use bcbpt_cluster::{ProtocolRegistry, ProtocolSpec};
use bcbpt_net::{Adversary, MessageStats, NetConfig, Network, NodeId, TxWatch};
use bcbpt_sim::RngHub;
use bcbpt_stats::{
    bootstrap_ci, BuildEcdfError, ConfidenceInterval, Ecdf, StreamingSummary, Summary,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One measuring run's harvest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Campaign-local run index.
    pub run_index: usize,
    /// The measuring node `m` of this run.
    pub origin: u32,
    /// `Δt(m,i)` per announcing peer, ms (Eq. 5).
    pub deltas_ms: Vec<f64>,
    /// Network-wide first-arrival delays, ms.
    pub arrival_delays_ms: Vec<f64>,
    /// Nodes reached (excluding the origin).
    pub reached: usize,
    /// Online population at injection time.
    pub online: usize,
}

/// The result of a whole campaign (many runs, one protocol).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The protocol label (e.g. `"bcbpt(dt=25ms)"`).
    pub protocol: String,
    /// Per-run results.
    pub runs: Vec<RunResult>,
    /// Total traffic over the campaign (warmup + measurement).
    pub traffic: MessageStats,
    /// Traffic of the warmup/cluster-formation phase alone.
    pub warmup_traffic: MessageStats,
    /// Cluster sizes at the end of the campaign (empty for non-clustering
    /// protocols), descending.
    pub cluster_sizes: Vec<usize>,
    /// Network size the campaign ran at.
    pub num_nodes: usize,
    /// Runs that panicked instead of retiring, ascending by `run_index` —
    /// caught per run ([`std::panic::catch_unwind`]) and folded in order,
    /// so a poisoned replay is data, not a dead campaign. Disjoint from
    /// `runs` (a run either retires or fails).
    pub failures: Vec<RunFailure>,
}

impl CampaignResult {
    /// The `Δt(m,n)` samples of all runs, borrowed — no per-sample clone.
    pub fn deltas_ms(&self) -> impl Iterator<Item = f64> + '_ {
        self.runs.iter().flat_map(|r| r.deltas_ms.iter().copied())
    }

    /// The network-wide arrival delays of all runs, borrowed.
    pub fn arrivals_ms(&self) -> impl Iterator<Item = f64> + '_ {
        self.runs
            .iter()
            .flat_map(|r| r.arrival_delays_ms.iter().copied())
    }

    /// All `Δt(m,n)` samples pooled across runs into one vector (use
    /// [`deltas_ms`](Self::deltas_ms) unless a slice is required).
    pub fn all_deltas_ms(&self) -> Vec<f64> {
        self.deltas_ms().collect()
    }

    /// All network-wide arrival delays pooled across runs into one vector
    /// (use [`arrivals_ms`](Self::arrivals_ms) unless a slice is required).
    pub fn all_arrivals_ms(&self) -> Vec<f64> {
        self.arrivals_ms().collect()
    }

    /// Streaming summary of the pooled deltas.
    pub fn delta_summary(&self) -> Summary {
        self.deltas_ms().collect()
    }

    /// Per-run mean `Δt(m,n)` accumulator: one observation per run that
    /// harvested at least one finite delta. Runs are the paper's
    /// independent replicates ("an average of approximately 1000 runs",
    /// §V.B) — samples *within* a run share one measuring origin and are
    /// correlated, so run-level statistics are what confidence-driven
    /// stop rules and honest uncertainty estimates consult.
    pub fn run_mean_summary(&self) -> StreamingSummary {
        let mut summary = StreamingSummary::new();
        for run in &self.runs {
            if let Some(mean) = run_mean_delta(run) {
                summary.record(mean);
            }
        }
        summary
    }

    /// Normal-approximation confidence interval on the per-run mean
    /// delta — the statistic `StopRule::CiHalfWidth` watches. `None` with
    /// fewer than two measuring runs.
    pub fn run_mean_ci(&self, level: f64) -> Option<ConfidenceInterval> {
        self.run_mean_summary().mean_ci(level)
    }

    /// ECDF of the pooled deltas.
    ///
    /// # Errors
    ///
    /// Returns [`BuildEcdfError::Empty`] if no run produced any delta.
    pub fn delta_ecdf(&self) -> Result<Ecdf, BuildEcdfError> {
        Ecdf::from_samples(self.deltas_ms())
    }

    /// ECDF of the pooled network-wide arrival delays.
    ///
    /// # Errors
    ///
    /// Returns [`BuildEcdfError::Empty`] if no run recorded arrivals.
    pub fn arrival_ecdf(&self) -> Result<Ecdf, BuildEcdfError> {
        Ecdf::from_samples(self.arrivals_ms())
    }

    /// Bootstrap confidence interval on the mean of the pooled deltas
    /// (percentile method, deterministic in the campaign seed surrogate 0).
    pub fn delta_mean_ci(&self, level: f64) -> Option<ConfidenceInterval> {
        let deltas = self.all_deltas_ms();
        bootstrap_ci(
            &deltas,
            |xs| xs.iter().sum::<f64>() / xs.len() as f64,
            600,
            level,
            0xC1,
        )
        .ok()
    }

    /// Bootstrap confidence interval on the sample variance of the pooled
    /// deltas — the statistic the paper's Fig. 3/Fig. 4 compare.
    pub fn delta_variance_ci(&self, level: f64) -> Option<ConfidenceInterval> {
        let deltas = self.all_deltas_ms();
        bootstrap_ci(
            &deltas,
            |xs| {
                if xs.len() < 2 {
                    return 0.0;
                }
                let m = xs.iter().sum::<f64>() / xs.len() as f64;
                xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
            },
            600,
            level,
            0xC2,
        )
        .ok()
    }

    /// Mean fraction of the online population reached per run.
    pub fn mean_coverage(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| {
                if r.online <= 1 {
                    0.0
                } else {
                    r.reached as f64 / (r.online - 1) as f64
                }
            })
            .sum::<f64>()
            / self.runs.len() as f64
    }
}

/// What one measuring-run replay retired as.
enum RunOutcome {
    /// The run completed, with its harvest and measurement-window traffic.
    Measured(RunResult, MessageStats),
    /// The run was skipped because its origin churned away (the paper
    /// likewise averages over successful measurements, §V.B).
    Skipped,
    /// The run panicked; the payload was caught at the run boundary.
    Panicked(RunFailure),
}

/// Mean of a run's finite `Δt(m,n)` samples (`None` when the run
/// harvested no finite delta) — the per-run replicate statistic. The one
/// definition shared by the streaming fold and
/// [`CampaignResult::run_mean_summary`], so the stop rule's checkpoints
/// and post-hoc CIs can never diverge.
pub(crate) fn run_mean_delta(run: &RunResult) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0u64;
    for &d in &run.deltas_ms {
        if d.is_finite() {
            sum += d;
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

/// One deterministic checkpoint of a streaming campaign: run `run_index`
/// has just folded (in run-index order, under the fold lock), and these
/// are the statistics accumulated over the folded prefix.
pub(crate) struct RunCheckpoint<'a> {
    /// The folded run's campaign-local index.
    pub run_index: usize,
    /// The folded run's harvest (`None` = the run was skipped because its
    /// origin churned away, or panicked — see `failure`).
    pub result: Option<&'a RunResult>,
    /// The folded run's failure, when it panicked instead of retiring.
    pub failure: Option<&'a RunFailure>,
    /// Cumulative traffic over the folded prefix (warmup plus the folded
    /// runs' measurement windows) — what a checkpoint writer persists.
    pub traffic: &'a MessageStats,
    /// Pooled `Δt(m,n)` accumulator over the folded prefix.
    pub deltas: &'a StreamingSummary,
    /// Per-run mean `Δt(m,n)` accumulator over the folded prefix: one
    /// observation per successful run that harvested deltas. Runs are the
    /// paper's independent replicates ("an average of approximately 1000
    /// runs", §V.B) — samples *within* a run share one measuring origin
    /// and are correlated, so confidence-driven stop rules consult this,
    /// not `deltas`.
    pub run_means: &'a StreamingSummary,
    /// Successful measuring runs folded so far (including this one).
    pub measured_runs: usize,
}

/// In-order fold hook for streaming sessions: called once per run index
/// (ascending, regardless of worker scheduling) with the checkpoint
/// statistics. Returning `true` stops the campaign after this run — runs
/// with a higher index are discarded even if already computed, so the
/// decision (and the campaign output) depends only on the folded prefix
/// and is byte-identical across thread counts.
pub(crate) type RunControl<'a> = dyn FnMut(&RunCheckpoint<'_>) -> bool + Send + 'a;

/// Fold state of a streaming campaign: runs complete in any order on the
/// worker pool, park in `pending`, and fold strictly in run-index order.
struct CampaignFold<'c, 'f> {
    /// Next run index to fold.
    next: usize,
    /// Last run index included in the campaign (`usize::MAX` = no early
    /// stop decided yet).
    stop_at: usize,
    /// Out-of-order completions waiting for their turn.
    pending: BTreeMap<usize, RunOutcome>,
    /// Folded successful runs, in index order.
    runs: Vec<RunResult>,
    /// Warmup traffic plus the folded runs' window traffic.
    traffic: MessageStats,
    /// Pooled `Δt(m,n)` accumulator over the folded runs.
    deltas: StreamingSummary,
    /// Per-run mean `Δt(m,n)` accumulator (one observation per successful
    /// run with deltas).
    run_means: StreamingSummary,
    /// Folded run failures (panicking runs), in index order.
    failures: Vec<RunFailure>,
    /// Successful measuring runs folded.
    measured: usize,
    /// Optional stop/observe hook, evaluated at every fold.
    control: Option<&'c mut RunControl<'f>>,
}

impl CampaignFold<'_, '_> {
    /// Parks `outcome` and folds every consecutively-ready run, evaluating
    /// the control hook at each checkpoint. `stop_signal` mirrors
    /// `stop_at` for lock-free worker checks.
    fn absorb(&mut self, index: usize, outcome: RunOutcome, stop_signal: &AtomicUsize) {
        if index > self.stop_at {
            return;
        }
        let _fold_span = bcbpt_obs::span("fold");
        self.pending.insert(index, outcome);
        // Wall-clock side channel: how far ahead of the fold frontier the
        // workers ran (ROADMAP's fold-contention question). Never read back.
        crate::obs::fold_park_depth().record_max(self.pending.len() as i64);
        while self.next <= self.stop_at {
            let Some(outcome) = self.pending.remove(&self.next) else {
                break;
            };
            let run_index = self.next;
            self.next += 1;
            let (result, failure) = match outcome {
                RunOutcome::Measured(result, window_traffic) => {
                    self.traffic.merge(&window_traffic);
                    self.deltas.extend(result.deltas_ms.iter().copied());
                    if let Some(mean) = run_mean_delta(&result) {
                        self.run_means.record(mean);
                    }
                    self.measured += 1;
                    self.runs.push(result);
                    (self.runs.last(), None)
                }
                RunOutcome::Skipped => (None, None),
                RunOutcome::Panicked(failure) => {
                    self.failures.push(failure);
                    (None, self.failures.last())
                }
            };
            if let Some(control) = self.control.as_mut() {
                let checkpoint = RunCheckpoint {
                    run_index,
                    result,
                    failure,
                    traffic: &self.traffic,
                    deltas: &self.deltas,
                    run_means: &self.run_means,
                    measured_runs: self.measured,
                };
                if control(&checkpoint) {
                    self.stop_at = run_index;
                    stop_signal.store(run_index, Ordering::Relaxed);
                    self.pending.clear();
                }
            }
        }
    }
}

/// Configuration of one campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Network configuration.
    pub net: NetConfig,
    /// The protocol under test, named as data (e.g. `"bcbpt(dt=25ms)"`).
    /// Resolved against a [`ProtocolRegistry`] when the campaign runs, so
    /// custom registered policies work anywhere a built-in does.
    pub protocol: ProtocolSpec,
    /// Optional block-relay strategy, named as data (e.g. `"compact"`,
    /// `"rlnc(chunks=16)"`). Resolved against [`bcbpt_relay::registry`]
    /// when the campaign runs; `None` keeps the legacy full-body path
    /// with bandwidth-waste accounting off — byte-identical to builds
    /// that predate the relay seam.
    pub relay: Option<bcbpt_net::RelaySpec>,
    /// Cluster-formation warmup before measurements start, ms.
    pub warmup_ms: f64,
    /// Measurement window per run, ms (the tx must flood the network).
    pub window_ms: f64,
    /// Number of measuring runs (paper: ≈1000).
    pub runs: usize,
    /// Master seed; everything (placement, routes, churn, noise) derives
    /// from it.
    pub seed: u64,
}

impl ExperimentConfig {
    /// A CI-scale configuration: small network, few runs. Finishes in
    /// seconds even in debug builds.
    pub fn quick(protocol: impl Into<ProtocolSpec>) -> Self {
        let mut net = NetConfig::test_scale();
        net.num_nodes = 150;
        ExperimentConfig {
            net,
            protocol: protocol.into(),
            relay: None,
            warmup_ms: 3_000.0,
            window_ms: 20_000.0,
            runs: 10,
            seed: 0xBCB9,
        }
    }

    /// The paper's experiment scale: 5000 nodes, ~1000 runs (§V.B). Run in
    /// release mode only.
    pub fn paper(protocol: impl Into<ProtocolSpec>) -> Self {
        ExperimentConfig {
            net: NetConfig::paper_scale(),
            protocol: protocol.into(),
            relay: None,
            warmup_ms: 30_000.0,
            window_ms: 60_000.0,
            runs: 1000,
            seed: 0xBCB9,
        }
    }

    /// Returns a copy with a different protocol but identical environment —
    /// the paired-comparison knob for Fig. 3/Fig. 4.
    #[must_use]
    pub fn with_protocol(&self, protocol: impl Into<ProtocolSpec>) -> Self {
        ExperimentConfig {
            protocol: protocol.into(),
            ..self.clone()
        }
    }

    /// Returns a copy with a different block-relay strategy but identical
    /// environment — the paired-comparison knob for the relay sweeps.
    #[must_use]
    pub fn with_relay(&self, relay: impl Into<bcbpt_net::RelaySpec>) -> Self {
        ExperimentConfig {
            relay: Some(relay.into()),
            ..self.clone()
        }
    }

    /// Runs the campaign with one worker thread per available core.
    ///
    /// Builds the network once and lets clusters form during warmup. Each
    /// of the `runs` measuring-node injections then executes on its own
    /// clone of that warmed-up snapshot, with every random stream re-derived
    /// from `(seed, run_index)` — runs are mutually independent, so the
    /// pool can execute them in any order while the merged output stays
    /// byte-identical to [`run_serial`](Self::run_serial). Runs whose origin
    /// churned away are skipped (the paper likewise averages over successful
    /// measurements, §V.B: "errors such as loss of connection ... are
    /// expected").
    ///
    /// Per-run results merge in run-index order; traffic counters aggregate
    /// associatively (warmup traffic + the sum of each run's window
    /// traffic).
    ///
    /// # Errors
    ///
    /// Propagates network-construction errors (invalid configuration) and
    /// protocol-resolution errors (unknown protocol spec).
    pub fn run(&self) -> Result<CampaignResult, String> {
        self.run_in(&ProtocolRegistry::builtins())
    }

    /// Runs the campaign strictly on the calling thread. Reference
    /// implementation for the determinism contract: `run()` must produce
    /// byte-identical output.
    ///
    /// # Errors
    ///
    /// Propagates network-construction errors (invalid configuration).
    pub fn run_serial(&self) -> Result<CampaignResult, String> {
        self.run_with_threads(1)
    }

    /// Runs the campaign on exactly `threads` worker threads (`0` is
    /// treated as 1). The thread count is an execution detail of the host,
    /// not part of the experiment description — output is byte-identical
    /// for every value.
    ///
    /// # Errors
    ///
    /// Propagates network-construction errors (invalid configuration).
    pub fn run_with_threads(&self, threads: usize) -> Result<CampaignResult, String> {
        self.run_in_with_threads(&ProtocolRegistry::builtins(), threads)
    }

    /// Runs the campaign with the protocol resolved against `registry`
    /// instead of the built-in set — the entry point for custom registered
    /// policies. Uses one worker thread per available core.
    ///
    /// # Errors
    ///
    /// Propagates protocol-resolution and network-construction errors.
    pub fn run_in(&self, registry: &ProtocolRegistry) -> Result<CampaignResult, String> {
        self.run_in_with_threads(
            registry,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
        )
    }

    /// [`run_in`](Self::run_in) with an explicit worker-thread count.
    ///
    /// # Errors
    ///
    /// Propagates protocol-resolution and network-construction errors.
    pub fn run_in_with_threads(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
    ) -> Result<CampaignResult, String> {
        self.run_campaign(registry, threads, None, None, None, None)
    }

    /// [`run_campaign`](Self::run_campaign) over the whole `0..runs` range.
    pub(crate) fn run_campaign(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
        adversary: Option<Box<dyn Adversary>>,
        warm: Option<&crate::warm::WarmCache>,
        inspect_warm: Option<&mut dyn FnMut(&Network)>,
        control: Option<&mut RunControl<'_>>,
    ) -> Result<CampaignResult, String> {
        self.run_campaign_range(
            registry,
            threads,
            adversary,
            warm,
            inspect_warm,
            control,
            0..self.runs,
        )
    }

    /// The full campaign loop, with the hooks the adversarial experiments
    /// and streaming sessions need: an optional behavioural [`Adversary`]
    /// installed *before* warmup (so attackers can game topology
    /// formation), an optional inspection of the warmed-up snapshot (for
    /// infiltration metrics) before the measuring runs fan out, and an
    /// optional [`RunControl`] hook evaluated at every run-index-ordered
    /// fold checkpoint (for live observation and adaptive stopping).
    ///
    /// An adversary controlling zero nodes leaves the output byte-identical
    /// to a plain run — the determinism contract `adversary::tests` pins.
    ///
    /// `run_range` restricts execution to a contiguous slice of the
    /// campaign's run indices — the shard primitive. Per-run RNG streams
    /// derive from `(seed, run_index)` (never from what ran before), so
    /// executing `lo..hi` in one process yields exactly the runs a full
    /// campaign would have produced at those indices; [`crate::shard`]
    /// merges such slices back into a whole campaign.
    ///
    /// `warm` optionally memoizes the built-and-warmed base network under
    /// its warm-recipe digest (see [`crate::warm`]): warmup is
    /// deterministic and runs execute on clones of the snapshot, so a
    /// cache hit is byte-identical to rebuilding. Campaigns with an
    /// adversary bypass the cache — the adversary shapes warmup.
    // Internal plumbing for the session/shard/adversary runners; the
    // hooks are orthogonal and each public wrapper passes most as None.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_campaign_range(
        &self,
        registry: &ProtocolRegistry,
        threads: usize,
        adversary: Option<Box<dyn Adversary>>,
        warm: Option<&crate::warm::WarmCache>,
        inspect_warm: Option<&mut dyn FnMut(&Network)>,
        control: Option<&mut RunControl<'_>>,
        run_range: std::ops::Range<usize>,
    ) -> Result<CampaignResult, String> {
        let build = |adversary: Option<Box<dyn Adversary>>| -> Result<Network, String> {
            let _span = bcbpt_obs::span("warmup");
            let _timer = crate::obs::warmup_seconds().start_timer();
            let policy = registry.build(&self.protocol)?;
            let mut base = Network::build(self.net.clone(), policy, self.seed)?;
            if let Some(spec) = &self.relay {
                base.install_relay(bcbpt_relay::registry().build(spec)?);
            }
            if let Some(adversary) = adversary {
                base.set_adversary(adversary);
            }
            base.warmup_ms(self.warmup_ms);
            Ok(base)
        };
        let base = match (warm, adversary) {
            (Some(cache), None) => cache.warm_or_build(self, || build(None))?,
            (_, adversary) => build(adversary)?,
        };
        if let Some(inspect) = inspect_warm {
            inspect(&base);
        }
        let warmup_traffic = base.stats().clone();

        // Runs complete in any scheduling order but *fold* strictly in
        // run-index order: every statistic (and every stop decision the
        // control hook makes) depends only on the folded prefix, so the
        // output is byte-identical for every thread count.
        let stop_signal = AtomicUsize::new(usize::MAX);
        let fold = Mutex::new(CampaignFold {
            next: run_range.start,
            stop_at: usize::MAX,
            pending: BTreeMap::new(),
            runs: Vec::with_capacity(run_range.len()),
            traffic: warmup_traffic.clone(),
            deltas: StreamingSummary::new(),
            run_means: StreamingSummary::new(),
            failures: Vec::new(),
            measured: 0,
            control,
        });
        let measure_span = bcbpt_obs::span("measure");
        let measure_timer = std::time::Instant::now();
        if threads <= 1 || run_range.len() <= 1 {
            for i in run_range.clone() {
                if i > stop_signal.load(Ordering::Relaxed) {
                    break;
                }
                let outcome = self.execute_run(&base, &warmup_traffic, i);
                fold.lock()
                    .expect("fold lock")
                    .absorb(i, outcome, &stop_signal);
            }
        } else {
            // Work-stealing by atomic counter: each worker claims the next
            // unstarted run index, simulates it, and parks the outcome in
            // the fold, which drains consecutively-ready runs.
            let next = AtomicUsize::new(run_range.start);
            let base_ref = &base;
            let warmup_ref = &warmup_traffic;
            let fold_ref = &fold;
            let stop_ref = &stop_signal;
            std::thread::scope(|scope| {
                for _ in 0..threads.min(run_range.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= run_range.end || i > stop_ref.load(Ordering::Relaxed) {
                            break;
                        }
                        let outcome = self.execute_run(base_ref, warmup_ref, i);
                        fold_ref
                            .lock()
                            .expect("fold lock")
                            .absorb(i, outcome, stop_ref);
                    });
                }
            });
        }
        crate::obs::measure_seconds().observe(measure_timer.elapsed());
        drop(measure_span);
        let fold = fold.into_inner().expect("fold lock");

        // Observability side channel only — counters never feed back into
        // the fold or the serialized result.
        crate::obs::net_bytes_total().add(fold.traffic.total_bytes());
        crate::obs::net_redundant_bytes_total().add(fold.traffic.total_redundant_bytes());

        let cluster_sizes = cluster_sizes(&base);
        Ok(CampaignResult {
            protocol: self.protocol.to_string(),
            runs: fold.runs,
            traffic: fold.traffic,
            warmup_traffic,
            cluster_sizes,
            num_nodes: self.net.num_nodes,
            failures: fold.failures,
        })
    }

    /// Executes one run behind a panic boundary: a panicking replay (a
    /// simulator bug, or an injected fault) retires as
    /// [`RunOutcome::Panicked`] instead of unwinding through the worker —
    /// the fold mutex is never poisoned and the campaign completes with
    /// the failure recorded as data. `base` is only read (runs clone it),
    /// so unwinding cannot leave it torn and `AssertUnwindSafe` is sound.
    fn execute_run(
        &self,
        base: &Network,
        warmup_traffic: &MessageStats,
        run_index: usize,
    ) -> RunOutcome {
        let _span = bcbpt_obs::span("run");
        let _timer = crate::obs::run_seconds().start_timer();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            #[cfg(feature = "fault-injection")]
            crate::resilience::fault::maybe_panic(run_index);
            self.measure_one(base, warmup_traffic, run_index)
        }));
        match caught {
            Ok(Some((result, traffic))) => RunOutcome::Measured(result, traffic),
            Ok(None) => RunOutcome::Skipped,
            Err(payload) => RunOutcome::Panicked(RunFailure::from_panic(run_index, payload)),
        }
    }

    /// One measuring run: clone the warmed-up snapshot, re-derive its RNG
    /// streams from `(campaign seed, run_index)`, inject, simulate the
    /// window, and harvest the watch plus the window's traffic delta.
    fn measure_one(
        &self,
        base: &Network,
        warmup_traffic: &MessageStats,
        run_index: usize,
    ) -> Option<(RunResult, MessageStats)> {
        let mut net = base.clone();
        net.reseed_streams(&RngHub::new(self.seed).subhub("run", run_index as u64));
        let origin = pick_origin(&mut net)?;
        net.inject_watched_tx(origin, None).ok()?;
        net.run_for_ms(self.window_ms);
        let watch: TxWatch = net.take_watch().expect("watch was just armed");
        let result = RunResult {
            run_index,
            origin: origin.as_u32(),
            deltas_ms: watch.deltas_ms(),
            arrival_delays_ms: watch.arrival_delays_ms(),
            reached: watch.reached_count(),
            online: net.online_count(),
        };
        Some((result, net.stats().since(warmup_traffic)))
    }
}

/// Picks a measuring node: online with at least one connection, and honest
/// (the paper's measuring node is the experimenter's own client, never an
/// attacker).
fn pick_origin(net: &mut Network) -> Option<NodeId> {
    for _ in 0..32 {
        let candidate = net.pick_online_node()?;
        if net.links().degree(candidate) > 0 && !net.is_attacker(candidate) {
            return Some(candidate);
        }
    }
    None
}

/// Cluster sizes reported by the policy, descending (empty when the policy
/// does not cluster).
pub fn cluster_sizes(net: &Network) -> Vec<usize> {
    let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
    for i in 0..net.num_nodes() as u32 {
        if let Some(c) = net.cluster_of(NodeId::from_index(i)) {
            *counts.entry(c).or_insert(0) += 1;
        }
    }
    let mut sizes: Vec<usize> = counts.into_values().collect();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_cluster::Protocol;

    fn tiny(protocol: Protocol) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(protocol);
        cfg.net.num_nodes = 60;
        cfg.warmup_ms = 1_000.0;
        cfg.window_ms = 15_000.0;
        cfg.runs = 3;
        cfg
    }

    #[test]
    fn bitcoin_campaign_produces_deltas() {
        let result = tiny(Protocol::Bitcoin).run().unwrap();
        assert_eq!(result.protocol, "bitcoin");
        assert!(!result.runs.is_empty());
        let deltas = result.all_deltas_ms();
        assert!(!deltas.is_empty());
        assert!(deltas.iter().all(|&d| d > 0.0));
        assert!(result.cluster_sizes.is_empty(), "bitcoin does not cluster");
        assert!(result.mean_coverage() > 0.9, "tx should flood the network");
    }

    #[test]
    fn bcbpt_campaign_clusters_and_measures() {
        let result = tiny(Protocol::bcbpt_paper()).run().unwrap();
        assert!(!result.cluster_sizes.is_empty());
        assert_eq!(result.cluster_sizes.iter().sum::<usize>(), 60);
        assert!(result.delta_ecdf().is_ok());
        assert!(
            result.traffic.probe_messages() > result.warmup_traffic.probe_messages() / 2,
            "probing happens during warmup"
        );
    }

    #[test]
    fn campaigns_are_deterministic() {
        let a = tiny(Protocol::Lbc).run().unwrap();
        let b = tiny(Protocol::Lbc).run().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_output_matches_serial() {
        // The determinism contract of the parallel runner: any thread
        // count, byte-identical campaign.
        for protocol in [Protocol::Bitcoin, Protocol::bcbpt_paper()] {
            let mut cfg = tiny(protocol);
            cfg.runs = 6;
            let serial = cfg.run_serial().unwrap();
            for threads in [2, 3, 8] {
                let parallel = cfg.run_with_threads(threads).unwrap();
                assert_eq!(parallel, serial, "{} threads diverged from serial", threads);
            }
        }
    }

    #[test]
    fn runs_are_independent_of_preceding_runs() {
        // Dropping the first runs must not change later runs' results:
        // per-run streams derive from (seed, run_index), not from what ran
        // before.
        let mut cfg = tiny(Protocol::Bitcoin);
        cfg.runs = 4;
        let four = cfg.run_serial().unwrap();
        cfg.runs = 2;
        let two = cfg.run_serial().unwrap();
        assert_eq!(&four.runs[..2], &two.runs[..]);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = tiny(Protocol::Bitcoin);
        let a = cfg.run().unwrap();
        cfg.seed += 1;
        let b = cfg.run().unwrap();
        assert_ne!(a.all_deltas_ms(), b.all_deltas_ms());
    }

    #[test]
    fn with_protocol_keeps_environment() {
        let base = tiny(Protocol::Bitcoin);
        let other = base.with_protocol(Protocol::Lbc);
        assert_eq!(base.seed, other.seed);
        assert_eq!(base.net, other.net);
        assert_eq!(other.protocol, ProtocolSpec::from(Protocol::Lbc));
    }

    #[test]
    fn custom_registered_policy_runs_a_campaign() {
        // The open end of the protocol API: a spec outside the built-in
        // set resolves through a caller-extended registry and produces a
        // normal campaign.
        let mut registry = ProtocolRegistry::builtins();
        registry.register("uniform", |_spec| {
            Ok(Box::new(bcbpt_net::RandomPolicy::new()))
        });
        let cfg = tiny(Protocol::Bitcoin).with_protocol("uniform");
        assert!(cfg.run().is_err(), "builtin registry rejects the spec");
        let result = cfg.run_in(&registry).unwrap();
        assert_eq!(result.protocol, "uniform");
        assert!(!result.runs.is_empty());
        // RandomPolicy is exactly what "bitcoin" resolves to, so the
        // campaign numbers must match the built-in run.
        let bitcoin = tiny(Protocol::Bitcoin).run().unwrap();
        assert_eq!(result.all_deltas_ms(), bitcoin.all_deltas_ms());
    }

    #[test]
    fn summary_and_ecdf_agree() {
        let result = tiny(Protocol::Bitcoin).run().unwrap();
        let summary = result.delta_summary();
        let ecdf = result.delta_ecdf().unwrap();
        assert_eq!(summary.count() as usize, ecdf.len());
        assert!((summary.mean() - ecdf.mean()).abs() < 1e-9);
    }

    #[test]
    fn confidence_intervals_bracket_estimates() {
        let result = tiny(Protocol::Bitcoin).run().unwrap();
        let mean_ci = result.delta_mean_ci(0.95).unwrap();
        assert!(mean_ci.contains(mean_ci.estimate));
        assert!((mean_ci.estimate - result.delta_summary().mean()).abs() < 1e-9);
        let var_ci = result.delta_variance_ci(0.95).unwrap();
        assert!(var_ci.contains(var_ci.estimate));
        assert!(var_ci.lo >= 0.0);
    }

    #[test]
    fn empty_campaign_behaves() {
        let mut cfg = tiny(Protocol::Bitcoin);
        cfg.runs = 0;
        let result = cfg.run().unwrap();
        assert!(result.runs.is_empty());
        assert_eq!(result.mean_coverage(), 0.0);
        assert!(result.delta_ecdf().is_err());
        assert!(result.delta_mean_ci(0.95).is_none());
    }
}
