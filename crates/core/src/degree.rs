//! Delay-variance versus connection count (paper §V.C, Fig. 3 discussion).
//!
//! "The Bitcoin protocol performs variances of delays ... that grow
//! linearly with the number of connected nodes, whereas BCBPT maintains
//! lower variances of delays regardless of the number of connected nodes."
//! This experiment reproduces that claim: it groups measuring runs by the
//! measuring node's degree and reports per-degree-bucket delay variance.

use crate::experiment::{CampaignResult, ExperimentConfig};
use bcbpt_cluster::ProtocolSpec;
use bcbpt_stats::{StatTable, Summary};
use serde::{Deserialize, Serialize};

/// Per-degree-bucket variance for one protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeVariance {
    /// Protocol label.
    pub protocol: String,
    /// `(bucket_lower_degree, samples, variance_ms2)` per bucket.
    pub buckets: Vec<(usize, usize, f64)>,
    /// Least-squares slope of variance against degree — the "grows
    /// linearly" coefficient.
    pub slope: f64,
}

/// Groups a campaign's runs by measuring-node degree (number of deltas in
/// the run, i.e. announcing peers) and computes per-bucket delay variance.
pub fn degree_variance(campaign: &CampaignResult, bucket_width: usize) -> DegreeVariance {
    assert!(bucket_width > 0, "bucket width must be positive");
    let mut by_bucket: std::collections::BTreeMap<usize, Summary> =
        std::collections::BTreeMap::new();
    for run in &campaign.runs {
        let degree = run.deltas_ms.len();
        let bucket = (degree / bucket_width) * bucket_width;
        let entry = by_bucket.entry(bucket).or_default();
        for &d in &run.deltas_ms {
            entry.record(d);
        }
    }
    let buckets: Vec<(usize, usize, f64)> = by_bucket
        .iter()
        .filter(|(_, s)| s.count() >= 2)
        .map(|(&b, s)| (b, s.count() as usize, s.sample_variance()))
        .collect();
    let slope = least_squares_slope(
        &buckets
            .iter()
            .map(|&(b, _, v)| (b as f64, v))
            .collect::<Vec<_>>(),
    );
    DegreeVariance {
        protocol: campaign.protocol.clone(),
        buckets,
        slope,
    }
}

/// Runs the degree-variance experiment across protocols.
///
/// Uses a wider spread of connection counts than the defaults by letting
/// outbound targets vary per campaign seed (the degree spread comes from
/// inbound connections, which vary naturally).
///
/// # Errors
///
/// Propagates campaign errors.
pub fn degree_variance_table<P: Clone + Into<ProtocolSpec>>(
    base: &ExperimentConfig,
    protocols: &[P],
    bucket_width: usize,
) -> Result<StatTable, String> {
    let mut table = StatTable::new(
        "Delay variance vs measuring-node connection count (slope of variance over degree)",
        &["slope", "buckets", "min_var", "max_var"],
    );
    for p in protocols {
        let campaign = base.with_protocol(p.clone()).run()?;
        let dv = degree_variance(&campaign, bucket_width);
        let min_var = dv
            .buckets
            .iter()
            .map(|&(_, _, v)| v)
            .fold(f64::INFINITY, f64::min);
        let max_var = dv
            .buckets
            .iter()
            .map(|&(_, _, v)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        table.push_row(
            dv.protocol,
            vec![
                dv.slope,
                dv.buckets.len() as f64,
                if min_var.is_finite() {
                    min_var
                } else {
                    f64::NAN
                },
                if max_var.is_finite() {
                    max_var
                } else {
                    f64::NAN
                },
            ],
        );
    }
    Ok(table)
}

fn least_squares_slope(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return 0.0;
    }
    (n * sxy - sx * sy) / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::RunResult;
    use bcbpt_net::MessageStats;

    fn campaign_with_runs(runs: Vec<RunResult>) -> CampaignResult {
        CampaignResult {
            protocol: "test".to_string(),
            runs,
            traffic: MessageStats::new(),
            warmup_traffic: MessageStats::new(),
            cluster_sizes: vec![],
            num_nodes: 10,
            failures: vec![],
        }
    }

    fn run(deltas: Vec<f64>) -> RunResult {
        RunResult {
            run_index: 0,
            origin: 0,
            deltas_ms: deltas,
            arrival_delays_ms: vec![],
            reached: 0,
            online: 10,
        }
    }

    #[test]
    fn slope_of_linear_points_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        assert!((least_squares_slope(&pts) - 3.0).abs() < 1e-9);
        assert_eq!(least_squares_slope(&[]), 0.0);
        assert_eq!(least_squares_slope(&[(1.0, 2.0)]), 0.0);
        assert_eq!(
            least_squares_slope(&[(2.0, 1.0), (2.0, 5.0)]),
            0.0,
            "vertical points have no slope"
        );
    }

    #[test]
    fn buckets_group_by_degree() {
        let campaign = campaign_with_runs(vec![
            run(vec![10.0, 12.0]),                   // degree 2 -> bucket 2
            run(vec![11.0, 13.0]),                   // degree 2
            run(vec![50.0, 60.0, 70.0, 80.0, 90.0]), // degree 5 -> bucket 4
        ]);
        let dv = degree_variance(&campaign, 2);
        assert_eq!(dv.buckets.len(), 2);
        assert_eq!(dv.buckets[0].0, 2);
        assert_eq!(dv.buckets[0].1, 4, "four deltas in the small bucket");
        assert_eq!(dv.buckets[1].0, 4);
        assert!(
            dv.buckets[1].2 > dv.buckets[0].2,
            "wider deltas, more variance"
        );
        assert!(dv.slope > 0.0);
    }

    #[test]
    fn empty_campaign_is_flat() {
        let dv = degree_variance(&campaign_with_runs(vec![]), 2);
        assert!(dv.buckets.is_empty());
        assert_eq!(dv.slope, 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn bucket_width_validated() {
        let _ = degree_variance(&campaign_with_runs(vec![]), 0);
    }
}
