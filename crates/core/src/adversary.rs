//! Adversarial campaigns: behavioural attackers run through the paper's
//! measuring-node methodology.
//!
//! The structural analyses in [`crate::attacks`] ask what a frozen topology
//! *exposes*; this module asks what an in-loop attacker *achieves*. A
//! [`bcbpt_adversary::AdversaryForce`] is installed before warmup — so
//! ping spoofers can game cluster formation — and a full campaign runs
//! against it. The [`AdversaryReport`] pairs that campaign with a clean
//! baseline of the same cell (same seed, no adversary) and answers the
//! paper's §V.C question quantitatively: how far does proximity forgery
//! infiltrate each protocol's neighbourhoods, and at what propagation
//! cost.

use crate::experiment::{CampaignResult, ExperimentConfig};
use bcbpt_adversary::{AdversaryForce, AdversaryStrategy};
use bcbpt_cluster::ProtocolRegistry;
use bcbpt_net::{Network, NodeId};
use serde::{Deserialize, Serialize};

/// Column headers of the adversarial summary table, shared with the
/// scenario renderer.
pub const ADVERSARY_COLUMNS: [&str; 9] = [
    "attackers",
    "bad_peer_share",
    "infiltration",
    "infil_gain",
    "clean_ms",
    "adv_ms",
    "slowdown",
    "withheld_ratio",
    "coverage",
];

/// The outcome of one adversarial cell: an attacked campaign next to its
/// clean baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdversaryReport {
    /// Protocol label.
    pub protocol: String,
    /// Strategy label (e.g. `"pingspoof(x0.05)"`).
    pub strategy: String,
    /// Number of attacker-controlled nodes.
    pub attackers: usize,
    /// Mean share of an honest node's connections held by attackers after
    /// warmup — the cross-protocol infiltration metric.
    pub attacker_peer_share: f64,
    /// [`attacker_peer_share`](Self::attacker_peer_share) of the clean
    /// baseline (the same nodes, not attacking): what that share would be
    /// by construction alone.
    pub clean_attacker_peer_share: f64,
    /// Fraction of honest clustered nodes sharing a cluster with at least
    /// one attacker after warmup (0 for non-clustering protocols — there
    /// is no cluster to infiltrate).
    pub cluster_infiltration: f64,
    /// [`cluster_infiltration`](Self::cluster_infiltration) of the clean
    /// baseline. Randomly placed attackers land inside clusters even
    /// without attacking (LBC's country clusters especially), so the
    /// attack's real effect is the *gain* over this.
    pub clean_cluster_infiltration: f64,
    /// Clusters formed under attack (0 for non-clustering protocols).
    pub clusters_under_attack: usize,
    /// Mean network-wide first-arrival delay of the clean baseline, ms.
    pub clean_mean_arrival_ms: f64,
    /// Mean network-wide first-arrival delay under attack, ms.
    pub adversarial_mean_arrival_ms: f64,
    /// Propagation slowdown: attacked over clean mean arrival delay
    /// (1.0 = no effect).
    pub slowdown: f64,
    /// Mean per-run coverage of the clean baseline.
    pub clean_coverage: f64,
    /// Mean per-run coverage under attack.
    pub adversarial_coverage: f64,
    /// Fraction of the baseline's deliveries lost to the attack:
    /// `1 − coverage_attacked / coverage_clean`, floored at 0.
    pub withheld_delivery_ratio: f64,
    /// Relay messages the attackers blackholed over the whole campaign.
    pub withheld_messages: u64,
    /// The full attacked campaign. The clean baseline is the same cell and
    /// seed with an *inert* adversary marking the same nodes (so both
    /// campaigns draw measuring origins from the identical honest pool);
    /// with zero attackers both collapse to plain `TxFlood`.
    pub campaign: CampaignResult,
}

impl AdversaryReport {
    /// How much cluster infiltration the attack *caused*: attacked minus
    /// clean-baseline infiltration (0 when attacking changed nothing).
    pub fn infiltration_gain(&self) -> f64 {
        self.cluster_infiltration - self.clean_cluster_infiltration
    }

    /// The row the adversarial summary table prints, in
    /// [`ADVERSARY_COLUMNS`] order.
    pub fn row(&self) -> Vec<f64> {
        vec![
            self.attackers as f64,
            self.attacker_peer_share,
            self.cluster_infiltration,
            self.infiltration_gain(),
            self.clean_mean_arrival_ms,
            self.adversarial_mean_arrival_ms,
            self.slowdown,
            self.withheld_delivery_ratio,
            self.adversarial_coverage,
        ]
    }
}

/// Infiltration metrics measured on the warmed-up, attacked snapshot.
/// Serializable (and carried inside a shard's `PairedSlice`) because the
/// measurement happens at warm time: every shard of a paired adversarial
/// cell warms the identical network and must report the identical
/// infiltration, which the merge cross-checks field-for-field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WarmInfiltration {
    /// Mean fraction of an honest online node's peers that are attackers.
    pub attacker_peer_share: f64,
    /// Fraction of clustered honest nodes sharing a cluster with an
    /// attacker.
    pub cluster_infiltration: f64,
    /// Number of distinct clusters observed on the warmed snapshot.
    pub clusters: usize,
}

impl WarmInfiltration {
    /// Measures the infiltration of the installed adversary's node set in
    /// the warmed-up topology of `net`. The clean baseline carries an
    /// inert force with the identical mask, so both snapshots are measured
    /// against the same node set through [`Network::is_attacker`].
    pub(crate) fn measure(net: &Network) -> Self {
        let is_attacker = |node: NodeId| net.is_attacker(node);
        let n = net.num_nodes() as u32;
        let mut attacker_clusters = std::collections::BTreeSet::new();
        let mut all_clusters = std::collections::BTreeSet::new();
        for i in 0..n {
            let node = NodeId::from_index(i);
            if let Some(c) = net.cluster_of(node) {
                all_clusters.insert(c);
                if is_attacker(node) {
                    attacker_clusters.insert(c);
                }
            }
        }
        let mut share_sum = 0.0;
        let mut share_n = 0usize;
        let mut infiltrated = 0usize;
        let mut clustered = 0usize;
        for i in 0..n {
            let node = NodeId::from_index(i);
            if is_attacker(node) || !net.is_online(node) {
                continue;
            }
            let peers = net.links().peers(node);
            if !peers.is_empty() {
                let bad = peers.iter().filter(|&&p| is_attacker(p)).count();
                share_sum += bad as f64 / peers.len() as f64;
                share_n += 1;
            }
            if let Some(c) = net.cluster_of(node) {
                clustered += 1;
                if attacker_clusters.contains(&c) {
                    infiltrated += 1;
                }
            }
        }
        WarmInfiltration {
            attacker_peer_share: if share_n == 0 {
                0.0
            } else {
                share_sum / share_n as f64
            },
            cluster_infiltration: if clustered == 0 {
                0.0
            } else {
                infiltrated as f64 / clustered as f64
            },
            clusters: all_clusters.len(),
        }
    }
}

/// Mean network-wide first-arrival delay of a campaign (NaN when no run
/// recorded arrivals).
fn mean_arrival_ms(campaign: &CampaignResult) -> f64 {
    match campaign.arrival_ecdf() {
        Ok(e) => e.mean(),
        Err(_) => f64::NAN,
    }
}

/// [`adversarial_campaign_in`] against the built-in protocol set.
///
/// # Errors
///
/// Propagates strategy-validation and campaign errors.
pub fn adversarial_campaign(
    base: &ExperimentConfig,
    strategy: &AdversaryStrategy,
    attackers: usize,
) -> Result<AdversaryReport, String> {
    adversarial_campaign_in(&ProtocolRegistry::builtins(), base, strategy, attackers)
}

/// Runs one adversarial cell: a clean baseline campaign (an inert
/// adversary marks the same nodes so origin selection stays paired), then
/// the same cell with `attackers` nodes executing `strategy` from before
/// warmup, both on the parallel runner. `attackers` may be zero — the
/// attacked campaign is then byte-identical to the baseline and to plain
/// `TxFlood` (the determinism contract the tests pin).
///
/// # Errors
///
/// Rejects invalid strategy parameters or `attackers >= num_nodes`, and
/// propagates protocol-resolution / network-construction errors.
pub fn adversarial_campaign_in(
    registry: &ProtocolRegistry,
    base: &ExperimentConfig,
    strategy: &AdversaryStrategy,
    attackers: usize,
) -> Result<AdversaryReport, String> {
    adversarial_campaign_in_with_threads(
        registry,
        base,
        strategy,
        attackers,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )
}

/// [`adversarial_campaign_in`] with an explicit worker-thread count —
/// output is byte-identical for every value.
///
/// # Errors
///
/// Same conditions as [`adversarial_campaign_in`].
pub fn adversarial_campaign_in_with_threads(
    registry: &ProtocolRegistry,
    base: &ExperimentConfig,
    strategy: &AdversaryStrategy,
    attackers: usize,
    threads: usize,
) -> Result<AdversaryReport, String> {
    let force = AdversaryForce::new(*strategy, base.net.num_nodes, attackers)?;
    // Clean baseline: an inert force marks the same nodes without acting.
    // This keeps the comparison paired: both campaigns exclude the mask
    // from origin selection, and both snapshots report where the
    // (would-be) attackers landed, so the report can separate
    // attack-caused infiltration from placement luck.
    let inert = AdversaryForce::inert(base.net.num_nodes, attackers)?;
    let mut clean_infiltration = WarmInfiltration::default();
    let mut inspect_clean = |net: &Network| clean_infiltration = WarmInfiltration::measure(net);
    let clean = base.run_campaign(
        registry,
        threads,
        Some(Box::new(inert)),
        None,
        Some(&mut inspect_clean),
        None,
    )?;
    let mut infiltration = WarmInfiltration::default();
    let mut inspect = |net: &Network| infiltration = WarmInfiltration::measure(net);
    let attacked = base.run_campaign(
        registry,
        threads,
        Some(Box::new(force)),
        None,
        Some(&mut inspect),
        None,
    )?;

    Ok(assemble_report(
        base.protocol.to_string(),
        strategy.label(),
        attackers,
        infiltration,
        clean_infiltration,
        &clean,
        attacked,
    ))
}

/// Assembles an [`AdversaryReport`] from the two campaigns and the two
/// warm-time infiltration measurements. Every field is a pure function of
/// the inputs, so the batch path and a cross-shard merge that reassembled
/// the same campaigns from run-range slices produce byte-identical
/// reports.
pub(crate) fn assemble_report(
    protocol: String,
    strategy: String,
    attackers: usize,
    infiltration: WarmInfiltration,
    clean_infiltration: WarmInfiltration,
    clean: &CampaignResult,
    attacked: CampaignResult,
) -> AdversaryReport {
    let clean_mean_arrival_ms = mean_arrival_ms(clean);
    let adversarial_mean_arrival_ms = mean_arrival_ms(&attacked);
    let clean_coverage = clean.mean_coverage();
    let adversarial_coverage = attacked.mean_coverage();
    AdversaryReport {
        protocol,
        strategy,
        attackers,
        attacker_peer_share: infiltration.attacker_peer_share,
        clean_attacker_peer_share: clean_infiltration.attacker_peer_share,
        cluster_infiltration: infiltration.cluster_infiltration,
        clean_cluster_infiltration: clean_infiltration.cluster_infiltration,
        clusters_under_attack: infiltration.clusters,
        clean_mean_arrival_ms,
        adversarial_mean_arrival_ms,
        slowdown: adversarial_mean_arrival_ms / clean_mean_arrival_ms,
        clean_coverage,
        adversarial_coverage,
        withheld_delivery_ratio: if clean_coverage > 0.0 {
            (1.0 - adversarial_coverage / clean_coverage).max(0.0)
        } else {
            0.0
        },
        withheld_messages: attacked.traffic.withheld_messages(),
        campaign: attacked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_cluster::Protocol;

    fn tiny(protocol: Protocol) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(protocol);
        cfg.net.num_nodes = 60;
        cfg.warmup_ms = 1_000.0;
        cfg.window_ms = 15_000.0;
        cfg.runs = 3;
        cfg
    }

    #[test]
    fn zero_attacker_adversarial_run_is_byte_identical_to_tx_flood() {
        // The determinism contract of the whole subsystem: installing the
        // adversary machinery with nobody to control must not change one
        // byte of the campaign — serially and under the thread pool.
        let registry = ProtocolRegistry::builtins();
        for protocol in [Protocol::Bitcoin, Protocol::bcbpt_paper()] {
            let cfg = tiny(protocol);
            let strategy = AdversaryStrategy::PingSpoof { spoof_factor: 0.05 };
            for threads in [1usize, 3, 8] {
                let clean = cfg.run_with_threads(threads).unwrap();
                let report =
                    adversarial_campaign_in_with_threads(&registry, &cfg, &strategy, 0, threads)
                        .unwrap();
                assert_eq!(
                    report.campaign, clean,
                    "zero-attacker adversarial campaign diverged at {threads} threads"
                );
                assert_eq!(report.slowdown, 1.0);
                assert_eq!(report.withheld_messages, 0);
                assert_eq!(report.withheld_delivery_ratio, 0.0);
                assert_eq!(report.attacker_peer_share, 0.0);
            }
        }
    }

    #[test]
    fn adversarial_campaigns_are_deterministic_across_thread_counts() {
        let registry = ProtocolRegistry::builtins();
        let cfg = tiny(Protocol::bcbpt_paper());
        let strategy = AdversaryStrategy::Withhold { drop_fraction: 0.4 };
        let serial =
            adversarial_campaign_in_with_threads(&registry, &cfg, &strategy, 6, 1).unwrap();
        for threads in [2usize, 5] {
            let pooled =
                adversarial_campaign_in_with_threads(&registry, &cfg, &strategy, 6, threads)
                    .unwrap();
            assert_eq!(pooled, serial, "{threads} threads diverged");
        }
    }

    #[test]
    fn withhold_blackholes_deliveries() {
        let cfg = tiny(Protocol::Bitcoin);
        let strategy = AdversaryStrategy::Withhold { drop_fraction: 0.8 };
        let report = adversarial_campaign(&cfg, &strategy, 12).unwrap();
        assert!(report.withheld_messages > 0, "attackers must drop relays");
        assert!(
            report.adversarial_coverage < report.clean_coverage,
            "coverage {} must fall below clean {}",
            report.adversarial_coverage,
            report.clean_coverage
        );
        assert!(report.withheld_delivery_ratio > 0.0);
        assert_eq!(report.strategy, "withhold(p=0.8)");
    }

    #[test]
    fn pingspoof_infiltrates_bcbpt_not_bitcoin() {
        let strategy = AdversaryStrategy::PingSpoof { spoof_factor: 0.02 };
        let bitcoin = adversarial_campaign(&tiny(Protocol::Bitcoin), &strategy, 6).unwrap();
        let bcbpt = adversarial_campaign(&tiny(Protocol::bcbpt_paper()), &strategy, 6).unwrap();
        assert_eq!(
            bitcoin.cluster_infiltration, 0.0,
            "bitcoin has no clusters to infiltrate"
        );
        assert!(
            bcbpt.cluster_infiltration > 0.5,
            "spoofers must reach most bcbpt clusters, got {}",
            bcbpt.cluster_infiltration
        );
        assert_eq!(bitcoin.infiltration_gain(), 0.0);
        assert!(
            bcbpt.infiltration_gain() > 0.2,
            "the spoof must cause infiltration beyond placement luck, got {} over {}",
            bcbpt.cluster_infiltration,
            bcbpt.clean_cluster_infiltration
        );
        assert!(bcbpt.clusters_under_attack > 0);
        assert_eq!(bitcoin.clusters_under_attack, 0);
    }

    #[test]
    fn delayrelay_slows_propagation() {
        let cfg = tiny(Protocol::Bitcoin);
        let strategy = AdversaryStrategy::DelayRelay { delay_ms: 400.0 };
        let report = adversarial_campaign(&cfg, &strategy, 12).unwrap();
        assert!(
            report.slowdown > 1.05,
            "12/60 delaying attackers must slow propagation, got {}",
            report.slowdown
        );
        assert_eq!(report.withheld_messages, 0, "delaying is not dropping");
    }

    #[test]
    fn report_rejects_degenerate_setups() {
        let cfg = tiny(Protocol::Bitcoin);
        let err = adversarial_campaign(
            &cfg,
            &AdversaryStrategy::PingSpoof { spoof_factor: -1.0 },
            3,
        )
        .unwrap_err();
        assert!(err.contains("spoof_factor"), "{err}");
        let err = adversarial_campaign(
            &cfg,
            &AdversaryStrategy::PingSpoof { spoof_factor: 0.1 },
            60,
        )
        .unwrap_err();
        assert!(err.contains("attackers"), "{err}");
    }

    #[test]
    fn report_row_matches_columns() {
        let cfg = tiny(Protocol::Bitcoin);
        let report =
            adversarial_campaign(&cfg, &AdversaryStrategy::DelayRelay { delay_ms: 50.0 }, 3)
                .unwrap();
        assert_eq!(report.row().len(), ADVERSARY_COLUMNS.len());
        let json = serde_json::to_string(&report).unwrap();
        let back: AdversaryReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
