//! Streaming campaign sessions: observable runs and adaptive stopping.
//!
//! [`Scenario::run`] is a batch call — it blocks until every cell has
//! consumed its whole `runs` budget and only then returns anything. A
//! [`ScenarioSession`] drives the same parallel runner but *streams*:
//! typed [`RunEvent`]s reach [`Observer`]s as runs fold (live progress,
//! JSONL export), and a [`StopRule`] is evaluated at every
//! run-index-ordered checkpoint, so a cell can stop as soon as its
//! confidence interval is tight instead of burning a fixed budget.
//!
//! Determinism contract: checkpoints fold in run-index order regardless
//! of worker scheduling, and a stop decision depends only on the folded
//! prefix — so a session's output (including where `CiHalfWidth` stops)
//! is byte-identical across thread counts, and a [`StopRule::FixedRuns`]
//! session is byte-identical to the batch reference
//! ([`Scenario::run_batch_in`]).
//!
//! # Examples
//!
//! ```no_run
//! use bcbpt_core::{Scenario, StopRule};
//!
//! let scenario = Scenario::builtin("fig3").expect("built-in").quick_scaled();
//! let outcome = scenario
//!     .session()
//!     .with_stop_rule(StopRule::CiHalfWidth {
//!         level: 0.95,
//!         rel_width: 0.1,
//!         min_runs: 5,
//!     })
//!     .observe_fn(|event| eprintln!("{event:?}"))
//!     .block()?;
//! println!("{}", outcome.render());
//! # Ok::<(), String>(())
//! ```

use crate::experiment::{RunCheckpoint, RunResult};
use crate::overhead::OverheadReport;
use crate::scenario::{CellOutcome, CellReport, Scenario, ScenarioOutcome, Workload};
use crate::warm::WarmCache;
use bcbpt_cluster::ProtocolRegistry;
use bcbpt_stats::StreamingSummary;
use serde::{Deserialize, Serialize};
use std::sync::mpsc;
use std::time::Instant;

/// When a streaming campaign cell stops consuming measuring runs.
///
/// Evaluated after every run folds (in run-index order); the first rule
/// hit ends the cell. Serde round-trippable so a checked-in scenario can
/// declare its budget (`Scenario::stop`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum StopRule {
    /// Consume the scenario's whole `runs` budget — the batch behaviour,
    /// and the default.
    #[default]
    FixedRuns,
    /// Stop once the normal-approximation confidence interval on the
    /// per-run mean `Δt(m,n)` is tight: half-width ≤ `rel_width · mean`
    /// at `level`, after at least `min_runs` successful measuring runs.
    /// Runs are the independent replicates (the paper averages "over
    /// approximately 1000 runs", §V.B); samples *within* a run share one
    /// measuring origin and are correlated, so the rule deliberately
    /// consults run means, not pooled per-connection samples.
    CiHalfWidth {
        /// Confidence level in `(0, 1)`, e.g. `0.95`.
        level: f64,
        /// Relative half-width target in `(0, 1)`, e.g. `0.1` = ±10 %.
        rel_width: f64,
        /// Successful measuring runs required before the rule may fire
        /// (≥ 2 — the interval needs a variance estimate).
        min_runs: usize,
    },
    /// Stop the cell once it has consumed `budget_ms` of wall-clock time.
    /// Unlike the other rules this depends on the host, not the folded
    /// data: results are reproducible only for a fixed machine and load.
    WallClockMs {
        /// Wall-clock budget per cell, ms.
        budget_ms: f64,
    },
    /// Stop once the *pooled* `Δt(m,n)` variance has stabilised: at the
    /// first evaluation point (after at least `min_runs` successful
    /// measuring runs) where the sample variance of the mergeable
    /// ECDF's accumulator moved by at most `rel_tol` relative to its
    /// value at the previous evaluation point. The rule is stateful —
    /// it compares consecutive evaluation points, so the same rule
    /// evaluated at a different cadence (e.g. by a shard coordinator at
    /// run-index checkpoints instead of at every fold) may stop at a
    /// different, but still deterministic, run index.
    VarianceStable {
        /// Maximum relative change between consecutive variance
        /// evaluations, in `(0, 1)` — e.g. `0.05` = ±5 %.
        rel_tol: f64,
        /// Successful measuring runs required before the rule may fire
        /// (≥ 2 — the variance needs at least two pooled samples).
        min_runs: usize,
    },
}

impl StopRule {
    /// `true` when the rule can end a cell before its `runs` budget —
    /// i.e. anything but [`StopRule::FixedRuns`].
    pub fn is_adaptive(&self) -> bool {
        !matches!(self, StopRule::FixedRuns)
    }

    /// Short human-readable form, e.g. `"ci(95%, ±10%, min 5)"`.
    pub fn label(&self) -> String {
        match self {
            StopRule::FixedRuns => "fixed-runs".to_string(),
            StopRule::CiHalfWidth {
                level,
                rel_width,
                min_runs,
            } => format!(
                "ci({:.0}%, ±{:.0}%, min {min_runs})",
                level * 100.0,
                rel_width * 100.0
            ),
            StopRule::WallClockMs { budget_ms } => format!("wall-clock({budget_ms}ms)"),
            StopRule::VarianceStable { rel_tol, min_runs } => {
                format!("var-stable(±{:.0}%, min {min_runs})", rel_tol * 100.0)
            }
        }
    }

    /// Validates the rule parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            StopRule::FixedRuns => Ok(()),
            StopRule::CiHalfWidth {
                level,
                rel_width,
                min_runs,
            } => {
                if !(level > 0.0 && level < 1.0) {
                    return Err(format!("stop level must be in (0, 1), got {level}"));
                }
                if !rel_width.is_finite() || rel_width <= 0.0 || rel_width >= 1.0 {
                    return Err(format!("stop rel_width must be in (0, 1), got {rel_width}"));
                }
                if min_runs < 2 {
                    return Err(format!(
                        "stop min_runs must be >= 2 (the interval needs a variance), got {min_runs}"
                    ));
                }
                Ok(())
            }
            StopRule::WallClockMs { budget_ms } => {
                if !budget_ms.is_finite() || budget_ms <= 0.0 {
                    return Err(format!(
                        "stop budget_ms must be positive and finite, got {budget_ms}"
                    ));
                }
                Ok(())
            }
            StopRule::VarianceStable { rel_tol, min_runs } => {
                if !rel_tol.is_finite() || rel_tol <= 0.0 || rel_tol >= 1.0 {
                    return Err(format!("stop rel_tol must be in (0, 1), got {rel_tol}"));
                }
                if min_runs < 2 {
                    return Err(format!(
                        "stop min_runs must be >= 2 (the variance needs samples), got {min_runs}"
                    ));
                }
                Ok(())
            }
        }
    }

    /// `true` when the rule is a pure function of the folded data, so a
    /// shard coordinator can evaluate it at deterministic run-index
    /// checkpoints. [`StopRule::WallClockMs`] is excluded — it depends
    /// on the host clock, which differs across shards.
    pub fn is_data_driven(&self) -> bool {
        matches!(
            self,
            StopRule::CiHalfWidth { .. } | StopRule::VarianceStable { .. }
        )
    }

    /// A fresh stateful evaluator for this rule. One evaluator per cell:
    /// [`StopRule::VarianceStable`] compares consecutive evaluations, so
    /// the evaluator must see every checkpoint of one cell in order and
    /// must not be reused across cells.
    pub fn evaluator(&self) -> StopEval {
        StopEval {
            rule: *self,
            prev_var: None,
        }
    }
}

/// Stateful evaluation of one [`StopRule`] over one cell's checkpoint
/// stream, in run-index order. Both the in-process session and the
/// cross-shard coordinator drive one of these, so a rule stops the same
/// way wherever it runs (given the same evaluation cadence).
#[derive(Debug, Clone)]
pub struct StopEval {
    rule: StopRule,
    /// Pooled-delta variance at the previous evaluation point
    /// ([`StopRule::VarianceStable`] only).
    prev_var: Option<f64>,
}

impl StopEval {
    /// Evaluates the data-driven part of the rule on folded prefix
    /// accumulators: `deltas` pools every finite `Δt(m,n)` sample,
    /// `run_means` holds one mean per successful measuring run, and
    /// `measured_runs` counts those runs. [`StopRule::WallClockMs`]
    /// never fires here (it is not data-driven).
    pub fn observe_folded(
        &mut self,
        deltas: &StreamingSummary,
        run_means: &StreamingSummary,
        measured_runs: usize,
    ) -> bool {
        match self.rule {
            StopRule::FixedRuns | StopRule::WallClockMs { .. } => false,
            StopRule::CiHalfWidth {
                level,
                rel_width,
                min_runs,
            } => {
                if measured_runs < min_runs || run_means.count() < 2 {
                    return false;
                }
                let half = run_means.mean_half_width(level);
                half.is_finite() && half <= rel_width * run_means.mean().abs()
            }
            StopRule::VarianceStable { rel_tol, min_runs } => {
                if deltas.count() < 2 {
                    return false;
                }
                let sd = deltas.std_dev();
                let var = sd * sd;
                if !var.is_finite() {
                    return false;
                }
                let stable = match self.prev_var {
                    Some(prev) if prev > 0.0 => (var - prev).abs() <= rel_tol * prev,
                    Some(prev) => var == prev,
                    None => false,
                };
                self.prev_var = Some(var);
                stable && measured_runs >= min_runs
            }
        }
    }

    /// Evaluates the rule at an in-process fold checkpoint. `started` is
    /// when the cell's campaign began (for the wall-clock budget).
    fn observe(&mut self, checkpoint: &RunCheckpoint<'_>, started: Instant) -> bool {
        match self.rule {
            StopRule::WallClockMs { budget_ms } => {
                started.elapsed().as_secs_f64() * 1_000.0 >= budget_ms
            }
            _ => self.observe_folded(
                checkpoint.deltas,
                checkpoint.run_means,
                checkpoint.measured_runs,
            ),
        }
    }
}

/// Folded statistics attached to every [`RunEvent::RunCompleted`]: the
/// run's own harvest plus the pooled prefix the stop rule saw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// `false` when the run was skipped (its measuring origin churned
    /// away before injection).
    pub measured: bool,
    /// `Δt(m,n)` samples this run harvested.
    pub run_deltas: usize,
    /// Successful measuring runs folded so far (including this one).
    pub measured_runs: usize,
    /// Pooled `Δt(m,n)` samples folded so far.
    pub pooled_samples: u64,
    /// Running mean of the pooled samples, ms.
    pub pooled_mean_ms: f64,
    /// Running sample standard deviation of the pooled samples, ms.
    pub pooled_std_dev_ms: f64,
}

impl RunStats {
    /// The stats attached to a fold checkpoint: the run's own harvest
    /// plus the pooled prefix accumulated so far. The one constructor the
    /// session, the shard observer and checkpoint replay all share, so a
    /// shard's event stream can never diverge from the session's.
    pub(crate) fn folded(
        result: Option<&RunResult>,
        deltas: &bcbpt_stats::StreamingSummary,
        measured_runs: usize,
    ) -> RunStats {
        RunStats {
            measured: result.is_some(),
            run_deltas: result.map_or(0, |r| r.deltas_ms.len()),
            measured_runs,
            pooled_samples: deltas.count(),
            pooled_mean_ms: deltas.mean(),
            pooled_std_dev_ms: deltas.std_dev(),
        }
    }
}

/// A typed progress event emitted by a [`ScenarioSession`].
///
/// Events arrive in deterministic order: cells in sweep order, and within
/// a campaign cell one `RunCompleted` per folded run index (ascending).
/// Serde round-trippable — the `scenario` driver's `--jsonl` flag writes
/// one serialized event per line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunEvent {
    /// A sweep cell is about to run.
    CellStarted {
        /// Cell index in sweep order (0-based).
        cell: usize,
        /// The cell's label (protocol, plus `@n=…` on a size sweep).
        label: String,
        /// The `runs` budget the cell may consume (0 for single-shot
        /// workloads such as mining or partition).
        planned_runs: usize,
    },
    /// One measuring run folded into a streaming campaign cell.
    RunCompleted {
        /// Cell index in sweep order.
        cell: usize,
        /// Campaign-local run index (folds arrive in ascending order).
        run_index: usize,
        /// The run's harvest and the pooled prefix statistics.
        run_stats: RunStats,
    },
    /// One measuring run panicked and was folded as a structured failure
    /// (per-run panic isolation) — the cell continues; run indices stay
    /// gap-free across `RunCompleted` and `RunFailed` together.
    RunFailed {
        /// Cell index in sweep order.
        cell: usize,
        /// Campaign-local run index of the panicking run.
        run_index: usize,
        /// The panic payload, rendered to text.
        payload: String,
    },
    /// A cell finished; `report` is its full outcome.
    CellCompleted {
        /// Cell index in sweep order.
        cell: usize,
        /// The cell's outcome (label, protocol and workload report),
        /// boxed so the event enum stays small to clone per observer.
        report: Box<CellOutcome>,
        /// Measuring run indices the cell consumed (equals `planned_runs`
        /// unless a stop rule fired; the cell's budget for single-shot
        /// workloads).
        runs_used: usize,
        /// `true` when an adaptive stop rule ended the cell early.
        stopped_early: bool,
    },
    /// A cell failed at run time; the sweep continues and the error is
    /// also recorded as a [`CellReport::Failed`] in the outcome.
    CellFailed {
        /// Cell index in sweep order.
        cell: usize,
        /// The cell's label.
        label: String,
        /// The run-time error.
        error: String,
    },
    /// The whole scenario finished; always the last event of a session.
    ScenarioCompleted {
        /// The scenario's name.
        scenario: String,
        /// Number of cells run.
        cells: usize,
        /// Number of cells that failed at run time.
        failed_cells: usize,
    },
}

impl RunEvent {
    /// The event's cell index (`None` for [`RunEvent::ScenarioCompleted`]).
    pub fn cell(&self) -> Option<usize> {
        match self {
            RunEvent::CellStarted { cell, .. }
            | RunEvent::RunCompleted { cell, .. }
            | RunEvent::RunFailed { cell, .. }
            | RunEvent::CellCompleted { cell, .. }
            | RunEvent::CellFailed { cell, .. } => Some(*cell),
            RunEvent::ScenarioCompleted { .. } => None,
        }
    }

    /// Short kind tag, e.g. `"run_completed"` — handy for filtering JSONL
    /// streams.
    pub fn kind(&self) -> &'static str {
        match self {
            RunEvent::CellStarted { .. } => "cell_started",
            RunEvent::RunCompleted { .. } => "run_completed",
            RunEvent::RunFailed { .. } => "run_failed",
            RunEvent::CellCompleted { .. } => "cell_completed",
            RunEvent::CellFailed { .. } => "cell_failed",
            RunEvent::ScenarioCompleted { .. } => "scenario_completed",
        }
    }
}

/// A session event subscriber. Called synchronously (under the fold lock
/// for `RunCompleted`), so observers should hand work off quickly.
pub trait Observer: Send {
    /// Receives one event.
    fn on_event(&mut self, event: &RunEvent);
}

/// Every `Send` closure over `&RunEvent` is an observer.
impl<F: FnMut(&RunEvent) + Send> Observer for F {
    fn on_event(&mut self, event: &RunEvent) {
        self(event);
    }
}

/// An [`Observer`] that clones every event into an [`mpsc`] channel —
/// what [`ScenarioSession::subscribe`] installs. A dropped receiver is
/// ignored (the session never fails because a consumer went away).
pub struct ChannelObserver {
    sender: mpsc::Sender<RunEvent>,
}

impl ChannelObserver {
    /// Creates the observer and the receiving end of its channel.
    pub fn pair() -> (Self, mpsc::Receiver<RunEvent>) {
        let (sender, receiver) = mpsc::channel();
        (ChannelObserver { sender }, receiver)
    }
}

impl Observer for ChannelObserver {
    fn on_event(&mut self, event: &RunEvent) {
        let _ = self.sender.send(event.clone());
    }
}

/// A configured streaming execution of a [`Scenario`]: the scenario's
/// cells, a [`StopRule`], a worker-thread count and any number of
/// [`Observer`]s. Built by [`Scenario::session`], consumed by
/// [`block`](Self::block) / [`block_in`](Self::block_in).
pub struct ScenarioSession<'a> {
    scenario: &'a Scenario,
    stop: StopRule,
    threads: usize,
    warm: Option<&'a WarmCache>,
    observers: Vec<Box<dyn Observer + 'a>>,
}

impl<'a> ScenarioSession<'a> {
    /// Creates a session over `scenario` with the scenario's declared stop
    /// rule (default [`StopRule::FixedRuns`]) and one worker thread per
    /// available core. Use [`Scenario::session`].
    pub(crate) fn new(scenario: &'a Scenario) -> Self {
        ScenarioSession {
            scenario,
            stop: scenario.stop.unwrap_or_default(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            warm: None,
            observers: Vec::new(),
        }
    }

    /// Warms campaign cells through `cache` (see [`WarmCache`]): cells
    /// sharing a warm recipe — and repeated sessions over one cache —
    /// build + warm the network once and clone thereafter, with
    /// byte-identical output.
    #[must_use]
    pub fn with_warm_cache(mut self, cache: &'a WarmCache) -> Self {
        self.warm = Some(cache);
        self
    }

    /// Overrides the stop rule (replacing the scenario's declared one).
    #[must_use]
    pub fn with_stop_rule(mut self, stop: StopRule) -> Self {
        self.stop = stop;
        self
    }

    /// Sets the worker-thread count (`0` is treated as 1). This is an
    /// execution detail: output is byte-identical for every value under
    /// the data-driven stop rules ([`StopRule::FixedRuns`],
    /// [`StopRule::CiHalfWidth`], [`StopRule::VarianceStable`]).
    /// [`StopRule::WallClockMs`] decides on
    /// host time, so where it cuts a cell varies with the thread count
    /// (and machine) by design.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches an observer.
    #[must_use]
    pub fn observe(mut self, observer: impl Observer + 'a) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Attaches a closure observer (sugar over [`observe`](Self::observe)).
    #[must_use]
    pub fn observe_fn(self, f: impl FnMut(&RunEvent) + Send + 'a) -> Self {
        self.observe(f)
    }

    /// Attaches a channel subscriber and returns its receiving end. The
    /// channel is unbounded; drain it from another thread for live
    /// consumption, or after [`block`](Self::block) returns.
    pub fn subscribe(&mut self) -> mpsc::Receiver<RunEvent> {
        let (observer, receiver) = ChannelObserver::pair();
        self.observers.push(Box::new(observer));
        receiver
    }

    /// Runs the session against the built-in protocol set.
    ///
    /// # Errors
    ///
    /// Propagates validation and configuration errors (per-cell run-time
    /// failures are recorded in the outcome, not returned).
    pub fn block(self) -> Result<ScenarioOutcome, String> {
        self.block_in(&ProtocolRegistry::builtins())
    }

    /// Runs the session with protocols resolved against `registry`.
    ///
    /// # Errors
    ///
    /// Propagates validation and configuration errors (per-cell run-time
    /// failures are recorded in the outcome, not returned).
    pub fn block_in(mut self, registry: &ProtocolRegistry) -> Result<ScenarioOutcome, String> {
        let scenario = self.scenario;
        scenario.validate_in(registry)?;
        scenario.validate_stop_rule(&self.stop)?;
        let cells = scenario.cells();
        let mut outcomes = Vec::with_capacity(cells.len());
        let mut failed_cells = 0usize;
        for (cell_index, cell) in cells.into_iter().enumerate() {
            let planned_runs = if scenario.workload.is_campaign() {
                scenario.runs
            } else {
                0
            };
            emit(
                &mut self.observers,
                &RunEvent::CellStarted {
                    cell: cell_index,
                    label: cell.label.clone(),
                    planned_runs,
                },
            );
            let outcome = match self.run_cell(registry, cell_index, &cell) {
                Ok((outcome, runs_used, stopped_early)) => {
                    // The completion event carries a full copy of the cell
                    // outcome (every per-run vector); only pay for the
                    // clone when someone is listening.
                    if !self.observers.is_empty() {
                        emit(
                            &mut self.observers,
                            &RunEvent::CellCompleted {
                                cell: cell_index,
                                report: Box::new(outcome.clone()),
                                runs_used,
                                stopped_early,
                            },
                        );
                    }
                    outcome
                }
                Err(error) => {
                    failed_cells += 1;
                    emit(
                        &mut self.observers,
                        &RunEvent::CellFailed {
                            cell: cell_index,
                            label: cell.label.clone(),
                            error: error.clone(),
                        },
                    );
                    CellOutcome::new(
                        cell.label,
                        cell.protocol.to_string(),
                        cell.num_nodes,
                        CellReport::Failed { error },
                    )
                }
            };
            outcomes.push(outcome);
        }
        let outcome =
            ScenarioOutcome::new(scenario.name.clone(), scenario.workload.clone(), outcomes);
        emit(
            &mut self.observers,
            &RunEvent::ScenarioCompleted {
                scenario: outcome.scenario.clone(),
                cells: outcome.cells.len(),
                failed_cells,
            },
        );
        Ok(outcome)
    }

    /// Runs one cell, streaming run events for campaign workloads.
    /// Returns the outcome plus `(runs_used, stopped_early)`.
    fn run_cell(
        &mut self,
        registry: &ProtocolRegistry,
        cell_index: usize,
        cell: &crate::scenario::ScenarioCell,
    ) -> Result<(CellOutcome, usize, bool), String> {
        let scenario = self.scenario;
        match &scenario.workload {
            // Plain measuring-run campaigns stream: runs fold one by one,
            // the stop rule sees every checkpoint, and the folded
            // accumulators seed the outcome's stats cache.
            Workload::TxFlood | Workload::ChurnBurst { .. } | Workload::OverheadProbe => {
                let cfg = scenario.cell_config(cell);
                let planned = cfg.runs;
                let started = Instant::now();
                let mut stop = self.stop.evaluator();
                let observers = &mut self.observers;
                let mut folded = StreamingSummary::new();
                let mut runs_used = 0usize;
                let mut stopped = false;
                let mut control = |checkpoint: &RunCheckpoint<'_>| -> bool {
                    runs_used = checkpoint.run_index + 1;
                    folded = *checkpoint.deltas;
                    let event = match checkpoint.failure {
                        // A panicking run folds as a structured failure —
                        // observed like any other run, so JSONL consumers
                        // see a gap-free run-index stream.
                        Some(failure) => RunEvent::RunFailed {
                            cell: cell_index,
                            run_index: checkpoint.run_index,
                            payload: failure.payload.clone(),
                        },
                        None => RunEvent::RunCompleted {
                            cell: cell_index,
                            run_index: checkpoint.run_index,
                            run_stats: RunStats::folded(
                                checkpoint.result,
                                checkpoint.deltas,
                                checkpoint.measured_runs,
                            ),
                        },
                    };
                    emit(observers, &event);
                    if stop.observe(checkpoint, started) {
                        stopped = checkpoint.run_index + 1 < planned;
                        return true;
                    }
                    false
                };
                let campaign = cfg.run_campaign(
                    registry,
                    self.threads,
                    None,
                    self.warm,
                    None,
                    Some(&mut control),
                )?;
                if !stopped {
                    runs_used = planned;
                }
                let report = match &scenario.workload {
                    Workload::OverheadProbe => CellReport::Overhead {
                        report: OverheadReport::from_campaign(&campaign),
                    },
                    _ => CellReport::Campaign { campaign },
                };
                let outcome = CellOutcome::with_delta_cache(
                    cell.label.clone(),
                    cell.protocol.to_string(),
                    cell.num_nodes,
                    report,
                    folded.summary(),
                );
                Ok((outcome, runs_used, stopped))
            }
            // Single-shot and paired-campaign workloads run the batch
            // path; the session still brackets them with cell events and
            // passes its worker-thread count through.
            _ => {
                let report = scenario.run_cell_batch(registry, cell, Some(self.threads))?;
                let runs_used = if scenario.workload.is_campaign() {
                    scenario.runs
                } else {
                    0
                };
                Ok((
                    CellOutcome::new(
                        cell.label.clone(),
                        cell.protocol.to_string(),
                        cell.num_nodes,
                        report,
                    ),
                    runs_used,
                    false,
                ))
            }
        }
    }
}

/// Delivers one event to every observer, in attach order.
fn emit(observers: &mut [Box<dyn Observer + '_>], event: &RunEvent) {
    for observer in observers {
        observer.on_event(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use bcbpt_cluster::Protocol;
    use std::sync::{Arc, Mutex};

    fn tiny(runs: usize) -> Scenario {
        let mut base = ExperimentConfig::quick(Protocol::Bitcoin);
        base.net.num_nodes = 60;
        base.warmup_ms = 1_000.0;
        base.window_ms = 15_000.0;
        base.runs = runs;
        Scenario::from_experiment("tiny-session", &base, Workload::TxFlood)
    }

    fn every_stop_rule() -> Vec<StopRule> {
        vec![
            StopRule::FixedRuns,
            StopRule::CiHalfWidth {
                level: 0.95,
                rel_width: 0.1,
                min_runs: 3,
            },
            StopRule::WallClockMs { budget_ms: 500.0 },
            StopRule::VarianceStable {
                rel_tol: 0.05,
                min_runs: 4,
            },
        ]
    }

    #[test]
    fn stop_rules_serde_round_trip_and_label() {
        use serde::{Deserialize, Serialize};
        for rule in every_stop_rule() {
            let back = StopRule::from_value(&rule.to_value()).unwrap();
            assert_eq!(back, rule);
            assert!(!rule.label().is_empty());
        }
        assert!(!StopRule::FixedRuns.is_adaptive());
        assert!(StopRule::WallClockMs { budget_ms: 1.0 }.is_adaptive());
        assert_eq!(StopRule::default(), StopRule::FixedRuns);
    }

    #[test]
    fn stop_rule_validation_rejects_degenerate_parameters() {
        for (rule, needle) in [
            (
                StopRule::CiHalfWidth {
                    level: 1.0,
                    rel_width: 0.1,
                    min_runs: 3,
                },
                "level",
            ),
            (
                StopRule::CiHalfWidth {
                    level: 0.95,
                    rel_width: 0.0,
                    min_runs: 3,
                },
                "rel_width",
            ),
            (
                StopRule::CiHalfWidth {
                    level: 0.95,
                    rel_width: f64::NAN,
                    min_runs: 3,
                },
                "rel_width",
            ),
            (
                StopRule::CiHalfWidth {
                    level: 0.95,
                    rel_width: 0.1,
                    min_runs: 1,
                },
                "min_runs",
            ),
            (StopRule::WallClockMs { budget_ms: 0.0 }, "budget_ms"),
            (
                StopRule::WallClockMs {
                    budget_ms: f64::INFINITY,
                },
                "budget_ms",
            ),
            (
                StopRule::VarianceStable {
                    rel_tol: 1.0,
                    min_runs: 4,
                },
                "rel_tol",
            ),
            (
                StopRule::VarianceStable {
                    rel_tol: 0.05,
                    min_runs: 1,
                },
                "min_runs",
            ),
        ] {
            let err = rule.validate().unwrap_err();
            assert!(err.contains(needle), "{rule:?}: {err}");
        }
        for rule in every_stop_rule() {
            rule.validate().unwrap();
        }
    }

    #[test]
    fn adaptive_stop_rejected_for_non_streaming_workloads() {
        let mut scenario = tiny(3);
        scenario.workload = Workload::Mining {
            block_interval_ms: 800.0,
            duration_ms: 10_000.0,
        };
        scenario.stop = Some(StopRule::CiHalfWidth {
            level: 0.95,
            rel_width: 0.1,
            min_runs: 2,
        });
        let err = scenario.validate().unwrap_err();
        assert!(err.contains("adaptive stop rule"), "{err}");
        // FixedRuns is always acceptable.
        scenario.stop = Some(StopRule::FixedRuns);
        scenario.validate().unwrap();
    }

    #[test]
    fn fixed_runs_session_is_byte_identical_to_batch_reference() {
        let scenario = tiny(4);
        let batch = scenario.run_batch().unwrap();
        for threads in [1usize, 3, 8] {
            let session = scenario
                .session()
                .with_stop_rule(StopRule::FixedRuns)
                .with_threads(threads)
                .block()
                .unwrap();
            assert_eq!(session, batch, "{threads} threads diverged from batch");
        }
    }

    #[test]
    fn event_stream_has_deterministic_shape() {
        let scenario = tiny(3);
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let outcome = scenario
            .session()
            .observe_fn(move |event: &RunEvent| sink.lock().unwrap().push(event.clone()))
            .block()
            .unwrap();
        let events = events.lock().unwrap();
        // Shape: CellStarted, one RunCompleted per run (ascending), then
        // CellCompleted, then ScenarioCompleted last.
        assert_eq!(events.len(), 1 + 3 + 1 + 1);
        assert_eq!(events[0].kind(), "cell_started");
        for (i, event) in events[1..4].iter().enumerate() {
            let RunEvent::RunCompleted {
                cell,
                run_index,
                run_stats,
            } = event
            else {
                panic!("expected run_completed, got {event:?}");
            };
            assert_eq!(*cell, 0);
            assert_eq!(*run_index, i, "folds arrive in run-index order");
            assert!(run_stats.pooled_samples > 0);
        }
        let RunEvent::CellCompleted {
            report,
            runs_used,
            stopped_early,
            ..
        } = &events[4]
        else {
            panic!("expected cell_completed, got {:?}", events[4]);
        };
        assert_eq!(*runs_used, 3);
        assert!(!stopped_early);
        assert_eq!(**report, outcome.cells[0]);
        let RunEvent::ScenarioCompleted {
            scenario: name,
            cells,
            failed_cells,
        } = &events[5]
        else {
            panic!("expected scenario_completed, got {:?}", events[5]);
        };
        assert_eq!(name, "tiny-session");
        assert_eq!(*cells, 1);
        assert_eq!(*failed_cells, 0);
        // Events serde round-trip (the JSONL contract).
        use serde::{Deserialize, Serialize};
        for event in events.iter() {
            let back = RunEvent::from_value(&event.to_value()).unwrap();
            assert_eq!(&back, event);
            assert!(!event.kind().is_empty());
        }
    }

    #[test]
    fn subscribe_channel_receives_the_full_stream() {
        let scenario = tiny(2);
        let mut session = scenario.session();
        let receiver = session.subscribe();
        session.block().unwrap();
        let events: Vec<RunEvent> = receiver.try_iter().collect();
        assert_eq!(events.first().map(RunEvent::kind), Some("cell_started"));
        assert_eq!(
            events.last().map(RunEvent::kind),
            Some("scenario_completed")
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind() == "run_completed")
                .count(),
            2
        );
    }

    #[test]
    fn ci_half_width_stops_early_and_is_thread_count_invariant() {
        // Plenty of budget, loose target: the rule must fire well before
        // the ceiling, and at the same run index for every thread count.
        let scenario = tiny(30);
        let rule = StopRule::CiHalfWidth {
            level: 0.95,
            rel_width: 0.25,
            min_runs: 3,
        };
        let reference = scenario
            .session()
            .with_stop_rule(rule)
            .with_threads(1)
            .block()
            .unwrap();
        let used = reference.cells[0].campaign().unwrap().runs.len();
        assert!(
            (1..30).contains(&used),
            "rule must stop early, used {used} runs"
        );
        for threads in [3usize, 8] {
            let pooled = scenario
                .session()
                .with_stop_rule(rule)
                .with_threads(threads)
                .block()
                .unwrap();
            assert_eq!(
                pooled, reference,
                "early stop diverged at {threads} threads"
            );
        }
        // The early-stopped campaign is exactly the full campaign's prefix.
        let full = scenario.run_batch().unwrap();
        let full_runs = &full.cells[0].campaign().unwrap().runs;
        assert_eq!(
            &full_runs[..used],
            &reference.cells[0].campaign().unwrap().runs[..],
            "stopping truncates, never changes, the run stream"
        );
    }

    #[test]
    fn variance_stable_stops_early_and_is_thread_count_invariant() {
        // The pooled variance settles fast on a quiet TxFlood cell: a
        // loose tolerance must fire before the budget, at the same run
        // index for every thread count, and leave a strict prefix.
        let scenario = tiny(30);
        let rule = StopRule::VarianceStable {
            rel_tol: 0.2,
            min_runs: 3,
        };
        let reference = scenario
            .session()
            .with_stop_rule(rule)
            .with_threads(1)
            .block()
            .unwrap();
        let used = reference.cells[0].campaign().unwrap().runs.len();
        assert!(
            (1..30).contains(&used),
            "rule must stop early, used {used} runs"
        );
        for threads in [3usize, 8] {
            let pooled = scenario
                .session()
                .with_stop_rule(rule)
                .with_threads(threads)
                .block()
                .unwrap();
            assert_eq!(
                pooled, reference,
                "early stop diverged at {threads} threads"
            );
        }
        let full = scenario.run_batch().unwrap();
        assert_eq!(
            &full.cells[0].campaign().unwrap().runs[..used],
            &reference.cells[0].campaign().unwrap().runs[..],
            "stopping truncates, never changes, the run stream"
        );
    }

    #[test]
    fn wall_clock_budget_stops_a_cell() {
        // A 0.01 ms budget is exhausted by the first checkpoint.
        let scenario = tiny(10);
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let outcome = scenario
            .session()
            .with_stop_rule(StopRule::WallClockMs { budget_ms: 0.01 })
            .observe_fn(move |event: &RunEvent| sink.lock().unwrap().push(event.clone()))
            .block()
            .unwrap();
        assert!(outcome.cells[0].campaign().unwrap().runs.len() <= 1);
        let events = events.lock().unwrap();
        let RunEvent::CellCompleted {
            runs_used,
            stopped_early,
            ..
        } = events
            .iter()
            .find(|e| e.kind() == "cell_completed")
            .unwrap()
        else {
            unreachable!()
        };
        assert_eq!(*runs_used, 1);
        assert!(stopped_early);
    }

    #[test]
    fn session_pre_populates_the_outcome_stats_cache() {
        // The folded accumulators seed the cell cache; the cached values
        // must be bit-identical to a from-scratch recompute.
        let scenario = tiny(3);
        let outcome = scenario.run().unwrap();
        let cell = &outcome.cells[0];
        let cached = cell.delta_summary().unwrap();
        let recomputed = cell.campaign().unwrap().delta_summary();
        assert_eq!(cached, recomputed);
        let cached_ecdf = cell.delta_ecdf().unwrap();
        assert_eq!(cached_ecdf, cell.campaign().unwrap().delta_ecdf().unwrap());
    }

    #[test]
    fn failed_cells_emit_cell_failed_events() {
        let mut registry = ProtocolRegistry::builtins();
        use std::sync::atomic::{AtomicUsize, Ordering};
        let builds = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&builds);
        registry.register("flaky", move |_spec| {
            if counter.fetch_add(1, Ordering::SeqCst) == 0 {
                Ok(Box::new(bcbpt_net::RandomPolicy::new()))
            } else {
                Err("flaky exploded at run time".to_string())
            }
        });
        let mut scenario = tiny(2);
        scenario.protocol = bcbpt_cluster::ProtocolSpec::new("flaky");
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let outcome = scenario
            .session()
            .observe_fn(move |event: &RunEvent| sink.lock().unwrap().push(event.clone()))
            .block_in(&registry)
            .unwrap();
        assert_eq!(outcome.cells[0].error(), Some("flaky exploded at run time"));
        let events = events.lock().unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            RunEvent::CellFailed { error, .. } if error.contains("flaky exploded")
        )));
        let RunEvent::ScenarioCompleted { failed_cells, .. } = events.last().unwrap() else {
            panic!("last event must be scenario_completed");
        };
        assert_eq!(*failed_cells, 1);
    }

    #[test]
    fn overhead_probe_streams_and_matches_batch() {
        let mut scenario = tiny(3);
        scenario.workload = Workload::OverheadProbe;
        let batch = scenario.run_batch().unwrap();
        let session = scenario.session().block().unwrap();
        assert_eq!(session, batch);
        // Overhead cells drop the campaign, so the delta accessors stay
        // empty — the cache must not leak folded stats into them.
        assert!(session.cells[0].delta_summary().is_none());
        assert!(session.cells[0].delta_ecdf().is_none());
    }

    #[test]
    fn single_shot_workloads_run_through_the_session() {
        let mut scenario = tiny(0);
        scenario.net.num_nodes = 80;
        scenario.workload = Workload::Partition;
        let events = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&events);
        let outcome = scenario
            .session()
            .observe_fn(move |event: &RunEvent| sink.lock().unwrap().push(event.clone()))
            .block()
            .unwrap();
        assert!(matches!(
            outcome.cells[0].report,
            CellReport::Partition { .. }
        ));
        let events = events.lock().unwrap();
        let kinds: Vec<&str> = events.iter().map(RunEvent::kind).collect();
        assert_eq!(
            kinds,
            vec!["cell_started", "cell_completed", "scenario_completed"],
            "single-shot cells emit no run events"
        );
        let RunEvent::CellStarted { planned_runs, .. } = &events[0] else {
            unreachable!()
        };
        assert_eq!(*planned_runs, 0);
    }
}
