//! Security experiments (the paper's declared future work, §V.C).
//!
//! "It would seem possible for an attacker to more easily launch eclipse
//! attacks by concentrating its bad peers within a small cluster ...
//! Similarly, partition attacks seem to have a great potential. ... our
//! future work will include evaluation of partition attacks as well as
//! eclipse attacks." This module implements both evaluations.

use crate::experiment::ExperimentConfig;
use bcbpt_cluster::{ProtocolRegistry, ProtocolSpec};
use bcbpt_net::{Network, NodeId};
use bcbpt_stats::StatTable;
use serde::{Deserialize, Serialize};

/// Result of the eclipse-exposure experiment for one protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EclipseReport {
    /// Protocol label.
    pub protocol: String,
    /// Fraction of the network the adversary controls.
    pub adversary_fraction: f64,
    /// Mean share of a victim's connections that end up adversarial when
    /// the adversary concentrates its nodes near the victim.
    pub mean_malicious_peer_share: f64,
    /// Worst observed share across victims.
    pub max_malicious_peer_share: f64,
    /// Number of victims measured.
    pub victims: usize,
}

/// Eclipse exposure of one protocol (§V.C threat model): the adversary
/// places its `fraction·n` nodes as *latency-close* to the victim as
/// possible, so proximity-driven neighbour selection preferentially picks
/// them. The metric is the share of the victim's connections that are
/// adversarial after the topology settles.
///
/// # Errors
///
/// Propagates network-construction errors.
///
/// # Panics
///
/// Panics when `adversary_fraction` is outside `(0, 1)` or `victims == 0`.
pub fn eclipse_exposure(
    base: &ExperimentConfig,
    protocol: impl Into<ProtocolSpec>,
    adversary_fraction: f64,
    victims: usize,
) -> Result<EclipseReport, String> {
    eclipse_exposure_in(
        &ProtocolRegistry::builtins(),
        base,
        protocol,
        adversary_fraction,
        victims,
    )
}

/// [`eclipse_exposure`] with the protocol resolved against `registry`.
///
/// # Errors
///
/// Propagates protocol-resolution and network-construction errors.
///
/// # Panics
///
/// Panics when `adversary_fraction` is outside `(0, 1)` or `victims == 0`.
pub fn eclipse_exposure_in(
    registry: &ProtocolRegistry,
    base: &ExperimentConfig,
    protocol: impl Into<ProtocolSpec>,
    adversary_fraction: f64,
    victims: usize,
) -> Result<EclipseReport, String> {
    assert!(
        adversary_fraction > 0.0 && adversary_fraction < 1.0,
        "adversary fraction must be in (0, 1)"
    );
    assert!(victims > 0, "need at least one victim");
    let cfg = base.with_protocol(protocol);
    let mut net = Network::build(cfg.net.clone(), registry.build(&cfg.protocol)?, cfg.seed)?;
    net.warmup_ms(cfg.warmup_ms);

    let n = net.num_nodes();
    let adversary_count = ((n as f64) * adversary_fraction).ceil() as usize;
    let mut shares = Vec::with_capacity(victims);
    for v in 0..victims {
        // Deterministic victim spread across the id space.
        let victim = NodeId::from_index(((v * n) / victims) as u32);
        if !net.is_online(victim) || net.links().degree(victim) == 0 {
            continue;
        }
        // The adversary concentrates its nodes in the victim's latency
        // neighbourhood: the closest `adversary_count` nodes by RTT.
        let mut by_rtt: Vec<(f64, NodeId)> = (0..n as u32)
            .map(NodeId::from_index)
            .filter(|&c| c != victim)
            .map(|c| (net.base_rtt_ms(victim, c), c))
            .collect();
        by_rtt.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite rtt"));
        let malicious: std::collections::BTreeSet<NodeId> = by_rtt
            .iter()
            .take(adversary_count)
            .map(|&(_, c)| c)
            .collect();
        let peers: Vec<NodeId> = net.links().peers(victim).iter().copied().collect();
        let bad = peers.iter().filter(|p| malicious.contains(p)).count();
        shares.push(bad as f64 / peers.len() as f64);
    }
    if shares.is_empty() {
        return Err("no victim had connections".to_string());
    }
    Ok(EclipseReport {
        protocol: cfg.protocol.to_string(),
        adversary_fraction,
        mean_malicious_peer_share: shares.iter().sum::<f64>() / shares.len() as f64,
        max_malicious_peer_share: shares.iter().cloned().fold(0.0, f64::max),
        victims: shares.len(),
    })
}

/// Eclipse exposure across protocols as a table.
///
/// # Errors
///
/// Propagates campaign errors.
pub fn eclipse_table<P: Clone + Into<ProtocolSpec>>(
    base: &ExperimentConfig,
    protocols: &[P],
    adversary_fraction: f64,
    victims: usize,
) -> Result<StatTable, String> {
    let mut table = StatTable::new(
        format!(
            "Eclipse exposure: adversary controls {:.0}% of nodes, concentrated near the victim",
            adversary_fraction * 100.0
        ),
        &["mean_bad_share", "max_bad_share", "victims"],
    );
    for p in protocols {
        let r = eclipse_exposure(base, p.clone(), adversary_fraction, victims)?;
        table.push_row(
            r.protocol,
            vec![
                r.mean_malicious_peer_share,
                r.max_malicious_peer_share,
                r.victims as f64,
            ],
        );
    }
    Ok(table)
}

/// Result of the partition-resilience experiment for one protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionReport {
    /// Protocol label.
    pub protocol: String,
    /// Inter-cluster edges the attacker had to cut (0 for non-clustering
    /// protocols — there is no cheap cut set).
    pub cut_edges: usize,
    /// Edges before the attack.
    pub total_edges: usize,
    /// Fraction of online nodes still reachable from node 0 afterwards.
    pub reachable_after_cut: f64,
}

/// Partition attack (§V.C): the attacker severs every *inter-cluster* link
/// — the natural cut set a clustering protocol exposes — and we measure how
/// much of the network remains mutually reachable.
///
/// For the non-clustering Bitcoin baseline the attack is undefined (no
/// cluster boundary), so no edge is cut and resilience is trivially 1.0;
/// the interesting output is how *cheap* the cut is and how much damage it
/// does for LBC/BCBPT.
///
/// # Errors
///
/// Propagates network-construction errors.
pub fn partition_resilience(
    base: &ExperimentConfig,
    protocol: impl Into<ProtocolSpec>,
) -> Result<PartitionReport, String> {
    partition_resilience_in(&ProtocolRegistry::builtins(), base, protocol)
}

/// [`partition_resilience`] with the protocol resolved against `registry`.
///
/// # Errors
///
/// Propagates protocol-resolution and network-construction errors.
pub fn partition_resilience_in(
    registry: &ProtocolRegistry,
    base: &ExperimentConfig,
    protocol: impl Into<ProtocolSpec>,
) -> Result<PartitionReport, String> {
    let cfg = base.with_protocol(protocol);
    let mut net = Network::build(cfg.net.clone(), registry.build(&cfg.protocol)?, cfg.seed)?;
    net.warmup_ms(cfg.warmup_ms);
    let total_edges = net.links().edge_count();
    let inter: Vec<(NodeId, NodeId)> = net
        .links()
        .edges()
        .filter(|&(a, b)| {
            match (net.cluster_of(a), net.cluster_of(b)) {
                (Some(x), Some(y)) => x != y,
                // Edges to unclustered nodes also cross the boundary.
                (None, None) => false,
                _ => true,
            }
        })
        .collect();
    for (a, b) in &inter {
        net.force_disconnect(*a, *b);
    }
    // Find an online node to BFS from.
    let start = (0..net.num_nodes() as u32)
        .map(NodeId::from_index)
        .find(|&node| net.is_online(node))
        .ok_or_else(|| "no online node".to_string())?;
    Ok(PartitionReport {
        protocol: cfg.protocol.to_string(),
        cut_edges: inter.len(),
        total_edges,
        reachable_after_cut: net.reachable_fraction(start),
    })
}

/// Partition resilience across protocols as a table.
///
/// # Errors
///
/// Propagates campaign errors.
pub fn partition_table<P: Clone + Into<ProtocolSpec>>(
    base: &ExperimentConfig,
    protocols: &[P],
) -> Result<StatTable, String> {
    let mut table = StatTable::new(
        "Partition attack: cut all inter-cluster links",
        &["cut_edges", "total_edges", "reachable_after"],
    );
    for p in protocols {
        let r = partition_resilience(base, p.clone())?;
        table.push_row(
            r.protocol,
            vec![
                r.cut_edges as f64,
                r.total_edges as f64,
                r.reachable_after_cut,
            ],
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_cluster::Protocol;

    fn tiny() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 80;
        cfg.warmup_ms = 1_500.0;
        cfg.runs = 0;
        cfg
    }

    #[test]
    fn proximity_clustering_raises_eclipse_exposure() {
        let base = tiny();
        let bitcoin = eclipse_exposure(&base, Protocol::Bitcoin, 0.1, 8).unwrap();
        let bcbpt = eclipse_exposure(&base, Protocol::bcbpt_paper(), 0.1, 8).unwrap();
        // Random selection picks ~10% adversarial peers; proximity-driven
        // selection concentrates on the latency-close adversary.
        assert!(
            bcbpt.mean_malicious_peer_share > bitcoin.mean_malicious_peer_share,
            "bcbpt {} should exceed bitcoin {}",
            bcbpt.mean_malicious_peer_share,
            bitcoin.mean_malicious_peer_share
        );
        assert!(bitcoin.mean_malicious_peer_share < 0.35);
    }

    #[test]
    fn eclipse_table_has_all_rows() {
        let table = eclipse_table(
            &tiny(),
            &[Protocol::Bitcoin, Protocol::bcbpt_paper()],
            0.1,
            5,
        )
        .unwrap();
        assert_eq!(table.len(), 2);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn eclipse_validates_fraction() {
        let _ = eclipse_exposure(&tiny(), Protocol::Bitcoin, 1.5, 3);
    }

    #[test]
    fn partition_cuts_clustered_topologies() {
        let base = tiny();
        let bitcoin = partition_resilience(&base, Protocol::Bitcoin).unwrap();
        assert_eq!(bitcoin.cut_edges, 0, "no cluster boundary to cut");
        assert!((bitcoin.reachable_after_cut - 1.0).abs() < 1e-9);

        let bcbpt = partition_resilience(&base, Protocol::bcbpt_paper()).unwrap();
        assert!(bcbpt.cut_edges > 0, "clustered topology has a cut set");
        assert!(
            bcbpt.reachable_after_cut < 1.0,
            "cutting inter-cluster links must fragment the network"
        );
    }

    #[test]
    fn partition_table_has_all_rows() {
        let table = partition_table(&tiny(), &[Protocol::Bitcoin, Protocol::Lbc]).unwrap();
        assert_eq!(table.len(), 2);
        let text = table.render();
        assert!(text.contains("bitcoin"));
        assert!(text.contains("lbc"));
    }
}
