//! Failure model of long-running campaigns: structured run failures,
//! digest-sealed shard checkpoints, salvage/repair planning, and a
//! deterministic fault-injection harness.
//!
//! The campaign machinery ([`crate::shard`], [`crate::ScenarioSession`])
//! turns the simulator into long-running distributed infrastructure, so
//! it needs an explicit failure story:
//!
//! * **A panicking run** is caught per run ([`RunFailure`]) and folded in
//!   run-index order like any other outcome — the campaign completes and
//!   the failure is data, byte-identical across thread counts.
//! * **A killed shard process** resumes from a [`Checkpoint`]: the folded
//!   prefix of its run range, digest-sealed and written atomically, so a
//!   SIGKILL costs at most `--checkpoint-every` runs of work.
//! * **A corrupt part file** is quarantined by the salvage merge instead
//!   of aborting the whole batch; the [`RepairPlan`] names the exact
//!   `--shard i/N` re-runs that complete it.
//! * **All of the above are testable**: a serde [`FaultPlan`] injected
//!   behind the `fault-injection` feature drives each recovery path
//!   deterministically in CI.

use crate::experiment::RunResult;
use crate::shard::{PartialCell, ShardPlan, WarmSnapshot, SHARD_FORMAT_VERSION};
use bcbpt_net::MessageStats;
use bcbpt_stats::{EcdfBuilder, StreamingSummary};
use serde::{Deserialize, Serialize};

/// A measuring run that panicked instead of retiring: the structured
/// outcome the campaign folds (in run-index order, like a measured or
/// skipped run) so one poisoned replay cannot kill the whole campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunFailure {
    /// Campaign-local index of the run that panicked.
    pub run_index: usize,
    /// The panic payload, rendered to text (`String`/`&str` payloads are
    /// carried verbatim; anything else becomes a placeholder).
    pub payload: String,
}

impl RunFailure {
    /// Builds the structured failure from a caught panic payload.
    pub(crate) fn from_panic(
        run_index: usize,
        payload: Box<dyn std::any::Any + Send>,
    ) -> RunFailure {
        let payload = if let Some(text) = payload.downcast_ref::<String>() {
            text.clone()
        } else if let Some(text) = payload.downcast_ref::<&str>() {
            (*text).to_string()
        } else {
            "non-string panic payload".to_string()
        };
        RunFailure { run_index, payload }
    }
}

/// A deterministic fault to inject into a shard run (`scenario shard run
/// --inject-fault <json>`), available behind the `fault-injection`
/// feature. Serde round-trippable; the CLI accepts the serialized form,
/// e.g. `{"PanicAtRun":{"run_index":2}}` or `"TornCheckpoint"`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPlan {
    /// Panic inside the measuring run with this campaign-local index —
    /// exercises per-run panic isolation.
    PanicAtRun {
        /// The run index that panics.
        run_index: usize,
    },
    /// Hard-exit the process (no unwinding, no cleanup — a simulated
    /// SIGKILL) after `n` runs have folded — exercises checkpoint/resume.
    DieAfterRuns {
        /// Folded runs to allow before dying.
        n: usize,
    },
    /// Flip one byte of the serialized part before writing it —
    /// exercises the salvage merge's quarantine.
    CorruptOutput {
        /// Offset of the byte to flip (taken modulo the output length).
        byte_offset: usize,
    },
    /// Write only half of the first checkpoint, directly to its final
    /// path, then hard-exit — exercises torn-checkpoint rejection on
    /// `--resume`.
    TornCheckpoint,
}

impl FaultPlan {
    /// Parses the CLI form (serialized JSON).
    ///
    /// # Errors
    ///
    /// Returns the parse error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid fault plan {text:?}: {e}"))
    }

    /// Short human-readable form, e.g. `"die-after-runs(3)"`.
    pub fn label(&self) -> String {
        match self {
            FaultPlan::PanicAtRun { run_index } => format!("panic-at-run({run_index})"),
            FaultPlan::DieAfterRuns { n } => format!("die-after-runs({n})"),
            FaultPlan::CorruptOutput { byte_offset } => format!("corrupt-output({byte_offset})"),
            FaultPlan::TornCheckpoint => "torn-checkpoint".to_string(),
        }
    }
}

/// The process-global fault injector: arming a [`FaultPlan`] makes the
/// campaign machinery consult it at each injection point. Inert unless
/// armed; compiled out entirely without the `fault-injection` feature.
#[cfg(feature = "fault-injection")]
pub mod fault {
    use super::FaultPlan;
    use std::sync::{Mutex, MutexGuard};

    /// Exit code of an injected hard crash (`DieAfterRuns`,
    /// `TornCheckpoint`) — distinct from ordinary error exits so tests
    /// can tell a simulated SIGKILL from a real failure.
    pub const FAULT_EXIT_CODE: i32 = 86;

    struct Armed {
        plan: FaultPlan,
        folded: usize,
    }

    static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

    /// The armed slot. An injected panic unwinds through campaign workers
    /// while this mutex is *not* held, but a caller's panic between `arm`
    /// and drop could still poison it — recover the inner state instead
    /// of propagating the poison into every later campaign.
    fn slot() -> MutexGuard<'static, Option<Armed>> {
        ARMED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Disarms the injector when dropped, so a test cannot leak its fault
    /// into the next one.
    pub struct FaultGuard {
        _private: (),
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *slot() = None;
        }
    }

    /// Arms `plan` process-wide until the returned guard drops. Arming is
    /// global: callers running campaigns concurrently (tests!) must
    /// serialize around it.
    pub fn arm(plan: FaultPlan) -> FaultGuard {
        *slot() = Some(Armed { plan, folded: 0 });
        FaultGuard { _private: () }
    }

    /// The currently armed plan, if any.
    pub fn armed() -> Option<FaultPlan> {
        slot().as_ref().map(|a| a.plan.clone())
    }

    /// Injection point inside each measuring run (before simulation).
    pub(crate) fn maybe_panic(run_index: usize) {
        let hit = matches!(
            &*slot(),
            Some(Armed {
                plan: FaultPlan::PanicAtRun { run_index: at },
                ..
            }) if *at == run_index
        );
        if hit {
            panic!("injected fault: run {run_index} panicked (PanicAtRun)");
        }
    }

    /// Injection point after each run folds (and after any checkpoint for
    /// it was written): `DieAfterRuns { n }` hard-exits once `n` runs
    /// have folded process-wide.
    pub(crate) fn note_run_folded() {
        let mut guard = slot();
        let die = match guard.as_mut() {
            Some(Armed {
                plan: FaultPlan::DieAfterRuns { n },
                folded,
            }) => {
                *folded += 1;
                *folded >= *n
            }
            _ => false,
        };
        drop(guard);
        if die {
            hard_exit("DieAfterRuns");
        }
    }

    /// Simulated SIGKILL: exits with [`FAULT_EXIT_CODE`] immediately, no
    /// unwinding, no cleanup.
    pub fn hard_exit(what: &str) -> ! {
        eprintln!("injected fault: simulated hard crash ({what}) — exiting without cleanup");
        std::process::exit(FAULT_EXIT_CODE);
    }

    /// Applies `CorruptOutput` to a serialized part, flipping one byte in
    /// place. Returns `true` when a corruption was injected.
    pub fn corrupt_output(bytes: &mut [u8]) -> bool {
        let offset = match &*slot() {
            Some(Armed {
                plan: FaultPlan::CorruptOutput { byte_offset },
                ..
            }) => *byte_offset,
            _ => return false,
        };
        if bytes.is_empty() {
            return false;
        }
        let at = offset % bytes.len();
        bytes[at] ^= 0x01;
        true
    }

    /// `true` when `TornCheckpoint` is armed — the checkpoint writer then
    /// tears its first write and hard-exits.
    pub fn torn_checkpoint_armed() -> bool {
        matches!(
            &*slot(),
            Some(Armed {
                plan: FaultPlan::TornCheckpoint,
                ..
            })
        )
    }
}

/// Measurement-window traffic of the folded prefix frozen at one
/// coordinator checkpoint boundary. A coordinated shard records one of
/// these per boundary it crosses so that a later stop decision (possibly
/// delivered after a crash + resume) can truncate the window traffic to
/// the exact prefix the decision covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixTraffic {
    /// Exclusive run-index bound of the frozen prefix (a checkpoint
    /// position clamped into this shard's range).
    pub upto: usize,
    /// Measurement-window traffic (total minus warmup) of runs
    /// `run_start..upto`.
    pub traffic: MessageStats,
}

/// Mid-cell progress of a checkpointed shard: the folded prefix of the
/// current campaign cell, in the same accumulator shards a
/// [`crate::CellShard::Campaign`] carries, plus the next run index to
/// execute. On `--resume` the shard re-warms the cell, verifies the
/// recomputed [`WarmSnapshot`] equals `snapshot`, and continues from
/// `next_run`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellProgress {
    /// Index of the in-flight cell (== number of completed cells).
    pub cell_index: usize,
    /// Identity of the warmed-up snapshot the folded runs replayed.
    pub snapshot: WarmSnapshot,
    /// Folded measuring runs, ascending by `run_index`.
    pub runs: Vec<RunResult>,
    /// Folded run failures (panicking runs), ascending by `run_index`.
    pub failures: Vec<RunFailure>,
    /// Measurement-window traffic of the folded prefix (total minus
    /// warmup) — integer counters, exact under resume.
    pub window_traffic: MessageStats,
    /// Pooled `Δt(m,n)` accumulator over the folded prefix.
    pub deltas: StreamingSummary,
    /// Per-run mean `Δt(m,n)` accumulator over the folded prefix.
    pub run_means: StreamingSummary,
    /// `Δt(m,n)` samples in fold order over the folded prefix.
    pub ecdf: EcdfBuilder,
    /// Window traffic frozen at each coordinator checkpoint boundary this
    /// shard has crossed, ascending by `upto`. Empty for uncoordinated
    /// runs.
    #[serde(default)]
    pub boundary_traffic: Vec<PrefixTraffic>,
    /// First run index the resumed shard must execute.
    pub next_run: usize,
}

/// A digest-sealed shard checkpoint: everything a killed shard process
/// needs to continue from its last durable fold point and still produce a
/// part byte-identical to an uninterrupted run.
///
/// Wire format (JSON, written atomically as tmp + rename):
///
/// | field | contents |
/// |---|---|
/// | `version` | [`SHARD_FORMAT_VERSION`] |
/// | `scenario` | scenario name |
/// | `scenario_digest` | [`crate::scenario_digest`] of the exact scenario |
/// | `scenario_runs` | the scenario's whole `runs` budget |
/// | `plan` | the shard's [`ShardPlan`] |
/// | `cells_done` | completed cells, as final [`PartialCell`]s |
/// | `current` | [`CellProgress`] of the in-flight cell (absent between cells) |
/// | `digest` | FNV-1a over the canonical serialization with `digest` zeroed |
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Shard wire-format version.
    pub version: u32,
    /// The scenario's name.
    pub scenario: String,
    /// Digest of the exact scenario the shard is running.
    pub scenario_digest: u64,
    /// The scenario's whole `runs` budget.
    pub scenario_runs: usize,
    /// The shard's coordinate and run range.
    pub plan: ShardPlan,
    /// Cells completed before the checkpoint, in sweep order — restored
    /// verbatim on resume (they are final).
    pub cells_done: Vec<PartialCell>,
    /// The in-flight cell's folded prefix, absent at cell boundaries.
    pub current: Option<CellProgress>,
    /// FNV-1a content digest over the canonical serialization of every
    /// field above (with `digest` itself zeroed).
    pub digest: u64,
}

impl Checkpoint {
    /// Seals the checkpoint: recomputes and stores the content digest.
    pub fn seal(&mut self) {
        self.digest = self.fingerprint();
    }

    /// The digest the current fields imply (with `digest` zeroed).
    fn fingerprint(&self) -> u64 {
        let mut zeroed = self.clone();
        zeroed.digest = 0;
        let json = serde_json::to_string(&zeroed).expect("checkpoint serializes");
        crate::shard::fnv1a64(json.as_bytes())
    }

    /// Checks the envelope: wire-format version and content digest. A
    /// torn or edited checkpoint file fails here — `--resume` rejects it
    /// instead of continuing from corrupt state.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn verify(&self) -> Result<(), String> {
        if self.version != SHARD_FORMAT_VERSION {
            return Err(format!(
                "checkpoint has wire-format version {} but this binary speaks {} — \
                 re-run the shard without --resume",
                self.version, SHARD_FORMAT_VERSION
            ));
        }
        let expected = self.fingerprint();
        if self.digest != expected {
            return Err(format!(
                "checkpoint digest {:#018x} does not match its contents ({:#018x}) — the \
                 file is torn or corrupt; delete it and re-run the shard without --resume",
                self.digest, expected
            ));
        }
        Ok(())
    }

    /// Serializes the checkpoint as indented JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("checkpoint serializes")
    }

    /// Parses a checkpoint from JSON. Parse failure is the torn-file
    /// fast path; [`verify`](Self::verify) catches tears that still
    /// parse.
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid checkpoint: {e}"))
    }
}

/// One part file the salvage merge refused to use, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedPart {
    /// The part's source label (file path as given to the merge).
    pub source: String,
    /// The shard index the part claimed, when it parsed far enough to
    /// tell.
    pub shard_index: Option<usize>,
    /// Why the part was quarantined.
    pub reason: String,
}

/// Machine-readable repair instructions emitted by the salvage merge when
/// quarantines leave the shard set incomplete: exactly which shards to
/// re-run, with ready-to-paste commands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairPlan {
    /// The scenario name the surviving parts agree on.
    pub scenario: String,
    /// The shard count the surviving parts agree on.
    pub shard_count: usize,
    /// Parts that were quarantined, with reasons.
    pub quarantined: Vec<QuarantinedPart>,
    /// Shard indices with no valid part, ascending.
    pub missing_shards: Vec<usize>,
    /// One `scenario shard run … --shard i/N --out <path>` command per
    /// missing shard (the scenario file placeholder must be substituted
    /// with the original scenario file).
    pub commands: Vec<String>,
}

impl RepairPlan {
    /// Serializes the plan as indented JSON (what `shard merge --salvage`
    /// prints when the set is incomplete).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("repair plan serializes")
    }
}

/// Result of a salvage merge: the merged outcome when enough valid parts
/// survived, otherwise a [`RepairPlan`]; quarantined parts are listed
/// either way.
#[derive(Debug, Clone, PartialEq)]
pub struct SalvageReport {
    /// The merged outcome, present only when every shard index had a
    /// valid part.
    pub outcome: Option<crate::ScenarioOutcome>,
    /// Parts that were quarantined, with reasons (empty on a fully clean
    /// merge).
    pub quarantined: Vec<QuarantinedPart>,
    /// Repair instructions, present when the surviving set is incomplete.
    pub repair: Option<RepairPlan>,
}
