//! Simulator validation (paper §V.A).
//!
//! The authors validated their simulator against transaction propagation
//! delays measured in the real Bitcoin network (their refs [5],[12]); the
//! traces are not public. Following the substitution rule (DESIGN.md §2),
//! we validate against a *reference distribution* with the shape that every
//! published measurement of Bitcoin propagation shows — right-skewed,
//! lognormal-like with a heavy tail (Decker & Wattenhofer 2013) — and
//! report the two-sample Kolmogorov–Smirnov distance plus tail-shape
//! checks. Absolute medians depend on the testbed (verification cost,
//! bandwidth) and are intentionally normalised out.

use bcbpt_geo::sample_standard_normal;
use bcbpt_stats::Ecdf;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// Shape parameter (lognormal σ) of the reference distribution, fitted to
/// the spread visible in published propagation measurements: p90/p50 ≈ 2.5.
pub const REFERENCE_SIGMA: f64 = 0.72;

/// Outcome of validating a sample of simulated propagation delays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// KS distance between the (median-normalised) simulated delays and the
    /// reference shape.
    pub ks_distance: f64,
    /// Simulated median delay, ms.
    pub sim_median_ms: f64,
    /// Simulated 90th percentile, ms.
    pub sim_p90_ms: f64,
    /// Tail ratio p90/p50 of the simulation.
    pub sim_tail_ratio: f64,
    /// Tail ratio p90/p50 of the reference.
    pub ref_tail_ratio: f64,
    /// Whether the simulator passes the shape check.
    pub shape_ok: bool,
}

impl ValidationReport {
    /// Renders the report as text.
    pub fn render(&self) -> String {
        format!(
            "simulator validation (vs lognormal reference, sigma={REFERENCE_SIGMA}):\n\
             KS distance            {:>8.4}\n\
             sim median (ms)        {:>8.1}\n\
             sim p90 (ms)           {:>8.1}\n\
             sim tail ratio p90/p50 {:>8.2}\n\
             ref tail ratio p90/p50 {:>8.2}\n\
             shape check            {}",
            self.ks_distance,
            self.sim_median_ms,
            self.sim_p90_ms,
            self.sim_tail_ratio,
            self.ref_tail_ratio,
            if self.shape_ok { "PASS" } else { "FAIL" }
        )
    }
}

/// Draws `n` reference delays: lognormal with the given median and
/// [`REFERENCE_SIGMA`] shape.
pub fn reference_samples(n: usize, median_ms: f64, seed: u64) -> Vec<f64> {
    assert!(median_ms > 0.0, "median must be positive");
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| median_ms * (REFERENCE_SIGMA * sample_standard_normal(&mut rng)).exp())
        .collect()
}

/// KS acceptance threshold for the shape check. Distributional families
/// differ visibly above ~0.2; the authors report their simulator
/// "approximately behaves as the real Bitcoin network".
pub const KS_ACCEPT: f64 = 0.2;

/// Validates a sample of simulated network-wide propagation delays against
/// the reference shape.
///
/// The simulated sample is normalised to the reference median so only the
/// *shape* is compared (see module docs).
///
/// # Errors
///
/// Returns an error string when `sim_delays_ms` has fewer than 10 samples.
pub fn validate_delays(sim_delays_ms: &[f64]) -> Result<ValidationReport, String> {
    if sim_delays_ms.len() < 10 {
        return Err(format!(
            "need at least 10 delay samples, got {}",
            sim_delays_ms.len()
        ));
    }
    let sim = Ecdf::from_samples(sim_delays_ms.iter().copied())
        .map_err(|e| format!("invalid simulated delays: {e}"))?;
    let sim_median = sim.median();
    if sim_median <= 0.0 {
        return Err("simulated median must be positive".to_string());
    }
    // Normalise the simulated sample to median 1, compare against a
    // median-1 reference.
    let normalised: Vec<f64> = sim.samples().iter().map(|d| d / sim_median).collect();
    let sim_norm = Ecdf::from_samples(normalised).expect("non-empty");
    let reference =
        Ecdf::from_samples(reference_samples(4096, 1.0, 0xB17C01)).expect("reference non-empty");
    let ks = sim_norm.ks_distance(&reference);
    let sim_tail = sim.quantile(0.9) / sim.median();
    let ref_tail = reference.quantile(0.9) / reference.median();
    // Two checks: overall KS distance, plus an explicit right-tail ratio —
    // KS alone is forgiving to distributions that merely cross the
    // reference CDF (e.g. a uniform), while the tail is the signature of
    // Bitcoin propagation measurements.
    let tail_ok = (sim_tail / ref_tail - 1.0).abs() < 0.25;
    Ok(ValidationReport {
        ks_distance: ks,
        sim_median_ms: sim_median,
        sim_p90_ms: sim.quantile(0.9),
        sim_tail_ratio: sim_tail,
        ref_tail_ratio: ref_tail,
        shape_ok: ks < KS_ACCEPT && tail_ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_median_matches_request() {
        let mut samples = reference_samples(20_001, 500.0, 1);
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median / 500.0 - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn reference_is_deterministic() {
        assert_eq!(
            reference_samples(16, 100.0, 7),
            reference_samples(16, 100.0, 7)
        );
    }

    #[test]
    fn lognormal_sample_validates_against_itself() {
        let sim = reference_samples(2000, 350.0, 99);
        let report = validate_delays(&sim).unwrap();
        assert!(report.shape_ok, "ks={}", report.ks_distance);
        assert!((report.sim_median_ms / 350.0 - 1.0).abs() < 0.1);
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn uniform_sample_fails_shape_check() {
        // A uniform distribution has no tail: clearly not Bitcoin-shaped.
        let sim: Vec<f64> = (1..=2000).map(|i| i as f64).collect();
        let report = validate_delays(&sim).unwrap();
        assert!(!report.shape_ok, "ks={}", report.ks_distance);
    }

    #[test]
    fn too_few_samples_rejected() {
        assert!(validate_delays(&[1.0, 2.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "median")]
    fn reference_validates_median() {
        reference_samples(10, 0.0, 1);
    }
}
