//! Cross-shard adaptive stopping: the coordinator round of the shard
//! protocol.
//!
//! An adaptive [`StopRule`] decides on the *folded prefix* of the whole
//! run stream, which no single shard of a `--shard i/N` split ever sees.
//! This module closes that gap with a thin, deterministic coordination
//! round:
//!
//! - every shard serializes its folded prefix accumulators (the
//!   [`StreamingSummary`] pair the stop rules consult) into a digest-
//!   sealed [`PrefixEnvelope`] at deterministic *boundary* positions —
//!   every global run index divisible by the cadence inside its range,
//!   plus its range end;
//! - the coordinator folds envelopes **in shard order** at ascending
//!   run-index *checkpoints* (cadence multiples, then the full budget)
//!   once every shard that owns runs below a checkpoint has reported,
//!   and drives one stateful `StopEval` per cell over that stream;
//! - the first checkpoint where the rule fires becomes the broadcast
//!   [`StopDecision`]: *stop at run index S*. Every shard truncates its
//!   slice to run indices `< S`, so the merged campaign is exactly the
//!   `FixedRuns` prefix `0..S` of the full run stream.
//!
//! Determinism: the decision is a pure function of
//! `(scenario, shard_count, cadence)` — envelope arrival order, thread
//! counts, checkpoint/resume interruptions, and which process hosts the
//! coordinator all cancel out, because evaluation only ever happens at
//! ascending checkpoints over content-addressed prefixes. The stop index
//! may differ from the single-host session's (which evaluates after
//! every fold, not every `cadence` runs) and may differ across shard
//! *layouts* (summary merging associates differently), but for a fixed
//! layout it is bit-stable — which is what the determinism-contract
//! tests pin.
//!
//! [`LocalCoordinator`] is the in-process implementation (used by
//! `bcbpt-serve` multi-shard adaptive jobs and the tests); `bcbpt-serve`
//! wraps it in a small HTTP server/client pair for cross-process
//! `scenario shard run --coordinate <addr>` fleets.

use crate::scenario::Scenario;
use crate::session::{StopEval, StopRule};
use crate::shard::{fnv1a64, scenario_digest, ShardPlan};
use bcbpt_stats::StreamingSummary;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Version stamp of the coordinator wire format ([`CoordinatorConfig`],
/// [`PrefixEnvelope`], [`StopDecision`]). Bumped on any change to the
/// serialized shape or to the decision semantics.
pub const COORD_FORMAT_VERSION: u32 = 1;

/// The coordinator's identity card, fetched by every joining shard: which
/// scenario (by content digest), how many shards, what cadence, which
/// rule. A shard refuses to coordinate with a config that does not match
/// its own launch parameters — two fleets pointed at one coordinator by
/// mistake fail loudly instead of folding each other's prefixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordinatorConfig {
    /// Coordinator wire-format version.
    pub version: u32,
    /// The scenario's name (diagnostics; the digest is authoritative).
    pub scenario: String,
    /// [`scenario_digest`] of the exact scenario being coordinated.
    pub scenario_digest: u64,
    /// The scenario's whole `runs` budget.
    pub scenario_runs: usize,
    /// Number of shards in the fleet.
    pub shard_count: usize,
    /// Checkpoint cadence in run indices: the rule is evaluated at every
    /// global run index divisible by this (and at the full budget).
    pub cadence: usize,
    /// The adaptive stop rule the coordinator evaluates.
    pub stop: StopRule,
    /// FNV-1a content digest (fields above, `digest` zeroed).
    pub digest: u64,
}

impl CoordinatorConfig {
    /// Serializes the config (the `GET /coord/config` body).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("coordinator config serializes")
    }

    /// Parses a config from JSON (does not verify the seal).
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid coordinator config: {e}"))
    }

    /// Seals the config: recomputes and stores the content digest.
    pub fn seal(&mut self) {
        self.digest = self.fingerprint();
    }

    fn fingerprint(&self) -> u64 {
        let mut zeroed = self.clone();
        zeroed.digest = 0;
        fnv1a64(
            serde_json::to_string(&zeroed)
                .expect("coordinator config serializes")
                .as_bytes(),
        )
    }

    /// Checks the content digest against the fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn verify_seal(&self) -> Result<(), String> {
        if self.version != COORD_FORMAT_VERSION {
            return Err(format!(
                "coordinator config is format v{}, this build speaks v{COORD_FORMAT_VERSION}",
                self.version
            ));
        }
        if self.digest != self.fingerprint() {
            return Err(
                "coordinator config digest does not match its contents — transport corruption \
                 or a tampered coordinator"
                    .to_string(),
            );
        }
        Ok(())
    }
}

/// One shard's folded prefix at one boundary position: everything an
/// adaptive rule consults, digest-sealed. `deltas` pools every finite
/// `Δt(m,n)` sample of runs `run_start..upto`; `run_means` holds one
/// mean per successful measuring run in that range.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixEnvelope {
    /// Coordinator wire-format version.
    pub version: u32,
    /// [`scenario_digest`] of the scenario this prefix belongs to.
    pub scenario_digest: u64,
    /// Which sweep cell the prefix belongs to.
    pub cell_index: usize,
    /// Which shard folded it.
    pub shard_index: usize,
    /// The fleet size the shard was launched with.
    pub shard_count: usize,
    /// One past the last global run index folded into the accumulators.
    pub upto: usize,
    /// Pooled `Δt(m,n)` accumulator over `run_start..upto`.
    pub deltas: StreamingSummary,
    /// Per-run-mean accumulator over the same range.
    pub run_means: StreamingSummary,
    /// Successful measuring runs in the range.
    pub measured_runs: usize,
    /// FNV-1a content digest (fields above, `digest` zeroed).
    pub digest: u64,
}

impl PrefixEnvelope {
    /// Serializes the envelope (the `POST /coord/submit` body).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("prefix envelope serializes")
    }

    /// Parses an envelope from JSON (does not verify the seal).
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid prefix envelope: {e}"))
    }

    /// Seals the envelope: recomputes and stores the content digest.
    pub fn seal(&mut self) {
        self.digest = self.fingerprint();
    }

    fn fingerprint(&self) -> u64 {
        let mut zeroed = self.clone();
        zeroed.digest = 0;
        fnv1a64(
            serde_json::to_string(&zeroed)
                .expect("prefix envelope serializes")
                .as_bytes(),
        )
    }

    /// Checks the content digest against the fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn verify_seal(&self) -> Result<(), String> {
        if self.version != COORD_FORMAT_VERSION {
            return Err(format!(
                "prefix envelope is format v{}, this build speaks v{COORD_FORMAT_VERSION}",
                self.version
            ));
        }
        if self.digest != self.fingerprint() {
            return Err(format!(
                "prefix envelope (cell {}, shard {}, upto {}) digest does not match its \
                 contents — transport corruption or tampering; the prefix is rejected",
                self.cell_index, self.shard_index, self.upto
            ));
        }
        Ok(())
    }
}

/// The coordinator's verdict for one cell, broadcast to every shard:
/// `stop_at: Some(S)` means *keep only run indices `< S`* (a strict
/// prefix of the budget); `None` means the rule never fired and the cell
/// consumes its whole `runs` budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StopDecision {
    /// Coordinator wire-format version.
    pub version: u32,
    /// [`scenario_digest`] of the scenario decided on.
    pub scenario_digest: u64,
    /// Which sweep cell was decided.
    pub cell_index: usize,
    /// `Some(S)`: truncate to runs `< S` (`0 < S < scenario_runs`);
    /// `None`: run the full budget.
    pub stop_at: Option<usize>,
    /// Label of the rule that decided (diagnostics).
    pub rule: String,
    /// FNV-1a content digest (fields above, `digest` zeroed).
    pub digest: u64,
}

impl StopDecision {
    /// Serializes the decision (the coordinator's response payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("stop decision serializes")
    }

    /// Parses a decision from JSON (does not verify the seal).
    ///
    /// # Errors
    ///
    /// Returns the parse/shape error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid stop decision: {e}"))
    }

    /// Seals the decision: recomputes and stores the content digest.
    pub fn seal(&mut self) {
        self.digest = self.fingerprint();
    }

    fn fingerprint(&self) -> u64 {
        let mut zeroed = self.clone();
        zeroed.digest = 0;
        fnv1a64(
            serde_json::to_string(&zeroed)
                .expect("stop decision serializes")
                .as_bytes(),
        )
    }

    /// Checks the content digest against the fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch.
    pub fn verify_seal(&self) -> Result<(), String> {
        if self.version != COORD_FORMAT_VERSION {
            return Err(format!(
                "stop decision is format v{}, this build speaks v{COORD_FORMAT_VERSION}",
                self.version
            ));
        }
        if self.digest != self.fingerprint() {
            return Err(format!(
                "stop decision (cell {}) digest does not match its contents — transport \
                 corruption or tampering; the decision is rejected",
                self.cell_index
            ));
        }
        Ok(())
    }
}

/// Whether global run position `p` is a boundary of the shard owning
/// `run_start..run_end` under `cadence`: a cadence multiple strictly
/// inside the range, or the range end. Boundaries are where a shard
/// seals and submits a [`PrefixEnvelope`] — and the positions whose
/// cumulative window traffic it snapshots, so a later decision can
/// truncate the slice exactly there.
pub(crate) fn is_shard_boundary(
    run_start: usize,
    run_end: usize,
    cadence: usize,
    p: usize,
) -> bool {
    p > run_start && p <= run_end && (p == run_end || p.is_multiple_of(cadence))
}

/// The coordination endpoint a shard run talks to. Implemented in-process
/// by [`LocalCoordinator`] and over HTTP by `bcbpt-serve`'s client; the
/// shard path only sees this trait, so both deployments execute the
/// identical protocol.
pub trait StopCoordinator: Send + Sync {
    /// The coordinator's sealed identity card.
    ///
    /// # Errors
    ///
    /// Transport failure, or an unverifiable config.
    fn config(&self) -> Result<CoordinatorConfig, String>;

    /// Submits one sealed prefix envelope; returns the cell's decision if
    /// it is already (or now) known. Submission is idempotent: a resumed
    /// shard replays the boundaries it already passed and the coordinator
    /// verifies each duplicate is bit-identical to what it first saw.
    ///
    /// # Errors
    ///
    /// Transport failure, a rejected envelope (bad seal, wrong scenario
    /// or fleet, a non-boundary position, or a duplicate that differs),
    /// or an abandoned cell.
    fn submit(&self, envelope: PrefixEnvelope) -> Result<Option<StopDecision>, String>;

    /// The cell's decision, if decided.
    ///
    /// # Errors
    ///
    /// Transport failure or an abandoned cell.
    fn decision(&self, cell_index: usize) -> Result<Option<StopDecision>, String>;

    /// Marks a cell as failed on this shard so peers blocked in
    /// [`wait`](Self::wait) fail fast instead of hanging on envelopes
    /// that will never arrive.
    ///
    /// # Errors
    ///
    /// Transport failure.
    fn abandon(&self, cell_index: usize, reason: &str) -> Result<(), String>;

    /// Blocks until the cell is decided (the end-of-cell barrier).
    ///
    /// # Errors
    ///
    /// Transport failure or an abandoned cell.
    fn wait(&self, cell_index: usize) -> Result<StopDecision, String> {
        loop {
            if let Some(decision) = self.decision(cell_index)? {
                return Ok(decision);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// Per-cell coordinator state.
#[derive(Debug)]
struct CellCoord {
    /// Envelopes keyed by `(shard_index, upto)`.
    envelopes: BTreeMap<(usize, usize), PrefixEnvelope>,
    /// The cell's stateful rule evaluator (consumes checkpoints in
    /// ascending order exactly once each).
    eval: StopEval,
    /// Index into the checkpoint list of the next unevaluated checkpoint.
    next_checkpoint: usize,
    /// The verdict, once reached.
    decision: Option<StopDecision>,
    /// A shard abandoned the cell (deterministic peers will too).
    failed: Option<String>,
    /// Evaluation rounds completed (diagnostics).
    rounds: u64,
}

/// The in-process coordinator: one instance per coordinated scenario run.
/// Thread-safe; every shard thread (or the serve worker pool) shares one
/// reference.
#[derive(Debug)]
pub struct LocalCoordinator {
    config: CoordinatorConfig,
    /// `(run_start, run_end)` per shard, from the deterministic plan.
    ranges: Vec<(usize, usize)>,
    /// Global checkpoint positions, ascending: cadence multiples below
    /// the budget, then the budget itself.
    checkpoints: Vec<usize>,
    cells: Mutex<Vec<CellCoord>>,
    wake: Condvar,
}

impl LocalCoordinator {
    /// Builds a coordinator for `scenario` split into `shard_count`
    /// shards, evaluating at every `cadence` runs.
    ///
    /// # Errors
    ///
    /// Rejects a missing/non-adaptive/host-dependent stop rule, a zero
    /// cadence, and invalid plans.
    pub fn new(scenario: &Scenario, shard_count: usize, cadence: usize) -> Result<Self, String> {
        let stop = scenario
            .stop
            .ok_or("coordination requires the scenario to declare an adaptive stop rule")?;
        if !stop.is_adaptive() {
            return Err(
                "coordination requires an adaptive stop rule (FixedRuns needs no coordinator — \
                 run the shards plain)"
                    .to_string(),
            );
        }
        if !stop.is_data_driven() {
            return Err(format!(
                "stop rule {} cannot coordinate shards: it decides on host wall-clock time, \
                 which differs across hosts; use a data-driven rule (CiHalfWidth, VarianceStable)",
                stop.label()
            ));
        }
        if cadence == 0 {
            return Err("coordination cadence must be >= 1".to_string());
        }
        let plans = ShardPlan::plan(scenario.runs, shard_count)?;
        let ranges: Vec<(usize, usize)> = plans.iter().map(|p| (p.run_start, p.run_end)).collect();
        let runs = scenario.runs;
        let mut checkpoints: Vec<usize> = (1..)
            .map(|k| k * cadence)
            .take_while(|&p| p < runs)
            .collect();
        checkpoints.push(runs);
        let cell_count = scenario.cells().len();
        let mut config = CoordinatorConfig {
            version: COORD_FORMAT_VERSION,
            scenario: scenario.name.clone(),
            scenario_digest: scenario_digest(scenario),
            scenario_runs: runs,
            shard_count,
            cadence,
            stop,
            digest: 0,
        };
        config.seal();
        let cells = (0..cell_count)
            .map(|_| CellCoord {
                envelopes: BTreeMap::new(),
                eval: stop.evaluator(),
                next_checkpoint: 0,
                decision: None,
                failed: None,
                rounds: 0,
            })
            .collect();
        Ok(LocalCoordinator {
            config,
            ranges,
            checkpoints,
            cells: Mutex::new(cells),
            wake: Condvar::new(),
        })
    }

    /// Pre-seeds a cell's decision (no evaluation). Used when a service
    /// restart restores a coordinated job some shards of which already
    /// completed under a decision recorded in their parts: re-imposing it
    /// keeps the resumed shards consistent with the completed ones.
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range cell, a decision conflicting with an
    /// already-decided cell, or a stop index outside `(0, runs)`.
    pub fn preset(&self, cell_index: usize, stop_at: Option<usize>) -> Result<(), String> {
        if let Some(s) = stop_at {
            if s == 0 || s >= self.config.scenario_runs {
                return Err(format!(
                    "preset stop index {s} out of range (0, {})",
                    self.config.scenario_runs
                ));
            }
        }
        let mut cells = self.cells.lock().expect("coordinator lock");
        let cell = cells
            .get_mut(cell_index)
            .ok_or_else(|| format!("cell {cell_index} out of range"))?;
        let decision = self.decision_for(cell_index, stop_at);
        match &cell.decision {
            Some(existing) if *existing != decision => Err(format!(
                "cell {cell_index} already decided differently (existing stop {:?}, preset {:?})",
                existing.stop_at, stop_at
            )),
            Some(_) => Ok(()),
            None => {
                cell.decision = Some(decision);
                self.wake.notify_all();
                Ok(())
            }
        }
    }

    /// Total runs the fleet did not execute thanks to early stops, summed
    /// over decided cells: `shard_count`-independent bookkeeping for the
    /// driver's summary (`runs budget − stop index` per stopped cell).
    pub fn runs_saved(&self) -> usize {
        let cells = self.cells.lock().expect("coordinator lock");
        cells
            .iter()
            .filter_map(|cell| cell.decision.as_ref())
            .filter_map(|decision| decision.stop_at)
            .map(|s| self.config.scenario_runs - s)
            .sum()
    }

    /// Every cell's decision (`None` entries are still undecided).
    pub fn decisions(&self) -> Vec<Option<StopDecision>> {
        let cells = self.cells.lock().expect("coordinator lock");
        cells.iter().map(|cell| cell.decision.clone()).collect()
    }

    /// `true` once every cell is decided (or abandoned).
    pub fn is_complete(&self) -> bool {
        let cells = self.cells.lock().expect("coordinator lock");
        cells
            .iter()
            .all(|cell| cell.decision.is_some() || cell.failed.is_some())
    }

    fn decision_for(&self, cell_index: usize, stop_at: Option<usize>) -> StopDecision {
        let mut decision = StopDecision {
            version: COORD_FORMAT_VERSION,
            scenario_digest: self.config.scenario_digest,
            cell_index,
            stop_at,
            rule: self.config.stop.label(),
            digest: 0,
        };
        decision.seal();
        decision
    }

    /// Advances a cell's checkpoint frontier as far as envelope coverage
    /// allows; sets the decision when the rule fires or the budget is
    /// fully covered. Caller holds the lock.
    fn evaluate(&self, cell_index: usize, cell: &mut CellCoord) {
        let runs = self.config.scenario_runs;
        while cell.decision.is_none() {
            let Some(&p) = self.checkpoints.get(cell.next_checkpoint) else {
                break;
            };
            // Coverage: every shard owning runs below `p` must have
            // reported its prefix at min(end, p).
            let mut contributions: Vec<&PrefixEnvelope> = Vec::new();
            let mut covered = true;
            for &(start, end) in &self.ranges {
                if end == start || start >= p {
                    continue;
                }
                let q = end.min(p);
                match cell.envelopes.get(&(self.range_shard(start), q)) {
                    Some(envelope) => contributions.push(envelope),
                    None => {
                        covered = false;
                        break;
                    }
                }
            }
            if !covered {
                break;
            }
            // Fold in shard order — ranges are contiguous ascending, so
            // shard order *is* run order.
            let mut deltas = StreamingSummary::new();
            let mut run_means = StreamingSummary::new();
            let mut measured = 0usize;
            for envelope in contributions {
                deltas.merge(&envelope.deltas);
                run_means.merge(&envelope.run_means);
                measured += envelope.measured_runs;
            }
            cell.rounds += 1;
            crate::obs::coord_rounds_total().inc();
            let fired = cell.eval.observe_folded(&deltas, &run_means, measured);
            if fired && p < runs {
                cell.decision = Some(self.decision_for(cell_index, Some(p)));
            } else if p >= runs {
                // Full budget covered without a strict-prefix stop.
                cell.decision = Some(self.decision_for(cell_index, None));
            }
            cell.next_checkpoint += 1;
        }
        if cell.decision.is_some() {
            self.wake.notify_all();
        }
    }

    /// The shard index owning the range starting at `start` (ranges are
    /// the deterministic plan, so the lookup cannot fail).
    fn range_shard(&self, start: usize) -> usize {
        self.ranges
            .iter()
            .position(|&(s, _)| s == start)
            .expect("range comes from the plan")
    }

    /// Validates an envelope against the config and this shard's plan.
    fn check_envelope(&self, envelope: &PrefixEnvelope) -> Result<(), String> {
        envelope.verify_seal()?;
        if envelope.scenario_digest != self.config.scenario_digest {
            return Err(format!(
                "envelope is for scenario digest {:#018x}, coordinator holds {:#018x} — \
                 this shard ran a different scenario",
                envelope.scenario_digest, self.config.scenario_digest
            ));
        }
        if envelope.shard_count != self.config.shard_count {
            return Err(format!(
                "envelope claims a {}-shard fleet, coordinator holds {}",
                envelope.shard_count, self.config.shard_count
            ));
        }
        let Some(&(start, end)) = self.ranges.get(envelope.shard_index) else {
            return Err(format!(
                "envelope shard index {} out of range for {} shard(s)",
                envelope.shard_index, self.config.shard_count
            ));
        };
        if !is_shard_boundary(start, end, self.config.cadence, envelope.upto) {
            return Err(format!(
                "envelope position {} is not a boundary of shard {} (range {start}..{end}, \
                 cadence {})",
                envelope.upto, envelope.shard_index, self.config.cadence
            ));
        }
        if envelope.measured_runs > envelope.upto - start {
            return Err(format!(
                "envelope claims {} measured runs in a {}-run prefix",
                envelope.measured_runs,
                envelope.upto - start
            ));
        }
        Ok(())
    }
}

impl StopCoordinator for LocalCoordinator {
    fn config(&self) -> Result<CoordinatorConfig, String> {
        Ok(self.config.clone())
    }

    fn submit(&self, envelope: PrefixEnvelope) -> Result<Option<StopDecision>, String> {
        self.check_envelope(&envelope)?;
        let cell_index = envelope.cell_index;
        let mut cells = self.cells.lock().expect("coordinator lock");
        let cell = cells
            .get_mut(cell_index)
            .ok_or_else(|| format!("envelope cell index {cell_index} out of range"))?;
        if let Some(reason) = &cell.failed {
            return Err(format!("cell {cell_index} was abandoned: {reason}"));
        }
        let key = (envelope.shard_index, envelope.upto);
        match cell.envelopes.get(&key) {
            // Idempotent replay (a resumed shard re-walks its prefix):
            // the duplicate must be bit-identical — the digests cover the
            // full content, so comparing them compares everything.
            Some(existing) if existing.digest != envelope.digest => {
                return Err(format!(
                    "shard {} resubmitted a different prefix at run {} of cell {cell_index} — \
                     shard execution diverged; refusing to coordinate",
                    envelope.shard_index, envelope.upto
                ));
            }
            Some(_) => {}
            None => {
                cell.envelopes.insert(key, envelope);
                self.evaluate(cell_index, cell);
            }
        }
        Ok(cell.decision.clone())
    }

    fn decision(&self, cell_index: usize) -> Result<Option<StopDecision>, String> {
        let cells = self.cells.lock().expect("coordinator lock");
        let cell = cells
            .get(cell_index)
            .ok_or_else(|| format!("cell {cell_index} out of range"))?;
        if let Some(reason) = &cell.failed {
            return Err(format!("cell {cell_index} was abandoned: {reason}"));
        }
        Ok(cell.decision.clone())
    }

    fn abandon(&self, cell_index: usize, reason: &str) -> Result<(), String> {
        let mut cells = self.cells.lock().expect("coordinator lock");
        let cell = cells
            .get_mut(cell_index)
            .ok_or_else(|| format!("cell {cell_index} out of range"))?;
        if cell.failed.is_none() {
            cell.failed = Some(reason.to_string());
        }
        self.wake.notify_all();
        Ok(())
    }

    /// Condvar-backed wait (no polling in-process).
    fn wait(&self, cell_index: usize) -> Result<StopDecision, String> {
        let mut cells = self.cells.lock().expect("coordinator lock");
        loop {
            let cell = cells
                .get(cell_index)
                .ok_or_else(|| format!("cell {cell_index} out of range"))?;
            if let Some(reason) = &cell.failed {
                return Err(format!("cell {cell_index} was abandoned: {reason}"));
            }
            if let Some(decision) = &cell.decision {
                return Ok(decision.clone());
            }
            cells = self.wake.wait(cells).expect("coordinator lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::scenario::Workload;
    use bcbpt_cluster::Protocol;

    fn tiny(runs: usize, stop: StopRule) -> Scenario {
        let mut base = ExperimentConfig::quick(Protocol::Bitcoin);
        base.net.num_nodes = 50;
        base.warmup_ms = 500.0;
        base.window_ms = 5_000.0;
        base.runs = runs;
        let mut s = Scenario::from_experiment("tiny-coord", &base, Workload::TxFlood);
        s.stop = Some(stop);
        s
    }

    fn ci_rule() -> StopRule {
        StopRule::CiHalfWidth {
            level: 0.95,
            rel_width: 0.25,
            min_runs: 2,
        }
    }

    fn envelope_at(
        coord: &LocalCoordinator,
        shard: usize,
        upto: usize,
        samples: &[f64],
    ) -> PrefixEnvelope {
        let mut deltas = StreamingSummary::new();
        let mut run_means = StreamingSummary::new();
        for &x in samples {
            deltas.record(x);
            run_means.record(x);
        }
        let mut env = PrefixEnvelope {
            version: COORD_FORMAT_VERSION,
            scenario_digest: coord.config.scenario_digest,
            cell_index: 0,
            shard_index: shard,
            shard_count: coord.config.shard_count,
            upto,
            deltas,
            run_means,
            measured_runs: samples.len(),
            digest: 0,
        };
        env.seal();
        env
    }

    #[test]
    fn construction_rejects_unsuitable_rules() {
        let fixed = tiny(8, StopRule::FixedRuns);
        let err = LocalCoordinator::new(&fixed, 2, 2).unwrap_err();
        assert!(err.contains("adaptive"), "{err}");

        let wall = tiny(8, StopRule::WallClockMs { budget_ms: 100.0 });
        let err = LocalCoordinator::new(&wall, 2, 2).unwrap_err();
        assert!(err.contains("wall-clock"), "{err}");

        let mut bare = tiny(8, ci_rule());
        bare.stop = None;
        let err = LocalCoordinator::new(&bare, 2, 2).unwrap_err();
        assert!(err.contains("stop rule"), "{err}");

        let err = LocalCoordinator::new(&tiny(8, ci_rule()), 2, 0).unwrap_err();
        assert!(err.contains("cadence"), "{err}");
    }

    #[test]
    fn decision_is_independent_of_envelope_arrival_order() {
        // 8 runs, 2 shards (0..4, 4..8), cadence 2 → checkpoints 2,4,6,8.
        // Feed identical envelopes in two different orders: same verdict.
        let scenario = tiny(8, ci_rule());
        let quiet: Vec<f64> = vec![10.0, 10.01, 10.02, 9.99];
        let build = || LocalCoordinator::new(&scenario, 2, 2).unwrap();

        let forward = build();
        let mut verdicts = Vec::new();
        for (shard, upto, n) in [(0, 2, 2), (0, 4, 4), (1, 6, 2), (1, 8, 4)] {
            let env = envelope_at(&forward, shard, upto, &quiet[..n]);
            verdicts.push(forward.submit(env).unwrap());
        }
        let forward_decision = verdicts
            .last()
            .cloned()
            .flatten()
            .or_else(|| forward.decisions().first().cloned().flatten());

        let backward = build();
        for (shard, upto, n) in [(1, 8, 4), (1, 6, 2), (0, 4, 4), (0, 2, 2)] {
            let env = envelope_at(&backward, shard, upto, &quiet[..n]);
            backward.submit(env).unwrap();
        }
        let backward_decision = backward.decisions().first().cloned().flatten();
        assert_eq!(forward_decision, backward_decision);
        let decision = forward_decision.expect("quiet data decides");
        // Shard 0's first two quiet runs already satisfy the loose CI, so
        // the earliest checkpoint wins regardless of arrival order.
        assert_eq!(decision.stop_at, Some(2), "{decision:?}");
        assert_eq!(forward.runs_saved(), 6);
    }

    #[test]
    fn duplicate_envelopes_are_idempotent_but_divergent_ones_are_rejected() {
        let scenario = tiny(8, ci_rule());
        let coord = LocalCoordinator::new(&scenario, 2, 2).unwrap();
        let env = envelope_at(&coord, 0, 2, &[10.0, 20.0]);
        coord.submit(env.clone()).unwrap();
        coord.submit(env).unwrap();

        let divergent = envelope_at(&coord, 0, 2, &[10.0, 30.0]);
        let err = coord.submit(divergent).unwrap_err();
        assert!(err.contains("diverged"), "{err}");
    }

    #[test]
    fn tampered_and_misaddressed_envelopes_are_rejected() {
        let scenario = tiny(8, ci_rule());
        let coord = LocalCoordinator::new(&scenario, 2, 2).unwrap();

        let mut tampered = envelope_at(&coord, 0, 2, &[10.0, 20.0]);
        tampered.measured_runs = 1;
        let err = coord.submit(tampered).unwrap_err();
        assert!(err.contains("digest"), "{err}");

        let mut foreign = envelope_at(&coord, 0, 2, &[10.0, 20.0]);
        foreign.scenario_digest ^= 1;
        foreign.seal();
        let err = coord.submit(foreign).unwrap_err();
        assert!(err.contains("different scenario"), "{err}");

        // Position 3 is neither a cadence multiple nor shard 0's end.
        let off_boundary = envelope_at(&coord, 0, 3, &[10.0, 20.0, 30.0]);
        let err = coord.submit(off_boundary).unwrap_err();
        assert!(err.contains("boundary"), "{err}");
    }

    #[test]
    fn full_budget_without_a_firing_rule_decides_none() {
        // Wildly dispersed means never satisfy a ±25% CI in 4 runs.
        let scenario = tiny(4, ci_rule());
        let coord = LocalCoordinator::new(&scenario, 2, 2).unwrap();
        let wild = [1.0, 400.0];
        for (shard, upto) in [(0usize, 2usize), (1, 4)] {
            let env = envelope_at(&coord, shard, upto, &wild);
            coord.submit(env).unwrap();
        }
        let decision = coord.wait(0).unwrap();
        assert_eq!(decision.stop_at, None);
        assert_eq!(coord.runs_saved(), 0);
        assert!(coord.is_complete());
    }

    #[test]
    fn abandoned_cells_fail_waiters_fast() {
        let scenario = tiny(8, ci_rule());
        let coord = LocalCoordinator::new(&scenario, 2, 2).unwrap();
        coord.abandon(0, "warm failed").unwrap();
        let err = coord.wait(0).unwrap_err();
        assert!(err.contains("abandoned"), "{err}");
        assert!(err.contains("warm failed"), "{err}");
    }

    #[test]
    fn wire_types_round_trip_and_reject_tampering() {
        let scenario = tiny(8, ci_rule());
        let coord = LocalCoordinator::new(&scenario, 2, 2).unwrap();
        let config = coord.config().unwrap();
        config.verify_seal().unwrap();
        let back = CoordinatorConfig::from_json(&config.to_json()).unwrap();
        assert_eq!(back, config);

        let env = envelope_at(&coord, 1, 6, &[5.0, 6.0]);
        env.verify_seal().unwrap();
        let back = PrefixEnvelope::from_json(&env.to_json()).unwrap();
        assert_eq!(back, env);

        let decision = coord.decision_for(0, Some(4));
        decision.verify_seal().unwrap();
        let back = StopDecision::from_json(&decision.to_json()).unwrap();
        assert_eq!(back, decision);
        let mut bent = decision;
        bent.stop_at = Some(3);
        assert!(bent.verify_seal().is_err());
    }

    #[test]
    fn preset_decisions_satisfy_waiters_and_conflicts_are_rejected() {
        let scenario = tiny(8, ci_rule());
        let coord = LocalCoordinator::new(&scenario, 2, 2).unwrap();
        coord.preset(0, Some(4)).unwrap();
        assert_eq!(coord.wait(0).unwrap().stop_at, Some(4));
        coord.preset(0, Some(4)).unwrap();
        let err = coord.preset(0, Some(6)).unwrap_err();
        assert!(err.contains("already decided"), "{err}");
        let err = coord.preset(0, Some(0)).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = coord.preset(0, Some(8)).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }
}
