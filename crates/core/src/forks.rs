//! Fork-rate experiment: closing the paper's motivation loop.
//!
//! §I/§III argue that slow propagation makes ledger replicas inconsistent,
//! which manifests as blockchain forks and enables double spending. The
//! propagation experiments (Fig. 3/4) measure delay; this extension
//! experiment measures the *consequence*: run proof-of-work on top of each
//! relay protocol and compare stale-block rates and ledger consistency.

use crate::experiment::ExperimentConfig;
use bcbpt_cluster::{ProtocolRegistry, ProtocolSpec};
use bcbpt_net::{BandwidthReport, MessageStats, Network};
use bcbpt_sim::RngHub;
use bcbpt_stats::StatTable;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// The relay-strategy extension of a [`ForkReport`]: present exactly when
/// the experiment ran with an installed block-relay strategy, pairing the
/// propagation-delay telemetry with the wire-level bandwidth accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelayForkExt {
    /// The relay spec the cell ran (e.g. `"rlnc(chunks=16)"`).
    pub relay: String,
    /// Mean block propagation delay (mint → network-wide adoption), ms.
    pub block_delay_ms: f64,
    /// Wire bytes and waste over the whole experiment.
    pub bandwidth: BandwidthReport,
}

/// Outcome of the fork experiment for one protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ForkReport {
    /// Protocol label.
    pub protocol: String,
    /// Blocks mined during the window.
    pub mined: usize,
    /// Blocks that did not make the main chain.
    pub stale: usize,
    /// `stale / mined`.
    pub stale_rate: f64,
    /// Fraction of online nodes on the global best tip at the end.
    pub tip_agreement: f64,
    /// Relay-strategy telemetry; `None` on the legacy relay-free path,
    /// keeping those reports byte-identical to pre-relay builds.
    pub relay: Option<RelayForkExt>,
}

// Hand-written serde: the `relay` extension is omitted when `None`, so
// relay-free fork reports (all pre-relay outcome files) keep their exact
// serialized form.
impl Serialize for ForkReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("protocol".to_string(), self.protocol.to_value()),
            ("mined".to_string(), self.mined.to_value()),
            ("stale".to_string(), self.stale.to_value()),
            ("stale_rate".to_string(), self.stale_rate.to_value()),
            ("tip_agreement".to_string(), self.tip_agreement.to_value()),
        ];
        if let Some(relay) = &self.relay {
            fields.push(("relay".to_string(), relay.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for ForkReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for ForkReport"))?;
        Ok(ForkReport {
            protocol: Deserialize::from_value(serde::map_get(m, "protocol"))?,
            mined: Deserialize::from_value(serde::map_get(m, "mined"))?,
            stale: Deserialize::from_value(serde::map_get(m, "stale"))?,
            stale_rate: Deserialize::from_value(serde::map_get(m, "stale_rate"))?,
            tip_agreement: Deserialize::from_value(serde::map_get(m, "tip_agreement"))?,
            relay: Deserialize::from_value(serde::map_get(m, "relay"))?,
        })
    }
}

/// One replicated proof-of-work run of a mining campaign: the harvest of
/// replaying the warmed snapshot with run-derived RNG streams, mining for
/// the cell's duration. Serializable because shards ship their run slices
/// inside `CellShard::Mining`; the merge concatenates slices in run-index
/// order and reassembles the exact batch [`ForkReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForkRun {
    /// Which replicate this is; RNG streams derive from
    /// `(campaign seed, run_index)` only.
    pub run_index: usize,
    /// Blocks mined during this run's window.
    pub mined: usize,
    /// Blocks that did not make the main chain.
    pub stale: usize,
    /// Fraction of online nodes on the global best tip at window end.
    pub tip_agreement: f64,
    /// Mean block propagation delay, ms — present exactly when the cell
    /// ran with an installed relay strategy and at least one block
    /// propagated (`None` otherwise, keeping the value serde-safe: the
    /// JSON shim flattens non-finite floats to `null`).
    pub block_delay_ms: Option<f64>,
    /// Wire traffic of this run's mining window (the delta over the
    /// shared warmup).
    pub window_traffic: MessageStats,
}

/// Warms one mining cell: build the network, install the relay strategy
/// if the config names one, and run the warmup. Returns the warmed
/// snapshot and its traffic baseline — the state every replicated run
/// clones, identical on every shard.
pub(crate) fn mining_warm(
    registry: &ProtocolRegistry,
    cfg: &ExperimentConfig,
) -> Result<(Network, MessageStats), String> {
    let mut net = Network::build(cfg.net.clone(), registry.build(&cfg.protocol)?, cfg.seed)?;
    if let Some(spec) = &cfg.relay {
        net.install_relay(bcbpt_relay::registry().build(spec)?);
    }
    net.warmup_ms(cfg.warmup_ms);
    let warmup_traffic = net.stats().clone();
    Ok((net, warmup_traffic))
}

/// Replays one mining run off the warmed snapshot: clone, re-derive RNG
/// streams from `(seed, run_index)`, mine for `duration_ms`, harvest.
pub(crate) fn mine_one(
    base: &Network,
    warmup_traffic: &MessageStats,
    seed: u64,
    block_interval_ms: f64,
    duration_ms: f64,
    run_index: usize,
    has_relay: bool,
) -> ForkRun {
    let mut net = base.clone();
    net.reseed_streams(&RngHub::new(seed).subhub("run", run_index as u64));
    net.enable_mining(block_interval_ms);
    net.run_for_ms(duration_ms);
    let ledger = net.ledger();
    ForkRun {
        run_index,
        mined: ledger.mined_count(),
        stale: ledger.stale_count(),
        tip_agreement: net.tip_agreement(),
        block_delay_ms: if has_relay {
            Some(net.block_delay_mean_ms()).filter(|d| d.is_finite())
        } else {
            None
        },
        window_traffic: net.stats().since(warmup_traffic),
    }
}

/// Executes a contiguous run range of a replicated mining cell off an
/// already-warmed snapshot, in run-index order.
pub(crate) fn mine_range(
    base: &Network,
    warmup_traffic: &MessageStats,
    cfg: &ExperimentConfig,
    block_interval_ms: f64,
    duration_ms: f64,
    range: Range<usize>,
) -> Vec<ForkRun> {
    range
        .map(|run_index| {
            mine_one(
                base,
                warmup_traffic,
                cfg.seed,
                block_interval_ms,
                duration_ms,
                run_index,
                cfg.relay.is_some(),
            )
        })
        .collect()
}

/// Assembles the cell-level [`ForkReport`] from replicated runs. Every
/// field is a pure function of the run slice and the total traffic, so
/// the batch path and a cross-shard merge that concatenated the same
/// runs produce byte-identical reports.
pub(crate) fn fork_report_from_runs(
    protocol: String,
    relay: Option<String>,
    runs: &[ForkRun],
    total_traffic: &MessageStats,
) -> ForkReport {
    let mined: usize = runs.iter().map(|r| r.mined).sum();
    let stale: usize = runs.iter().map(|r| r.stale).sum();
    let tip_sum: f64 = runs.iter().map(|r| r.tip_agreement).sum();
    let delays: Vec<f64> = runs.iter().filter_map(|r| r.block_delay_ms).collect();
    let relay = relay.map(|relay| RelayForkExt {
        relay,
        block_delay_ms: if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        },
        bandwidth: total_traffic.bandwidth_report(),
    });
    ForkReport {
        protocol,
        mined,
        stale,
        stale_rate: if mined == 0 {
            0.0
        } else {
            stale as f64 / mined as f64
        },
        tip_agreement: if runs.is_empty() {
            0.0
        } else {
            tip_sum / runs.len() as f64
        },
        relay,
    }
}

/// A replicated mining campaign: warm once, then `runs` independent
/// proof-of-work replicates off the warmed snapshot, each reseeded from
/// `(seed, run_index)` — the mining analogue of a measuring-run campaign,
/// so mining cells shard by run range exactly like `TxFlood` cells. The
/// report aggregates the replicates (summed mined/stale, mean
/// tip-agreement and block delay, total traffic).
///
/// # Errors
///
/// Propagates protocol-resolution and network-construction errors.
///
/// # Panics
///
/// Panics when `block_interval_ms`, `duration_ms` or `runs` is not
/// positive.
pub fn mining_campaign_in(
    registry: &ProtocolRegistry,
    base: &ExperimentConfig,
    block_interval_ms: f64,
    duration_ms: f64,
    runs: usize,
) -> Result<ForkReport, String> {
    assert!(block_interval_ms > 0.0, "block interval must be positive");
    assert!(duration_ms > 0.0, "duration must be positive");
    assert!(runs > 0, "a mining campaign needs at least one run");
    let (net, warmup_traffic) = mining_warm(registry, base)?;
    let fork_runs = mine_range(
        &net,
        &warmup_traffic,
        base,
        block_interval_ms,
        duration_ms,
        0..runs,
    );
    let mut total = warmup_traffic;
    for run in &fork_runs {
        total.merge(&run.window_traffic);
    }
    crate::obs::net_bytes_total().add(total.total_bytes());
    crate::obs::net_redundant_bytes_total().add(total.total_redundant_bytes());
    Ok(fork_report_from_runs(
        base.protocol.to_string(),
        base.relay.as_ref().map(|spec| spec.to_string()),
        &fork_runs,
        &total,
    ))
}

/// Runs proof-of-work over one protocol's topology.
///
/// Blocks arrive as a Poisson process with mean `block_interval_ms`; a
/// uniformly random online node wins each and mines on *its* current tip,
/// so any propagation lag directly converts into forks.
///
/// # Errors
///
/// Propagates network-construction errors.
///
/// # Panics
///
/// Panics when `block_interval_ms` or `duration_ms` is not positive.
pub fn fork_experiment(
    base: &ExperimentConfig,
    protocol: impl Into<ProtocolSpec>,
    block_interval_ms: f64,
    duration_ms: f64,
) -> Result<ForkReport, String> {
    fork_experiment_in(
        &ProtocolRegistry::builtins(),
        base,
        protocol,
        block_interval_ms,
        duration_ms,
    )
}

/// [`fork_experiment`] with the protocol resolved against `registry`, so
/// custom registered policies can be measured too.
///
/// # Errors
///
/// Propagates protocol-resolution and network-construction errors.
///
/// # Panics
///
/// Panics when `block_interval_ms` or `duration_ms` is not positive.
pub fn fork_experiment_in(
    registry: &ProtocolRegistry,
    base: &ExperimentConfig,
    protocol: impl Into<ProtocolSpec>,
    block_interval_ms: f64,
    duration_ms: f64,
) -> Result<ForkReport, String> {
    assert!(block_interval_ms > 0.0, "block interval must be positive");
    assert!(duration_ms > 0.0, "duration must be positive");
    let cfg = base.with_protocol(protocol);
    let mut net = Network::build(cfg.net.clone(), registry.build(&cfg.protocol)?, cfg.seed)?;
    if let Some(spec) = &cfg.relay {
        net.install_relay(bcbpt_relay::registry().build(spec)?);
    }
    net.warmup_ms(cfg.warmup_ms);
    net.enable_mining(block_interval_ms);
    net.run_for_ms(duration_ms);
    let ledger = net.ledger();
    crate::obs::net_bytes_total().add(net.stats().total_bytes());
    crate::obs::net_redundant_bytes_total().add(net.stats().total_redundant_bytes());
    let relay = cfg.relay.as_ref().map(|spec| RelayForkExt {
        relay: spec.to_string(),
        block_delay_ms: net.block_delay_mean_ms(),
        bandwidth: net.stats().bandwidth_report(),
    });
    Ok(ForkReport {
        protocol: cfg.protocol.to_string(),
        mined: ledger.mined_count(),
        stale: ledger.stale_count(),
        stale_rate: ledger.stale_rate(),
        tip_agreement: net.tip_agreement(),
        relay,
    })
}

/// Fork rates across protocols as a table.
///
/// # Errors
///
/// Propagates campaign errors.
pub fn fork_table<P: Clone + Into<ProtocolSpec>>(
    base: &ExperimentConfig,
    protocols: &[P],
    block_interval_ms: f64,
    duration_ms: f64,
) -> Result<StatTable, String> {
    let mut table = StatTable::new(
        format!("Fork rate under proof-of-work (blocks every {block_interval_ms} ms on average)"),
        &["mined", "stale", "stale_rate", "tip_agreement"],
    );
    for p in protocols {
        let r = fork_experiment(base, p.clone(), block_interval_ms, duration_ms)?;
        table.push_row(
            r.protocol,
            vec![
                r.mined as f64,
                r.stale as f64,
                r.stale_rate,
                r.tip_agreement,
            ],
        );
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_cluster::Protocol;

    fn tiny() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 100;
        cfg.warmup_ms = 2_000.0;
        cfg.runs = 0;
        cfg
    }

    #[test]
    fn fork_experiment_reports_consistent_numbers() {
        let r = fork_experiment(&tiny(), Protocol::Bitcoin, 2_000.0, 60_000.0).unwrap();
        assert!(r.mined > 5, "mined {}", r.mined);
        assert!(r.stale <= r.mined);
        assert!((0.0..=1.0).contains(&r.stale_rate));
        assert!((0.0..=1.0).contains(&r.tip_agreement));
    }

    #[test]
    fn aggressive_blocks_fork_under_any_protocol() {
        // Blocks every 200 ms against ~300-600 ms propagation must fork.
        let r = fork_experiment(&tiny(), Protocol::Bitcoin, 200.0, 30_000.0).unwrap();
        assert!(r.stale > 0, "expected forks, got none out of {}", r.mined);
    }

    #[test]
    fn table_lists_all_protocols() {
        let table = fork_table(
            &tiny(),
            &[Protocol::Bitcoin, Protocol::bcbpt_paper()],
            1_500.0,
            30_000.0,
        )
        .unwrap();
        assert_eq!(table.len(), 2);
        let text = table.render();
        assert!(text.contains("bitcoin"));
        assert!(text.contains("bcbpt"));
    }

    #[test]
    #[should_panic(expected = "block interval")]
    fn interval_validated() {
        let _ = fork_experiment(&tiny(), Protocol::Bitcoin, 0.0, 1_000.0);
    }

    #[test]
    fn relay_extension_fills_and_round_trips() {
        // Relay-free reports omit the extension and serialize without a
        // `relay` key — the pre-relay wire format.
        let bare = fork_experiment(&tiny(), Protocol::Bitcoin, 2_000.0, 30_000.0).unwrap();
        assert!(bare.relay.is_none());
        let json = serde_json::to_string(&bare).unwrap();
        assert!(!json.contains("\"relay\""), "{json}");
        let back: ForkReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, bare);

        // With a relay installed the extension carries live telemetry.
        let cfg = tiny().with_relay("compact");
        let report = fork_experiment(&cfg, Protocol::Bitcoin, 2_000.0, 30_000.0).unwrap();
        let ext = report.relay.as_ref().expect("relay extension present");
        assert_eq!(ext.relay, "compact");
        assert!(ext.block_delay_ms > 0.0);
        assert!(ext.bandwidth.bytes_on_wire > 0);
        assert!(ext.bandwidth.waste_ratio.is_finite());
        let back: ForkReport =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(back, report);
    }
}
