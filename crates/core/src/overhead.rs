//! Measurement-overhead experiment (the paper's declared future work).
//!
//! §IV.A: "to measure the distance between nodes in 'ping latency' requires
//! every pair of nodes to interact, which added an extra overhead to the
//! network. This overhead will be evaluated in our future work." This
//! module *is* that evaluation: per-protocol message/byte budgets broken
//! into probing (PING/PONG), cluster control (JOIN/CLUSTERLIST/handshakes)
//! and useful relay traffic (INV/GETDATA/TX).

use crate::experiment::{CampaignResult, ExperimentConfig};
use bcbpt_cluster::ProtocolSpec;
use bcbpt_net::MessageKind;
use bcbpt_stats::StatTable;
use serde::{Deserialize, Serialize};

/// One protocol's message/byte budget, normalised per node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Protocol label.
    pub protocol: String,
    /// PING/PONG probe messages per node.
    pub probe_per_node: f64,
    /// Cluster-control (JOIN/CLUSTERLIST) + handshake messages per node.
    pub control_per_node: f64,
    /// Address-gossip (GETADDR/ADDR) messages per node.
    pub gossip_per_node: f64,
    /// Useful relay (INV/GETDATA/TX/block) messages per node.
    pub relay_per_node: f64,
    /// Probe share of all traffic.
    pub probe_share: f64,
    /// Total bytes moved per node.
    pub bytes_per_node: f64,
}

impl OverheadReport {
    /// Breaks a campaign's total traffic into the overhead budget.
    pub fn from_campaign(campaign: &CampaignResult) -> Self {
        let n = campaign.num_nodes as f64;
        let t = &campaign.traffic;
        let probe = t.probe_messages() as f64;
        let control = t.cluster_control_messages() as f64
            + t.count(MessageKind::Version) as f64
            + t.count(MessageKind::Verack) as f64;
        let gossip = (t.count(MessageKind::GetAddr) + t.count(MessageKind::Addr)) as f64;
        let relay = t.relay_messages() as f64;
        let total = t.total_messages() as f64;
        OverheadReport {
            protocol: campaign.protocol.clone(),
            probe_per_node: probe / n,
            control_per_node: control / n,
            gossip_per_node: gossip / n,
            relay_per_node: relay / n,
            probe_share: if total > 0.0 { probe / total } else { 0.0 },
            bytes_per_node: t.total_bytes() as f64 / n,
        }
    }

    /// The table row this report contributes to [`overhead_table`].
    pub fn row(&self) -> Vec<f64> {
        vec![
            self.probe_per_node,
            self.control_per_node,
            self.gossip_per_node,
            self.relay_per_node,
            self.probe_share,
            self.bytes_per_node,
        ]
    }
}

/// The column headers of [`overhead_table`] rows.
pub(crate) const OVERHEAD_COLUMNS: [&str; 6] = [
    "probe/node",
    "control/node",
    "gossip/node",
    "relay/node",
    "probe_share",
    "bytes/node",
];

/// Per-protocol overhead comparison.
///
/// Each row reports, for one protocol, the total probe / cluster-control /
/// address-gossip / relay message counts normalised **per node**, plus the
/// probe share of all traffic.
///
/// # Errors
///
/// Propagates campaign configuration errors.
pub fn overhead_table<P: Clone + Into<ProtocolSpec>>(
    base: &ExperimentConfig,
    protocols: &[P],
) -> Result<StatTable, String> {
    let mut table = StatTable::new(
        "Measurement & control overhead per node (messages over the campaign)",
        &OVERHEAD_COLUMNS,
    );
    for protocol in protocols {
        let campaign = base.with_protocol(protocol.clone()).run()?;
        let report = OverheadReport::from_campaign(&campaign);
        table.push_row(campaign.protocol.clone(), report.row());
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcbpt_cluster::Protocol;

    fn tiny() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick(Protocol::Bitcoin);
        cfg.net.num_nodes = 50;
        cfg.warmup_ms = 1_000.0;
        cfg.window_ms = 10_000.0;
        cfg.runs = 2;
        cfg
    }

    #[test]
    fn bcbpt_pays_probe_overhead_bitcoin_does_not() {
        let table = overhead_table(
            &tiny(),
            &[Protocol::Bitcoin, Protocol::Lbc, Protocol::bcbpt_paper()],
        )
        .unwrap();
        let rows: Vec<(String, Vec<f64>)> = table
            .rows()
            .map(|(l, v)| (l.to_string(), v.to_vec()))
            .collect();
        assert_eq!(rows.len(), 3);
        let probe_of = |label: &str| {
            rows.iter()
                .find(|(l, _)| l.starts_with(label))
                .map(|(_, v)| v[0])
                .unwrap()
        };
        assert_eq!(probe_of("bitcoin"), 0.0, "vanilla Bitcoin never probes");
        assert_eq!(probe_of("lbc"), 0.0, "LBC selects by location only");
        assert!(
            probe_of("bcbpt") > 10.0,
            "BCBPT pays real probing overhead, got {}",
            probe_of("bcbpt")
        );
    }

    #[test]
    fn relay_traffic_present_for_all() {
        let table = overhead_table(&tiny(), &[Protocol::Bitcoin, Protocol::bcbpt_paper()]).unwrap();
        for (label, values) in table.rows() {
            assert!(values[3] > 0.0, "{label} relayed nothing");
            assert!(values[5] > 0.0, "{label} moved no bytes");
            assert!((0.0..=1.0).contains(&values[4]), "{label} probe share");
        }
    }
}
